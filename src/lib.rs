//! Umbrella crate for the Stretch (HPCA'19) reproduction.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! This crate re-exports every sub-crate of the workspace so that examples,
//! integration tests and downstream users can depend on a single package:
//!
//! ```
//! use stretch_repro::prelude::*;
//!
//! let cfg = CoreConfig::default();
//! assert_eq!(cfg.rob_capacity, 192);
//! ```
//!
//! The individual crates are:
//!
//! * [`model`] — shared simulation types (micro-ops, configuration, RNG).
//! * [`stats`] — percentile / distribution / sampling statistics.
//! * [`mem`] — cache hierarchy, MSHRs, prefetcher, LLC and DRAM models.
//! * [`cpu`] — the T-thread SMT out-of-order core simulator, its per-core
//!   colocation policies and the server-level allocation policies above them.
//! * [`workloads`] — synthetic latency-sensitive and batch workload generators.
//! * [`stretch`] — the paper's contribution: asymmetric ROB/LSQ partitioning,
//!   the architectural control register and the software QoS monitor.
//! * [`qos`] — request-level queueing simulation, latency percentiles, slack
//!   analysis (package `sim_qos`).
//! * [`baselines`] — fetch throttling, dynamic sharing, ideal software scheduling, Elfen.
//! * [`cluster`] — diurnal load models, the analytical cluster case studies
//!   and the measured load-balanced fleet simulation (package `cluster_sim`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use cluster_sim as cluster;
pub use cpu_sim as cpu;
pub use mem_sim as mem;
pub use sim_model as model;
pub use sim_qos as qos;
pub use sim_stats as stats;
pub use stretch;
pub use workloads;

/// Commonly used items, suitable for glob import in examples.
pub mod prelude {
    pub use baselines::{
        DynamicSharing, Elfen, FetchThrottling, HybridThrottleSkew, IdealScheduling,
    };
    pub use cluster_sim::{
        CaseStudy, Fleet, FleetConfig, FleetScale, LoadBalancer, MeasuredServer, ServerWorkloads,
    };
    pub use cpu_sim::{
        AllocationPolicy, ColocationPolicy, ColocationResult, ColocationTopology, CoreSetup,
        EqualPartition, Greedy, Placement, PrivateCore, RoundRobin, Scenario, ServerScenario,
        ServerSpec, ServerThread, SimLength, SmtCore, SmtCoreBuilder, SymbiosisAware, ThreadSpec,
    };
    pub use sim_model::{CoreConfig, ThreadId, WorkloadClass};
    pub use stretch::{PinnedStretch, RobSkew, SoftwareMonitor, StretchConfig, StretchMode};
    pub use workloads::{batch, latency_sensitive, WorkloadProfile};
}
