//! Datacenter view: how much QoS slack does a latency-sensitive service have
//! across its diurnal load cycle, and what does Stretch's B-mode buy at the
//! cluster level? (Figures 1, 2 and 14.)
//!
//! Run with: `cargo run --release --example datacenter_cluster`

use stretch_repro::cluster::{CaseStudy, DiurnalPattern};
use stretch_repro::qos::{latency_vs_load, slack_curve, ServiceSpec, SimParams};

fn main() {
    let spec = ServiceSpec::web_search();
    let params = SimParams::standard(21);

    println!("Web Search latency vs load (QoS target: {} ms p99)", spec.qos_target_ms);
    println!("  load    mean      p95       p99");
    for point in latency_vs_load(&spec, params, 0.1, 10) {
        println!(
            "  {:>4.0}%  {:>6.1} ms {:>6.1} ms {:>6.1} ms{}",
            point.load * 100.0,
            point.latency.mean_ms,
            point.latency.p95_ms,
            point.latency.p99_ms,
            if point.latency.p99_ms > spec.qos_target_ms { "  <-- violates QoS" } else { "" }
        );
    }

    println!();
    println!("Minimum single-thread performance required to keep meeting QoS:");
    println!("  load    required perf   slack");
    let loads: Vec<f64> = (1..=10).map(|i| i as f64 * 0.1).collect();
    for point in slack_curve(&spec, params, &loads) {
        match point.required() {
            Some(required) => println!(
                "  {:>4.0}%        {:>5.0}%        {:>5.0}%",
                point.load * 100.0,
                required * 100.0,
                point.slack() * 100.0
            ),
            // Even full performance misses the target at this load.
            None => println!("  {:>4.0}%        unmet            -", point.load * 100.0),
        }
    }

    println!();
    println!("Cluster-level impact of engaging B-mode below 85% of peak load:");
    for (name, study) in
        [("Web Search cluster", CaseStudy::web_search()), ("YouTube cluster", CaseStudy::youtube())]
    {
        let report = study.run();
        println!(
            "  {name:<20} B-mode engaged {:>4.1} h/day -> +{:.1}% 24-hour batch throughput",
            report.hours_engaged,
            report.gain() * 100.0
        );
    }

    println!();
    println!("Diurnal load shapes used (fraction of peak):");
    println!("  hour   web-search   youtube");
    for hour in (0..24).step_by(3) {
        println!(
            "  {hour:>4}      {:>6.2}      {:>6.2}",
            DiurnalPattern::WebSearch.load_at(hour as f64),
            DiurnalPattern::YouTube.load_at(hour as f64)
        );
    }
}
