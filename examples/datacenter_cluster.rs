//! Datacenter view: how much QoS slack does a latency-sensitive service have
//! across its diurnal load cycle, and what does Stretch's B-mode buy at the
//! cluster level? (Figures 1, 2 and 14.)
//!
//! The cluster accounting is shown twice: with the paper's headline B-mode
//! speedup, and with a speedup *measured* by running the Stretch policy
//! through the cycle-level `Scenario` API.
//!
//! Run with: `cargo run --release --example datacenter_cluster`

use stretch_repro::baselines::{DutyCycle, Elfen};
use stretch_repro::cluster::{CaseStudy, DiurnalPattern};
use stretch_repro::cpu::{EqualPartition, Scenario, SimLength};
use stretch_repro::model::{CoreConfig, ThreadId};
use stretch_repro::qos::{latency_vs_load, slack_curve, ServiceSpec, SimParams};
use stretch_repro::stretch::{PinnedStretch, RobSkew, StretchMode};
use stretch_repro::workloads::profile_by_name;

fn main() {
    let spec = ServiceSpec::web_search();
    let params = SimParams::standard(21);

    println!("Web Search latency vs load (QoS target: {} ms p99)", spec.qos_target_ms);
    println!("  load    mean      p95       p99");
    for point in latency_vs_load(&spec, params, 0.1, 10) {
        println!(
            "  {:>4.0}%  {:>6.1} ms {:>6.1} ms {:>6.1} ms{}",
            point.load * 100.0,
            point.latency.mean_ms,
            point.latency.p95_ms,
            point.latency.p99_ms,
            if point.latency.p99_ms > spec.qos_target_ms { "  <-- violates QoS" } else { "" }
        );
    }

    println!();
    println!("Minimum single-thread performance required to keep meeting QoS,");
    println!("and whether an Elfen schedule at a 60% duty cycle would meet it:");
    println!("  load    required perf   slack   Elfen@60%");
    let elfen = Elfen::new(DutyCycle::new(0.6));
    let loads: Vec<f64> = (1..=10).map(|i| i as f64 * 0.1).collect();
    for point in slack_curve(&spec, params, &loads) {
        let met = if point.met_by(elfen.delivered_performance()) { "ok" } else { "-" };
        match point.required() {
            Some(required) => println!(
                "  {:>4.0}%        {:>5.0}%        {:>5.0}%   {met}",
                point.load * 100.0,
                required * 100.0,
                point.slack() * 100.0
            ),
            // Even full performance misses the target at this load.
            None => println!("  {:>4.0}%        unmet            -   {met}", point.load * 100.0),
        }
    }

    // Measure the B-mode batch speedup with the cycle model, through the
    // same policy interface the figures use (quick length keeps the example
    // snappy).
    let cfg = CoreConfig::default();
    let batch_uipc = |policy: &dyn stretch_repro::cpu::ColocationPolicy| {
        Scenario::colocate(
            profile_by_name("web-search").expect("web-search exists"),
            profile_by_name("zeusmp").expect("zeusmp exists"),
        )
        .config(cfg)
        .boxed_policy(policy.clone_policy())
        .length(SimLength::quick())
        .seed(21)
        .run()
        .expect_thread(ThreadId::T1)
        .uipc
    };
    let b_mode = PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode()));
    let measured_speedup = batch_uipc(&b_mode) / batch_uipc(&EqualPartition);

    println!();
    println!("Cluster-level impact of engaging B-mode below 85% of peak load:");
    for (name, study) in [
        ("Web Search cluster (paper)", CaseStudy::web_search()),
        ("YouTube cluster (paper)", CaseStudy::youtube()),
        (
            "Web Search cluster (measured)",
            CaseStudy::with_measured_speedup(DiurnalPattern::WebSearch, measured_speedup),
        ),
    ] {
        let report = study.run();
        println!(
            "  {name:<30} B-mode engaged {:>4.1} h/day -> +{:.1}% 24-hour batch throughput",
            report.hours_engaged,
            report.gain() * 100.0
        );
    }

    println!();
    println!("Diurnal load shapes used (fraction of peak):");
    println!("  hour   web-search   youtube");
    for hour in (0..24).step_by(3) {
        println!(
            "  {hour:>4}      {:>6.2}      {:>6.2}",
            DiurnalPattern::WebSearch.load_at(hour as f64),
            DiurnalPattern::YouTube.load_at(hour as f64)
        );
    }
}
