//! Quickstart: colocate Web Search with zeusmp on the simulated SMT core and
//! compare the baseline equal ROB partitioning against Stretch's B-mode —
//! two policies behind the same `Scenario` entry point.
//!
//! Run with: `cargo run --release --example quickstart`

use stretch_repro::cpu::{EqualPartition, Scenario, SimLength};
use stretch_repro::model::{CoreConfig, ThreadId};
use stretch_repro::stretch::{PinnedStretch, RobSkew, StretchMode};
use stretch_repro::workloads::profile_by_name;

fn main() {
    let cfg = CoreConfig::default();
    let pair = || {
        Scenario::colocate(
            profile_by_name("web-search").expect("web-search exists"),
            profile_by_name("zeusmp").expect("zeusmp exists"),
        )
        .config(cfg)
        .length(SimLength::standard())
        .seed(7)
    };

    // Baseline: equal 96/96 ROB partitioning, everything shared.
    let baseline = pair().policy(EqualPartition).run();

    // Stretch B-mode 56-136: shift ROB capacity to the batch thread. Only
    // the policy changes; the scenario (workloads, seed, length) is shared.
    let b_mode = StretchMode::BatchBoost(RobSkew::recommended_b_mode());
    let stretched = pair().policy(PinnedStretch::new(b_mode)).run();

    let ls_base = baseline.expect_thread(ThreadId::T0).uipc;
    let batch_base = baseline.expect_thread(ThreadId::T1).uipc;
    let ls_stretch = stretched.expect_thread(ThreadId::T0).uipc;
    let batch_stretch = stretched.expect_thread(ThreadId::T1).uipc;

    println!("Stretch quickstart: web-search (latency-sensitive) + zeusmp (batch)");
    println!(
        "  core: {}-entry ROB, {}-entry LSQ, dual-thread SMT",
        cfg.rob_capacity, cfg.lsq_capacity
    );
    println!();
    println!("  configuration        LS UIPC   batch UIPC");
    println!("  baseline (96-96)      {ls_base:6.3}      {batch_base:6.3}");
    println!("  B-mode   (56-136)     {ls_stretch:6.3}      {batch_stretch:6.3}");
    println!();
    println!("  batch speedup from B-mode: {:+.1}%", (batch_stretch / batch_base - 1.0) * 100.0);
    println!("  latency-sensitive slowdown: {:+.1}%", (1.0 - ls_stretch / ls_base) * 100.0);
    println!();
    println!("At low to moderate service load the latency-sensitive slowdown is absorbed");
    println!("by QoS slack (see the datacenter_cluster example), so the batch speedup is free.");
}
