//! Quickstart: colocate Web Search with zeusmp on the simulated SMT core and
//! compare the baseline equal ROB partitioning against Stretch's B-mode.
//!
//! Run with: `cargo run --release --example quickstart`

use stretch_repro::cpu::{run_pair, CoreSetup, SimLength};
use stretch_repro::model::{CoreConfig, ThreadId};
use stretch_repro::stretch::{RobSkew, StretchMode};
use stretch_repro::workloads::{batch, latency_sensitive};

fn main() {
    let cfg = CoreConfig::default();
    let length = SimLength::standard();
    let seed = 7;

    // Baseline: equal 96/96 ROB partitioning, everything shared.
    let baseline = run_pair(
        &cfg,
        CoreSetup::baseline(&cfg),
        latency_sensitive::web_search(seed),
        batch::zeusmp(seed),
        length,
    );

    // Stretch B-mode 56-136: shift ROB capacity to the batch thread.
    let b_mode = StretchMode::BatchBoost(RobSkew::recommended_b_mode());
    let mut setup = CoreSetup::baseline(&cfg);
    setup.partition = b_mode.partition_policy(&cfg, ThreadId::T0);
    let stretched =
        run_pair(&cfg, setup, latency_sensitive::web_search(seed), batch::zeusmp(seed), length);

    let ls_base = baseline.uipc(ThreadId::T0);
    let batch_base = baseline.uipc(ThreadId::T1);
    let ls_stretch = stretched.uipc(ThreadId::T0);
    let batch_stretch = stretched.uipc(ThreadId::T1);

    println!("Stretch quickstart: web-search (latency-sensitive) + zeusmp (batch)");
    println!(
        "  core: {}-entry ROB, {}-entry LSQ, dual-thread SMT",
        cfg.rob_capacity, cfg.lsq_capacity
    );
    println!();
    println!("  configuration        LS UIPC   batch UIPC");
    println!("  baseline (96-96)      {ls_base:6.3}      {batch_base:6.3}");
    println!("  B-mode   (56-136)     {ls_stretch:6.3}      {batch_stretch:6.3}");
    println!();
    println!("  batch speedup from B-mode: {:+.1}%", (batch_stretch / batch_base - 1.0) * 100.0);
    println!("  latency-sensitive slowdown: {:+.1}%", (1.0 - ls_stretch / ls_base) * 100.0);
    println!();
    println!("At low to moderate service load the latency-sensitive slowdown is absorbed");
    println!("by QoS slack (see the datacenter_cluster example), so the batch speedup is free.");
}
