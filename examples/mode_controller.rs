//! Closed-loop mode control: replay a diurnal day against the queueing model
//! and let the Stretch software monitor decide, interval by interval, whether
//! to engage B-mode, fall back to the baseline, or boost QoS.
//!
//! Run with: `cargo run --release --example mode_controller`

use stretch_repro::cluster::DiurnalPattern;
use stretch_repro::qos::{ServiceSpec, SimParams};
use stretch_repro::stretch::orchestrator::PerformanceTable;
use stretch_repro::stretch::{MonitorConfig, Orchestrator, StretchConfig};

fn main() {
    let service = ServiceSpec::web_search();
    let pattern = DiurnalPattern::WebSearch;

    // Hourly control intervals over one day.
    let loads: Vec<f64> = pattern.sample(1.0).into_iter().map(|s| s.load).collect();

    let mut orchestrator = Orchestrator::new(
        service.clone(),
        StretchConfig::recommended(),
        MonitorConfig::default(),
        PerformanceTable::paper_defaults(),
        SimParams::standard(31),
    );
    let report = orchestrator.run_trace(&loads);

    println!("Closed-loop Stretch control over one diurnal day ({})", service.name);
    println!("  hour  load   mode            p99 (ms)  QoS      batch throughput");
    for (hour, interval) in report.intervals.iter().enumerate() {
        println!(
            "  {hour:>4}  {:>4.0}%  {:<14}  {:>7.1}  {:<7}  {:>6.2}x",
            interval.load * 100.0,
            interval.mode.to_string(),
            interval.tail_latency_ms,
            if interval.qos_violated { "VIOLATED" } else { "ok" },
            interval.batch_throughput
        );
    }
    println!();
    println!(
        "  B-mode engaged for {} of {} intervals; average batch throughput {:+.1}% vs baseline; \
         {} QoS violation(s).",
        report.b_mode_intervals,
        report.intervals.len(),
        report.batch_gain() * 100.0,
        report.violations
    );
}
