//! Closed-loop mode control: replay a diurnal day against the queueing model
//! and let the Stretch policy decide, interval by interval, whether to
//! engage B-mode, fall back to the baseline, or boost QoS.
//!
//! The orchestrator drives a `ClosedLoopStretch` policy through the same
//! `ColocationPolicy` interface the figures use, and its per-mode
//! performance table can come from the paper's headline numbers *or* from
//! cycle-level `Scenario` measurements — both are shown here.
//!
//! Run with: `cargo run --release --example mode_controller`

use stretch_repro::cluster::DiurnalPattern;
use stretch_repro::cpu::SimLength;
use stretch_repro::model::CoreConfig;
use stretch_repro::qos::{ServiceSpec, SimParams};
use stretch_repro::stretch::orchestrator::PerformanceTable;
use stretch_repro::stretch::{MonitorConfig, Orchestrator, StretchConfig};

fn main() {
    let service = ServiceSpec::web_search();
    let pattern = DiurnalPattern::WebSearch;

    // Hourly control intervals over one day.
    let loads: Vec<f64> = pattern.sample(1.0).into_iter().map(|s| s.load).collect();

    let mut orchestrator = Orchestrator::new(
        service.clone(),
        StretchConfig::recommended(),
        MonitorConfig::default(),
        PerformanceTable::paper_defaults(),
        SimParams::standard(31),
    );
    let report = orchestrator.run_trace(&loads);

    println!("Closed-loop Stretch control over one diurnal day ({})", service.name);
    println!("  hour  load   mode            p99 (ms)  QoS      batch throughput");
    for (hour, interval) in report.intervals.iter().enumerate() {
        println!(
            "  {hour:>4}  {:>4.0}%  {:<14}  {:>7.1}  {:<7}  {:>6.2}x",
            interval.load * 100.0,
            interval.mode.to_string(),
            interval.tail_latency_ms,
            if interval.qos_violated { "VIOLATED" } else { "ok" },
            interval.batch_throughput
        );
    }
    println!();
    println!(
        "  B-mode engaged for {} of {} intervals; average batch throughput {:+.1}% vs baseline; \
         {} QoS violation(s).",
        report.b_mode_intervals,
        report.intervals.len(),
        report.batch_gain() * 100.0,
        report.violations
    );

    // The same loop, but with the per-mode performance MEASURED by the
    // cycle-level core model through the policy trait (quick length keeps
    // the example fast; the figure binaries use the standard length).
    let measured = PerformanceTable::measured(
        &CoreConfig::default(),
        "web-search",
        "zeusmp",
        StretchConfig::recommended(),
        SimLength::quick(),
        31,
    );
    let mut measured_orchestrator = Orchestrator::new(
        service,
        StretchConfig::recommended(),
        MonitorConfig::default(),
        measured,
        SimParams::standard(31),
    );
    let measured_report = measured_orchestrator.run_trace(&loads);
    println!();
    println!(
        "With a cycle-measured table (web-search + zeusmp at quick length): LS retains \
         {:.0}% / {:.0}% / {:.0}% of full-core performance in baseline / B-mode / Q-mode;",
        measured.baseline.ls_performance * 100.0,
        measured.b_mode.ls_performance * 100.0,
        measured.q_mode.ls_performance * 100.0,
    );
    println!(
        "the same day yields {:+.1}% batch throughput with {} violation(s).",
        measured_report.batch_gain() * 100.0,
        measured_report.violations
    );
}
