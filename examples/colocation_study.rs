//! Colocation study: measure how much each side of an SMT colocation loses
//! relative to running alone on a full core (a miniature of Figures 3 and 6).
//!
//! Run with: `cargo run --release --example colocation_study [ls-workload]`
//! where `ls-workload` is one of `data-serving`, `web-serving`, `web-search`
//! (default) or `media-streaming`.

use stretch_repro::cpu::{run_pair, run_standalone, run_standalone_with_rob, CoreSetup, SimLength};
use stretch_repro::model::{CoreConfig, ThreadId};
use stretch_repro::workloads::{batch, latency_sensitive, profile_by_name};

fn main() {
    let ls_name = std::env::args().nth(1).unwrap_or_else(|| "web-search".to_string());
    let ls_profile = latency_sensitive::profile_by_name(&ls_name)
        .unwrap_or_else(|| panic!("unknown latency-sensitive workload: {ls_name}"));

    let cfg = CoreConfig::default();
    let length = SimLength::standard();
    let seed = 11;
    let batch_subset = ["zeusmp", "mcf", "lbm", "gcc", "gamess", "povray"];

    println!("Colocation study: {ls_name} against a spread of batch co-runners");
    println!();

    // Stand-alone references on a full private core.
    let ls_alone = run_standalone(&cfg, ls_profile.spawn(seed), length).uipc;
    println!("{ls_name:>16} stand-alone UIPC: {ls_alone:.3}");
    println!();
    println!("  batch co-runner   LS slowdown   batch slowdown");

    for name in batch_subset {
        let batch_profile = profile_by_name(name).expect("known batch workload");
        let batch_alone = run_standalone(&cfg, batch_profile.spawn(seed ^ 1), length).uipc;
        let pair = run_pair(
            &cfg,
            CoreSetup::baseline(&cfg),
            ls_profile.spawn(seed),
            batch_profile.spawn(seed ^ 1),
            length,
        );
        let ls_slow = 1.0 - pair.uipc(ThreadId::T0) / ls_alone;
        let batch_slow = 1.0 - pair.uipc(ThreadId::T1) / batch_alone;
        println!("  {name:<16}  {:>9.1}%   {:>12.1}%", ls_slow * 100.0, batch_slow * 100.0);
    }

    // ROB sensitivity of the latency-sensitive workload vs a batch workload.
    println!();
    println!("ROB sensitivity (stand-alone, normalised to a 192-entry ROB):");
    println!("  ROB entries     {ls_name:<16} zeusmp");
    let ls_full = run_standalone_with_rob(&cfg, ls_profile.spawn(seed), 192, length).uipc;
    let zeusmp_full = run_standalone_with_rob(&cfg, batch::zeusmp(seed ^ 2), 192, length).uipc;
    for rob in [32usize, 48, 96, 144, 192] {
        let ls = run_standalone_with_rob(&cfg, ls_profile.spawn(seed), rob, length).uipc;
        let z = run_standalone_with_rob(&cfg, batch::zeusmp(seed ^ 2), rob, length).uipc;
        println!(
            "  {rob:>11}     {:>15.1}% {:>7.1}%",
            ls / ls_full * 100.0,
            z / zeusmp_full * 100.0
        );
    }
    println!();
    println!("Latency-sensitive services barely benefit from a large window, while");
    println!("MLP-rich batch workloads like zeusmp leave a lot of performance in it —");
    println!("the asymmetry Stretch exploits.");
}
