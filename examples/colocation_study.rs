//! Colocation study: measure how much each side of an SMT colocation loses
//! relative to running alone on a full core (a miniature of Figures 3 and 6),
//! entirely through the `Scenario` API.
//!
//! Run with: `cargo run --release --example colocation_study [ls-workload]`
//! where `ls-workload` is one of `data-serving`, `web-serving`, `web-search`
//! (default) or `media-streaming`.

use stretch_repro::cpu::{EqualPartition, PrivateCore, Scenario, SimLength};
use stretch_repro::model::{CoreConfig, ThreadId};
use stretch_repro::workloads::{latency_sensitive, profile_by_name, WorkloadProfile};

fn main() {
    let ls_name = std::env::args().nth(1).unwrap_or_else(|| "web-search".to_string());
    let ls_profile = latency_sensitive::profile_by_name(&ls_name)
        .unwrap_or_else(|| panic!("unknown latency-sensitive workload: {ls_name}"));

    let cfg = CoreConfig::default();
    let length = SimLength::standard();
    let seed = 11;
    let batch_subset = ["zeusmp", "mcf", "lbm", "gcc", "gamess", "povray"];

    let standalone = |profile: WorkloadProfile| {
        Scenario::standalone(profile).config(cfg).length(length).seed(seed).run_thread0().uipc
    };
    let standalone_with_rob = |profile: WorkloadProfile, rob: usize| {
        Scenario::standalone(profile)
            .config(cfg)
            .policy(PrivateCore::with_rob(rob))
            .length(length)
            .seed(seed)
            .run_thread0()
            .uipc
    };

    println!("Colocation study: {ls_name} against a spread of batch co-runners");
    println!();

    // Stand-alone references on a full private core.
    let ls_alone = standalone(ls_profile.clone());
    println!("{ls_name:>16} stand-alone UIPC: {ls_alone:.3}");
    println!();
    println!("  batch co-runner   LS slowdown   batch slowdown");

    for name in batch_subset {
        let batch_profile = profile_by_name(name).expect("known batch workload");
        let batch_alone = standalone(batch_profile.clone());
        let pair = Scenario::colocate(ls_profile.clone(), batch_profile)
            .config(cfg)
            .policy(EqualPartition)
            .length(length)
            .seed(seed)
            .run();
        let ls_slow = 1.0 - pair.expect_thread(ThreadId::T0).uipc / ls_alone;
        let batch_slow = 1.0 - pair.expect_thread(ThreadId::T1).uipc / batch_alone;
        println!("  {name:<16}  {:>9.1}%   {:>12.1}%", ls_slow * 100.0, batch_slow * 100.0);
    }

    // ROB sensitivity of the latency-sensitive workload vs a batch workload.
    println!();
    println!("ROB sensitivity (stand-alone, normalised to a 192-entry ROB):");
    println!("  ROB entries     {ls_name:<16} zeusmp");
    let zeusmp = profile_by_name("zeusmp").expect("zeusmp exists");
    let ls_full = standalone_with_rob(ls_profile.clone(), 192);
    let zeusmp_full = standalone_with_rob(zeusmp.clone(), 192);
    for rob in [32usize, 48, 96, 144, 192] {
        let ls = standalone_with_rob(ls_profile.clone(), rob);
        let z = standalone_with_rob(zeusmp.clone(), rob);
        println!(
            "  {rob:>11}     {:>15.1}% {:>7.1}%",
            ls / ls_full * 100.0,
            z / zeusmp_full * 100.0
        );
    }
    println!();
    println!("Latency-sensitive services barely benefit from a large window, while");
    println!("MLP-rich batch workloads like zeusmp leave a lot of performance in it —");
    println!("the asymmetry Stretch exploits.");
}
