//! SMT4 allocation study: offer one latency-sensitive service plus three
//! batch jobs to a 2-core SMT4 server and compare the allocation policies —
//! which thread lands on which core — with Stretch's B-mode partitioning
//! applied inside every occupied core. The two policy layers compose: the
//! `AllocationPolicy` picks the placement, the `ColocationPolicy` splits
//! each core's ROB/LSQ among its residents.
//!
//! Run with: `cargo run --release --example smt4_allocation`

use stretch_repro::cpu::{
    AllocationPolicy, Greedy, RoundRobin, Scenario, ServerSpec, ServerThread, SimLength,
    SymbiosisAware, ThreadSpec,
};
use stretch_repro::model::CoreConfig;
use stretch_repro::stretch::{PinnedStretch, RobSkew, StretchMode};
use stretch_repro::workloads::profile_by_name;

fn main() {
    let cfg = CoreConfig::default();
    let spec = ServerSpec::new(2, 4);
    let length = SimLength::standard();
    let population = [("web-search", true), ("zeusmp", false), ("gcc", false), ("mcf", false)];

    // Stand-alone full-core UIPC per workload: the normalisation reference
    // for the service and the symbiosis signal for the allocator.
    let standalone: Vec<f64> = population
        .iter()
        .map(|(name, _)| {
            Scenario::standalone(profile_by_name(name).expect("known workload"))
                .config(cfg)
                .length(length)
                .seed(7)
                .run_thread0()
                .uipc
        })
        .collect();

    let allocations: [(&str, &dyn AllocationPolicy); 3] =
        [("greedy", &Greedy), ("round-robin", &RoundRobin), ("symbiosis-aware", &SymbiosisAware)];

    println!(
        "SMT4 allocation study: 1 LS + 3 batch on {} cores x SMT{}",
        spec.cores, spec.threads_per_core
    );
    println!("  partitioning inside every occupied core: Stretch B-mode 56-136");
    println!();
    println!("  allocation       placement              LS retained   batch thrpt");
    for (label, allocation) in allocations {
        let mut scenario = Scenario::server(spec)
            .config(cfg)
            .boxed_allocation(allocation.clone_policy())
            .colocation(PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode())))
            .length(length)
            .seed(7);
        for ((name, is_ls), &uipc) in population.iter().zip(&standalone) {
            let thread_spec = if *is_ls {
                ThreadSpec::latency_sensitive(*name)
            } else {
                ThreadSpec::batch(*name)
            }
            .with_standalone_uipc(uipc);
            scenario = scenario.thread(ServerThread::new(
                thread_spec,
                Box::new(profile_by_name(name).expect("known workload")),
            ));
        }
        let result = scenario.run();
        let placement: Vec<String> = result
            .placement
            .cores()
            .iter()
            .map(|core| {
                if core.is_empty() {
                    "-".to_string()
                } else {
                    core.iter()
                        .map(|&t| if t == 0 { "LS".to_string() } else { format!("B{t}") })
                        .collect::<Vec<_>>()
                        .join("+")
                }
            })
            .collect();
        let ls_retained = result.thread_uipc(0).expect("the service ran") / standalone[0];
        println!(
            "  {label:<16} {:<22} {:>10.1}%   {:>8.3} uIPC",
            placement.join(" | "),
            ls_retained * 100.0,
            result.batch_throughput(),
        );
    }
    println!();
    println!("Greedy gives the service a core of its own; round-robin deals threads across");
    println!("cores; the symbiosis-aware allocator pairs the extremes of the batch mix with");
    println!("the service. Static partitions mean even an isolated service holds only its");
    println!("share of the core, so 'LS retained' compares against the full-core run.");
}
