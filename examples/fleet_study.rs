//! Fleet study: the §VI-D cluster case studies *measured* by a
//! load-balanced datacenter simulation instead of reproduced by accounting.
//!
//! A `Fleet` is N servers, each an SMT core pair whose Stretch mode is
//! picked by its own closed-loop monitor from the tail latency of its own
//! requests; one diurnal-modulated open-loop arrival stream feeds the fleet
//! through a pluggable load balancer. The analytical `CaseStudy` numbers
//! are printed alongside as the cross-check.
//!
//! Run with: `cargo run --release --example fleet_study`

use stretch_repro::cluster::{CaseStudy, FleetScale, LoadBalancer};

fn main() {
    let scale = FleetScale::quick(42);
    println!(
        "Fleet: {} servers, {} measured requests per server-interval, seed {}",
        scale.servers, scale.requests_per_server, scale.seed
    );
    println!();

    for (name, study) in
        [("Web Search cluster", CaseStudy::web_search()), ("YouTube cluster", CaseStudy::youtube())]
    {
        let analytical = study.run();
        println!("{name} (paper: {})", if name.starts_with("Web") { "+5%" } else { "+11%" });
        println!(
            "  analytical accounting: engaged {:>4.1} h/day -> {:+.1}% 24-hour batch throughput",
            analytical.hours_engaged,
            analytical.gain() * 100.0
        );
        for balancer in LoadBalancer::ALL {
            // `CaseStudy::fleet` measures the peak once and reuses it for
            // both the threshold calibration and the day's run.
            let report = study.fleet(balancer, scale).run();
            println!(
                "  measured, {:<22}  engaged {:>4.1} h/day -> {:+.1}%   \
                 p50 {:>4.0} ms  p99 {:>5.0} ms  violations {:>4.1}%",
                format!("{balancer}:"),
                report.hours_engaged,
                report.gain() * 100.0,
                report.p50_ms,
                report.p99_ms,
                report.violation_fraction * 100.0
            );
        }
        println!();
    }

    // A peek at the control loop itself: one measured day, hour by hour.
    let study = CaseStudy::web_search();
    let report = study.run_fleet(LoadBalancer::PowerOfTwoChoices, scale);
    println!("Web Search day under power-of-two-choices dispatch (every 2 hours):");
    println!("  hour   load   engaged servers   interval p99");
    for iv in report.intervals.iter().step_by(8) {
        println!(
            "  {:>4.0}   {:>3.0}%   {:>7} of {}      {:>6.1} ms",
            iv.hour,
            iv.load * 100.0,
            iv.engaged_servers,
            report.servers.len(),
            iv.p99_ms
        );
    }
    let changes: u64 = report.servers.iter().map(|s| s.mode_changes).sum();
    println!();
    println!(
        "{} requests measured; {} mode changes across the fleet; every engagement was a \
         measured decision.",
        report.requests, changes
    );
}
