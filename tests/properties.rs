//! Property-based tests over the core data structures and invariants of the
//! reproduction, using proptest.

use proptest::prelude::*;
use stretch_repro::model::{CoreConfig, SimRng, ThreadId, TraceGenerator, WorkloadClass};
use stretch_repro::stats::percentile::percentile;
use stretch_repro::stats::{DistributionSummary, Histogram};
use stretch_repro::stretch::{RobSkew, StretchMode};
use stretch_repro::workloads::WorkloadProfile;

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        0.0f64..0.45,
        0.0f64..0.25,
        0.0f64..0.25,
        0.0f64..1.0,
        0.5f64..1.0,
        1u64..64,
        1u64..256,
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        2u8..32,
    )
        .prop_map(
            |(load, store, branch, fp, pred, code_kb, data_mb, (hot, stride, dep), dist)| {
                WorkloadProfile {
                    name: "prop".to_string(),
                    class: WorkloadClass::Batch,
                    load_frac: load,
                    store_frac: store,
                    branch_frac: branch,
                    fp_frac: fp,
                    mul_frac: 0.05,
                    code_footprint_bytes: code_kb * 1024,
                    branch_predictability: pred,
                    data_footprint_bytes: data_mb * 1024 * 1024,
                    hot_region_bytes: 16 * 1024,
                    hot_access_frac: hot,
                    stride_frac: stride,
                    dependent_load_frac: dep,
                    dependency_distance: dist,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- RNG ----------------

    #[test]
    fn rng_below_always_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_is_deterministic_per_seed(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    // ---------------- statistics ----------------

    #[test]
    fn percentile_is_within_sample_range(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let result = percentile(&xs, p).expect("non-empty samples");
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(result >= xs[0] - 1e-9 && result <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn percentiles_are_monotone_in_p(xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let p25 = percentile(&xs, 25.0).unwrap();
        let p50 = percentile(&xs, 50.0).unwrap();
        let p99 = percentile(&xs, 99.0).unwrap();
        prop_assert!(p25 <= p50 + 1e-9);
        prop_assert!(p50 <= p99 + 1e-9);
    }

    #[test]
    fn tail_percentiles_are_ordered(xs in prop::collection::vec(0.0f64..1e6, 1..300)) {
        // The fleet report's invariant: p50 <= p95 <= p99 on any sample set.
        let p50 = percentile(&xs, 50.0).unwrap();
        let p95 = percentile(&xs, 95.0).unwrap();
        let p99 = percentile(&xs, 99.0).unwrap();
        prop_assert!(p50 <= p95 + 1e-9, "p50 {p50} above p95 {p95}");
        prop_assert!(p95 <= p99 + 1e-9, "p95 {p95} above p99 {p99}");
    }

    #[test]
    fn percentiles_are_invariant_under_sample_permutation(
        xs in prop::collection::vec(-1e4f64..1e4, 2..200),
        perm_seed in any::<u64>(),
        p in 0.0f64..100.0,
    ) {
        // Deterministic Fisher–Yates permutation of the sample order.
        let mut shuffled = xs.clone();
        let mut rng = SimRng::new(perm_seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }
        let original = percentile(&xs, p).unwrap();
        let permuted = percentile(&shuffled, p).unwrap();
        prop_assert_eq!(
            original.to_bits(),
            permuted.to_bits(),
            "percentile {} changed under permutation: {} vs {}",
            p,
            original,
            permuted
        );
    }

    #[test]
    fn merged_histograms_summarise_like_concatenated_samples(
        a in prop::collection::vec(0usize..16, 0..150),
        b in prop::collection::vec(0usize..16, 0..150),
    ) {
        let max_value = 12;
        let mut ha = Histogram::new(max_value);
        for &v in &a {
            ha.record(v);
        }
        let mut hb = Histogram::new(max_value);
        for &v in &b {
            hb.record(v);
        }
        let mut concat = Histogram::new(max_value);
        for &v in a.iter().chain(&b) {
            concat.record(v);
        }
        ha.merge(&hb);
        // Merging two histograms must be indistinguishable from having
        // recorded the concatenated sample stream into one histogram.
        prop_assert_eq!(&ha, &concat);
        prop_assert_eq!(ha.total(), (a.len() + b.len()) as u64);
        for n in 0..=max_value {
            prop_assert!((ha.fraction_at_least(n) - concat.fraction_at_least(n)).abs() < 1e-12);
        }
        match (ha.mean(), concat.mean()) {
            (Some(x), Some(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
            (none_a, none_b) => prop_assert_eq!(none_a.is_none(), none_b.is_none()),
        }
    }

    #[test]
    fn distribution_summary_orders_its_quantiles(xs in prop::collection::vec(-1e4f64..1e4, 1..100)) {
        let s = DistributionSummary::from_samples(&xs);
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, xs.len());
    }

    #[test]
    fn histogram_fractions_are_consistent(values in prop::collection::vec(0usize..20, 1..200)) {
        let mut h = Histogram::new(10);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert!((h.fraction_at_least(0) - 1.0).abs() < 1e-12);
        // Cumulative fractions are non-increasing in N.
        for n in 0..10 {
            prop_assert!(h.fraction_at_least(n) + 1e-12 >= h.fraction_at_least(n + 1));
        }
    }

    // ---------------- Stretch configuration ----------------

    #[test]
    fn any_valid_skew_maps_to_consistent_partition_limits(ls in 1usize..191) {
        let cfg = CoreConfig::default();
        let batch = cfg.rob_capacity - ls;
        let skew = RobSkew::new(ls, batch);
        prop_assert!(skew.validate(&cfg).is_ok());
        for mode in [StretchMode::BatchBoost(skew), StretchMode::QosBoost(skew)] {
            for ls_thread in ThreadId::ALL {
                let policy = mode.partition_policy(&cfg, ls_thread);
                let t0 = policy.rob_limit(&cfg, ThreadId::T0);
                let t1 = policy.rob_limit(&cfg, ThreadId::T1);
                prop_assert_eq!(t0 + t1, cfg.rob_capacity);
                prop_assert_eq!(policy.rob_limit(&cfg, ls_thread), ls);
                // The LSQ split never exceeds the LSQ capacity.
                prop_assert!(
                    policy.lsq_limit(&cfg, ThreadId::T0) + policy.lsq_limit(&cfg, ThreadId::T1)
                        <= cfg.lsq_capacity + 8
                );
            }
        }
    }

    // ---------------- workload generator ----------------

    #[test]
    fn every_valid_profile_generates_well_formed_deterministic_streams(
        profile in arb_profile(),
        seed in any::<u64>(),
    ) {
        prop_assume!(profile.validate().is_ok());
        let mut a = profile.spawn(seed);
        let mut b = profile.spawn(seed);
        for _ in 0..200 {
            let op_a = a.next_op();
            let op_b = b.next_op();
            prop_assert!(op_a.is_well_formed(), "{op_a:?}");
            prop_assert_eq!(op_a, op_b);
        }
        prop_assert_eq!(a.class(), WorkloadClass::Batch);
    }

    #[test]
    fn generated_addresses_respect_the_profile_footprints(profile in arb_profile(), seed in any::<u64>()) {
        prop_assume!(profile.validate().is_ok());
        let mut gen = profile.spawn(seed);
        let mut last_pc_block: Option<u64> = None;
        for _ in 0..300 {
            let op = gen.next_op();
            if let Some(mem) = op.mem {
                // Data addresses never collide with the code region.
                prop_assert!(mem.addr > 0x100_0000_0000);
            }
            last_pc_block = Some(op.pc >> 6);
        }
        prop_assert!(last_pc_block.is_some());
    }
}
