//! Smoke test for the figure harness: drives `stretch_bench`'s colocation
//! matrix machinery (the code path behind every `figureNN` binary) on a
//! `SimLength::quick()` 2 × 2 sub-matrix, so `cargo test` exercises the
//! harness without paying for the full 4 × 29 study.

use stretch_bench::harness::{run_matrix_on, ExperimentConfig, PairOutcome};
use stretch_repro::prelude::*;

#[test]
fn quick_2x2_sub_matrix_exercises_the_figure_harness() {
    let cfg = ExperimentConfig { length: SimLength::quick(), ..ExperimentConfig::quick() };
    let ls = ["web-search".to_string(), "data-serving".to_string()];
    let batch = ["zeusmp".to_string(), "mcf".to_string()];

    // `run_matrix_with` delegates to `run_matrix_on` with the full study;
    // the sub-matrix keeps the identical code path at test-friendly cost.
    let outcomes = run_matrix_on(&cfg, &ls, &batch, |_ls, _batch| CoreSetup::baseline(&cfg.core));

    assert_eq!(outcomes.len(), 4, "2x2 matrix yields one outcome per pairing");
    let commit_width = cfg.core.commit_width as f64;
    for PairOutcome { ls, batch, ls_uipc, batch_uipc } in &outcomes {
        assert!(
            *ls_uipc > 0.0 && *batch_uipc > 0.0,
            "both threads must retire uops for {ls} x {batch}"
        );
        assert!(
            *ls_uipc < commit_width && *batch_uipc < commit_width,
            "UIPC cannot exceed the {commit_width}-wide commit stage for {ls} x {batch}"
        );
    }
    // Row-major ordering contract: first LS name first, batch order preserved.
    let order: Vec<(&str, &str)> =
        outcomes.iter().map(|o| (o.ls.as_str(), o.batch.as_str())).collect();
    assert_eq!(
        order,
        [
            ("web-search", "zeusmp"),
            ("web-search", "mcf"),
            ("data-serving", "zeusmp"),
            ("data-serving", "mcf"),
        ]
    );
}

#[test]
fn harness_matrix_runs_are_deterministic() {
    // Paired comparisons across figures rely on the harness producing the
    // exact same numbers for the same (seed, pairing, setup); worker-thread
    // scheduling must not leak into results.
    let cfg = ExperimentConfig::quick();
    let ls = ["web-search".to_string()];
    let batch = ["zeusmp".to_string()];
    let first = run_matrix_on(&cfg, &ls, &batch, |_, _| CoreSetup::baseline(&cfg.core));
    let second = run_matrix_on(&cfg, &ls, &batch, |_, _| CoreSetup::baseline(&cfg.core));
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].ls_uipc.to_bits(), second[0].ls_uipc.to_bits());
    assert_eq!(first[0].batch_uipc.to_bits(), second[0].batch_uipc.to_bits());

    // The paper's premise (Figure 3) is that colocation costs the
    // latency-sensitive thread throughput; at quick() length the effect can
    // drown in warm-up noise, so only bound it loosely here (the full-length
    // figure binaries make the real comparison).
    let core = CoreConfig::default();
    let standalone = stretch_repro::cpu::run_standalone(
        &core,
        stretch_repro::workloads::latency_sensitive::web_search(42),
        SimLength::quick(),
    );
    assert!(
        first[0].ls_uipc < standalone.uipc * 1.25,
        "colocated UIPC {} should not exceed standalone {} by more than noise",
        first[0].ls_uipc,
        standalone.uipc
    );
}
