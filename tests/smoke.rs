//! Smoke test for the figure harness: drives `stretch_bench`'s engine — the
//! code path behind every `figureNN` binary — on a `SimLength::quick()`
//! 2 × 2 sub-matrix, so `cargo test` exercises the harness without paying
//! for the full 4 × 29 study.

use stretch_bench::{Engine, ExperimentConfig, PairOutcome};
use stretch_repro::prelude::*;

#[test]
fn quick_2x2_sub_matrix_exercises_the_figure_harness() {
    let engine = Engine::new(ExperimentConfig::quick()).with_sub_matrix(2, 2);
    let outcomes = engine.matrix(&EqualPartition);

    assert_eq!(outcomes.len(), 4, "2x2 matrix yields one outcome per pairing");
    let commit_width = engine.cfg().core.commit_width as f64;
    for PairOutcome { ls, batch, ls_uipc, batch_uipc } in &outcomes {
        assert!(
            *ls_uipc > 0.0 && *batch_uipc > 0.0,
            "both threads must retire uops for {ls} x {batch}"
        );
        assert!(
            *ls_uipc < commit_width && *batch_uipc < commit_width,
            "UIPC cannot exceed the {commit_width}-wide commit stage for {ls} x {batch}"
        );
    }
    // Row-major ordering contract: first LS name first, batch order preserved.
    let order: Vec<(&str, &str)> =
        outcomes.iter().map(|o| (o.ls.as_str(), o.batch.as_str())).collect();
    let expected: Vec<(&str, &str)> = engine
        .ls_names()
        .iter()
        .flat_map(|ls| engine.batch_names().iter().map(move |b| (ls.as_str(), b.as_str())))
        .collect();
    assert_eq!(order, expected);
}

#[test]
fn harness_matrix_runs_are_deterministic() {
    // Paired comparisons across figures rely on the harness producing the
    // exact same numbers for the same (seed, pairing, policy); worker-thread
    // scheduling must not leak into results. Two *fresh* engines guarantee
    // the second run is a genuine recomputation, not a memo hit.
    let run =
        || Engine::new(ExperimentConfig::quick()).with_sub_matrix(1, 1).matrix(&EqualPartition);
    let first = run();
    let second = run();
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].ls_uipc.to_bits(), second[0].ls_uipc.to_bits());
    assert_eq!(first[0].batch_uipc.to_bits(), second[0].batch_uipc.to_bits());

    // The paper's premise (Figure 3) is that colocation costs the
    // latency-sensitive thread throughput; at quick() length the effect can
    // drown in warm-up noise, so only bound it loosely here (the full-length
    // figure binaries make the real comparison).
    let ls = first[0].ls.clone();
    let standalone = Scenario::standalone(
        stretch_repro::workloads::profile_by_name(&ls).expect("known workload"),
    )
    .length(SimLength::quick())
    .seed(42)
    .run_thread0();
    assert!(
        first[0].ls_uipc < standalone.uipc * 1.25,
        "colocated UIPC {} should not exceed standalone {} by more than noise",
        first[0].ls_uipc,
        standalone.uipc
    );
}
