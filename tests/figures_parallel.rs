//! Determinism pin for the parallel figure matrix: `figures::render_many`
//! must produce byte-identical figure output and an identical on-disk result
//! store (same cache digests, same entry bytes) at any worker count.
//!
//! The serial path (1 worker) is the reference; 2 and 8 workers must match it
//! exactly. This is the test-level mirror of the CI step that renders the
//! full cold matrix at two worker counts and literally `diff`s the outputs —
//! here on a cheap figure subset so debug-mode `cargo test` stays fast, with
//! the result-store bytes checked as well (CI only diffs the rendered text).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use stretch_bench::figures;
use stretch_bench::{Engine, ExperimentConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let unique = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("stretch-figpar-{tag}-{}-{unique}", std::process::id()))
}

/// A cheap but layer-spanning subset: two QoS-layer curves, one CPU-layer
/// colocation figure (real pair simulations) and the static tables.
const SUBSET: [&str; 4] = ["figure01", "figure02", "figure03", "tables"];

/// Renders the subset at the given worker count against a fresh engine and a
/// fresh result store, returning the concatenated output and the store's
/// entries as sorted (file name, bytes) pairs.
fn render_subset(workers: usize, dir: &Path) -> (String, Vec<(String, Vec<u8>)>) {
    let mut cfg = ExperimentConfig::quick();
    cfg.parallelism = workers;
    let engine =
        Engine::new(cfg).with_sub_matrix(1, 2).with_store(dir).expect("result store opens");
    let specs: Vec<&figures::FigureSpec> =
        SUBSET.iter().map(|name| figures::by_name(name).expect("figure in registry")).collect();
    let text = figures::render_many(&engine, &specs, workers).join("\n");
    let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("store directory readable")
        .map(|entry| {
            let entry = entry.expect("store directory entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("store entry readable");
            (name, bytes)
        })
        .collect();
    entries.sort();
    (text, entries)
}

#[test]
fn parallel_figure_matrix_matches_serial_at_every_worker_count() {
    let serial_dir = temp_dir("w1");
    let (serial_text, serial_entries) = render_subset(1, &serial_dir);
    assert!(!serial_text.is_empty());
    assert!(!serial_entries.is_empty(), "rendering must persist result-store entries");

    for workers in [2usize, 8] {
        let dir = temp_dir(&format!("w{workers}"));
        let (text, entries) = render_subset(workers, &dir);
        assert_eq!(
            text, serial_text,
            "figure output at {workers} workers must be byte-identical to the serial path"
        );
        let names = |list: &[(String, Vec<u8>)]| {
            list.iter().map(|(n, _)| n.clone()).collect::<Vec<String>>()
        };
        assert_eq!(
            names(&entries),
            names(&serial_entries),
            "cache digests at {workers} workers must match the serial path"
        );
        for ((name, bytes), (_, serial_bytes)) in entries.iter().zip(&serial_entries) {
            assert_eq!(
                bytes, serial_bytes,
                "store entry {name} at {workers} workers must match the serial path byte-for-byte"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&serial_dir);
}
