//! Integration tests for the `simlint` workspace analyzer: one test per
//! lint rule against the fixture corpus in `tests/simlint_fixtures/`
//! (asserting exact `file:line:column` spans and that `simlint: allow`
//! suppresses), plus a self-run over the live workspace asserting the tree
//! is clean.

use simlint::manifest::{self, SourceFile};
use simlint::report::Finding;
use simlint::rules;
use simlint::{analyze_source_as, analyze_sources, RuleFilter, Workspace};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/simlint_fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).expect("fixture corpus file exists")
}

fn span(f: &Finding) -> (&'static str, u32, u32, bool) {
    (f.rule, f.line, f.column, f.suppressed.is_some())
}

#[test]
fn nondet_collections_flags_maps_and_allow_suppresses() {
    let findings = analyze_source_as("crates/x/src/lib.rs", &fixture("nondet_collections.rs"));
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(
        got,
        vec![
            ("nondet-collections", 4, 10, false), // map: HashMap<String, u64>
            ("nondet-collections", 7, 21, true),  // HashSet return type, allowed
            ("nondet-collections", 8, 5, true),   // HashSet::new(), allowed
        ]
    );
    // Suppressions carry the reason through to the report.
    assert_eq!(findings[1].suppressed.as_deref(), Some("fixture: membership only"));
    // The bench Engine allowlist turns the same source clean.
    assert!(analyze_source_as("crates/bench/src/engine.rs", &fixture("nondet_collections.rs"))
        .iter()
        .all(|f| f.rule != "nondet-collections"));
}

#[test]
fn nondet_time_flags_clock_entropy_and_env_reads() {
    let findings = analyze_source_as("crates/x/src/lib.rs", &fixture("nondet_time.rs"));
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(
        got,
        vec![
            ("nondet-time", 2, 13, false), // Instant::now()
            ("nondet-time", 7, 13, true),  // thread_rng(), allowed
            ("nondet-time", 8, 10, false), // std::env::var
        ]
    );
    assert!(findings[0].message.contains("Instant::now"));
    assert!(findings[2].message.contains("env::var"));
    // The perf harness is allowlisted wholesale; test files are exempt.
    assert!(analyze_source_as("crates/bench/src/perf.rs", &fixture("nondet_time.rs"))
        .iter()
        .all(|f| f.rule != "nondet-time"));
    // Test files are exempt too (the fixture's allow directive then becomes
    // stale, which is an allow-hygiene matter, not a nondet-time one).
    assert!(analyze_source_as("tests/anything.rs", &fixture("nondet_time.rs"))
        .iter()
        .all(|f| f.rule != "nondet-time"));
}

#[test]
fn float_eq_flags_literal_comparisons_only() {
    let findings = analyze_source_as("crates/x/src/lib.rs", &fixture("float_eq.rs"));
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(
        got,
        vec![
            ("float-eq", 2, 7, false), // a == 1.0
            ("float-eq", 6, 7, true),  // a != 0.5, allowed
        ]
    );
    assert!(findings[0].message.contains("=="));
    assert!(findings[1].message.contains("!="));
}

#[test]
fn panic_policy_flags_bare_unwrap_and_empty_expect() {
    let src = fixture("panic_policy.rs");
    let findings = analyze_source_as("crates/x/src/lib.rs", &src);
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(
        got,
        vec![
            ("panic-policy", 2, 16, false), // .unwrap()
            ("panic-policy", 6, 16, false), // .expect("")
        ]
    );
    // A justified expect (line 10) and the #[cfg(test)] unwrap are clean.
    // An allow directive on the unwrap line suppresses it.
    let allowed =
        src.replacen(".unwrap()", ".unwrap() // simlint: allow(panic-policy, \"fixture\")", 1);
    let findings = analyze_source_as("crates/x/src/lib.rs", &allowed);
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(got, vec![("panic-policy", 2, 16, true), ("panic-policy", 6, 16, false)]);
    // Bins, examples, benches and tests are exempt from the panic policy.
    for path in ["crates/x/src/main.rs", "examples/demo.rs", "crates/x/benches/b.rs", "tests/t.rs"]
    {
        assert!(analyze_source_as(path, &src).is_empty(), "{path} should be exempt");
    }
}

#[test]
fn allow_hygiene_flags_stale_unknown_and_reasonless_directives() {
    let findings = analyze_source_as("crates/x/src/lib.rs", &fixture("allow_hygiene.rs"));
    // All four findings are unsuppressed: a reasonless directive does not
    // suppress the float-eq finding it sits next to.
    assert!(findings.iter().all(|f| f.suppressed.is_none()));
    let got: Vec<_> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        vec![
            ("allow-hygiene", 2),  // stale: no float-eq finding on the line
            ("allow-hygiene", 6),  // unknown rule id
            ("float-eq", 11),      // a reasonless directive suppresses nothing...
            ("allow-hygiene", 11), // ...and is flagged itself
        ]
    );
    assert!(findings[0].message.contains("suppresses nothing"));
    assert!(findings[1].message.contains("unknown rule"));
    assert!(findings[3].message.contains("no reason"));
    assert_eq!((findings[0].line, findings[0].column), (2, 15));
    assert_eq!((findings[1].line, findings[1].column), (6, 10));
}

#[test]
fn lint_header_requires_attrs_and_workspace_lints() {
    let bad = rules::check_lint_header(
        "crates/fixture/src/lib.rs",
        &fixture("lint_header_bad_lib.rs"),
        "crates/fixture/Cargo.toml",
        &fixture("lint_header_bad_manifest.toml"),
    );
    let got: Vec<_> = bad.iter().map(|f| (f.rule, f.file.as_str())).collect();
    assert_eq!(
        got,
        vec![
            ("lint-header", "crates/fixture/src/lib.rs"),
            ("lint-header", "crates/fixture/src/lib.rs"),
            ("lint-header", "crates/fixture/Cargo.toml"),
        ]
    );
    assert!(bad[0].message.contains("forbid(unsafe_code)"));
    assert!(bad[1].message.contains("warn(missing_docs)"));

    let good_lib = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
    let good_toml = "[package]\nname = \"ok\"\n\n[lints]\nworkspace = true\n";
    assert!(rules::check_lint_header("l.rs", good_lib, "C.toml", good_toml).is_empty());
}

#[test]
fn canon_manifest_detects_field_drift() {
    let file = |src: &str| {
        vec![SourceFile {
            path: "crates/knob/src/lib.rs".to_string(),
            crate_name: "knob".to_string(),
            source: src.to_string(),
        }]
    };
    let pristine = fixture("canon_manifest.rs");
    let inv = manifest::collect(&file(&pristine));
    assert!(inv.defs.contains_key("knob::Knob"));
    assert!(inv.impls.contains_key("knob::Knob"));

    // Pinning the current fingerprints makes the diff clean.
    let pinned = manifest::render_manifest(&inv);
    assert!(manifest::diff(&inv, "m.json", Some(&pinned)).is_empty());

    // Adding a field without re-pinning is a finding at the definition site.
    let grown = pristine.replace("pub scale: f64,", "pub scale: f64,\n    pub bias: f64,");
    let drifted = manifest::collect(&file(&grown));
    let findings = manifest::diff(&drifted, "m.json", Some(&pinned));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "canon-manifest");
    assert_eq!((findings[0].file.as_str(), findings[0].line), ("crates/knob/src/lib.rs", 1));
    assert!(findings[0].message.contains("drifted"));

    // Reformatting without changing fields is NOT drift.
    let reflowed =
        pristine.replace("pub width: u32,\n    pub scale: f64,", "pub width: u32, pub scale: f64,");
    let same = manifest::collect(&file(&reflowed));
    assert!(manifest::diff(&same, "m.json", Some(&pinned)).is_empty());
}

#[test]
fn rng_discipline_flags_unseeded_ctors_and_shard_capture() {
    let findings = analyze_source_as("crates/x/src/lib.rs", &fixture("rng_discipline.rs"));
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(
        got,
        vec![
            ("rng-discipline", 15, 5, false),  // SimRng::new(42), no provenance
            ("rng-discipline", 19, 5, true),   // waived with a reason
            ("rng-discipline", 24, 32, false), // `shared` captured by the shard closure
        ]
    );
    assert!(findings[0].message.contains("seed-derivation"));
    assert!(findings[2].message.contains("captured"));
    // The same constructions in test code are exempt.
    assert!(analyze_source_as("tests/anything.rs", &fixture("rng_discipline.rs"))
        .iter()
        .all(|f| f.rule != "rng-discipline"));
}

#[test]
fn reduction_order_flags_merge_and_reachable_accumulation() {
    let findings = analyze_source_as("crates/x/src/lib.rs", &fixture("reduction_order.rs"));
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(
        got,
        vec![
            ("reduction-order", 14, 15, false), // total += o in the merge region
            ("reduction-order", 16, 50, false), // float .sum() in the merge region
            ("reduction-order", 22, 15, false), // additive .fold in a merge-reachable fn
            ("reduction-order", 34, 11, true),  // waived with a reason
        ]
    );
    // The shard-closure accumulation (line 9) and the min/max fold (line
    // 17) produced no findings; the helper finding names its reach.
    assert!(findings[2].message.contains("helper_total"));
    assert!(findings[2].message.contains("reachable"));
    assert!(findings.iter().all(|f| f.line != 9 && f.line != 17));
}

#[test]
fn reduction_order_reaches_helpers_across_files() {
    let src = |path: &str, source: &str| SourceFile {
        path: path.to_string(),
        crate_name: "x".to_string(),
        source: source.to_string(),
    };
    let merge = "fn merge(items: Vec<f64>) -> f64 {\n    \
                 let outs = parallel_map(items, 2, |x| x);\n    total_of(&outs)\n}\n";
    let helper = "pub fn total_of(xs: &[f64]) -> f64 {\n    \
                  xs.iter().map(|x| x * 2.0).sum()\n}\n";
    let findings = analyze_sources(&[
        src("crates/bench/src/figures.rs", merge),
        src("crates/stats/src/helpers.rs", helper),
    ]);
    let red: Vec<_> = findings.iter().filter(|f| f.rule == "reduction-order").collect();
    assert_eq!(red.len(), 1);
    assert_eq!(
        (red[0].file.as_str(), red[0].line, red[0].column),
        ("crates/stats/src/helpers.rs", 2, 32)
    );
    // The identical helper placed in stats::reduce — the canonical reducer
    // module — is covered by the module-scoped exemption.
    let findings = analyze_sources(&[
        src("crates/bench/src/figures.rs", merge),
        src("crates/stats/src/reduce.rs", helper),
    ]);
    assert!(findings.iter().all(|f| f.rule != "reduction-order"));
}

#[test]
fn shared_state_flags_static_mut_and_interior_mutability() {
    let findings = analyze_source_as("crates/x/src/lib.rs", &fixture("shared_state.rs"));
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(
        got,
        vec![
            ("shared-state", 4, 1, false), // static mut TICKS
            ("shared-state", 6, 1, false), // static CACHE: Mutex<…>
            ("shared-state", 10, 1, true), // waived with a reason
        ]
    );
    assert!(findings[0].message.contains("static mut"));
    assert!(findings[1].message.contains("Mutex"));
    // The plain-const static (line 8) and the #[cfg(test)] static (line 14)
    // are clean.
    assert!(findings.iter().all(|f| f.line != 8 && f.line != 14));
}

#[test]
fn scoped_exemptions_cover_modules_and_flag_redundant_waivers() {
    // In bench::engine the module-scoped exemption silences the rule, so
    // the line waiver is redundant — flagged at the directive's own span.
    let findings =
        analyze_source_as("crates/bench/src/engine.rs", &fixture("scoped_exemptions.rs"));
    let got: Vec<_> = findings.iter().map(span).collect();
    assert_eq!(got, vec![("scoped-exemptions", 5, 35, false)]);
    assert!(findings[0].message.contains("duplicates the module-scoped exemption"));
    assert!(findings[0].message.contains("bench::engine"));
    // The exemption follows the module, not the path: the mod.rs layout of
    // the same module behaves identically.
    let moved =
        analyze_source_as("crates/bench/src/engine/mod.rs", &fixture("scoped_exemptions.rs"));
    assert_eq!(moved.iter().map(span).collect::<Vec<_>>(), got);
    // Outside the exempted module the waiver is legitimate: the finding is
    // suppressed with its reason.
    let elsewhere = analyze_source_as("crates/x/src/lib.rs", &fixture("scoped_exemptions.rs"));
    let got: Vec<_> = elsewhere.iter().map(span).collect();
    assert_eq!(got, vec![("nondet-collections", 5, 13, true)]);
}

#[test]
fn self_scan_includes_simlint_sources() {
    let ws = Workspace::open(env!("CARGO_MANIFEST_DIR")).expect("repo root is a workspace");
    let paths = ws.source_paths().expect("source walk succeeds");
    for expected in
        ["crates/simlint/src/lib.rs", "crates/simlint/src/parse.rs", "crates/simlint/src/flow.rs"]
    {
        assert!(
            paths.iter().any(|p| p == expected),
            "{expected} missing from the scan set — the linter must not exempt itself"
        );
    }
    // The fixture corpus stays out of the scan set (deliberate violations).
    assert!(paths.iter().all(|p| !p.starts_with("tests/simlint_fixtures/")));
}

#[test]
fn finding_order_is_canonical_in_every_output() {
    // Two files, interleaved lines: the canonical (file, line, col, rule)
    // order must hold in the findings list, the JSON document, and SARIF —
    // so CI artifact diffs between runs are meaningful.
    let src = |path: &str, source: &str| SourceFile {
        path: path.to_string(),
        crate_name: "x".to_string(),
        source: source.to_string(),
    };
    let findings = analyze_sources(&[
        src("crates/b/src/lib.rs", "static mut B: u64 = 0;\nfn f() { let t = Instant::now(); }\n"),
        src("crates/a/src/lib.rs", "fn g() { let t = Instant::now(); }\nstatic mut A: u64 = 0;\n"),
    ]);
    let got: Vec<_> = findings.iter().map(|f| (f.file.clone(), f.line, f.column, f.rule)).collect();
    let mut sorted = got.clone();
    sorted.sort();
    assert_eq!(got, sorted, "findings must come out in canonical order");
    assert_eq!(got[0].0, "crates/a/src/lib.rs");

    let report = simlint::report::Report {
        root: ".".to_string(),
        files_scanned: 2,
        rules: RuleFilter::all().rule_ids(),
        findings,
    };
    let json = report.to_json();
    let json_spans: Vec<(String, u64)> = json
        .get("findings")
        .and_then(|v| v.as_array())
        .expect("findings array")
        .iter()
        .map(|f| {
            (
                f.get("file").and_then(|v| v.as_str()).expect("file").to_string(),
                f.get("line").and_then(|v| v.as_u64()).expect("line"),
            )
        })
        .collect();
    let mut json_sorted = json_spans.clone();
    json_sorted.sort();
    assert_eq!(json_spans, json_sorted);

    let sarif = simlint::sarif::to_sarif(&report);
    let results = sarif
        .get("runs")
        .and_then(|v| v.as_array())
        .and_then(|runs| runs[0].get("results"))
        .and_then(|v| v.as_array())
        .expect("sarif results");
    let sarif_files: Vec<&str> = results
        .iter()
        .map(|r| {
            r.get("locations")
                .and_then(|v| v.as_array())
                .and_then(|l| l[0].get("physicalLocation"))
                .and_then(|p| p.get("artifactLocation"))
                .and_then(|a| a.get("uri"))
                .and_then(|v| v.as_str())
                .expect("uri")
        })
        .collect();
    let mut sarif_sorted = sarif_files.clone();
    sarif_sorted.sort();
    assert_eq!(sarif_files, sarif_sorted);
    // Human output preserves the same order.
    let human = report.human();
    let a_pos = human.find("crates/a/src/lib.rs").expect("a.rs in human output");
    let b_pos = human.find("crates/b/src/lib.rs").expect("b.rs in human output");
    assert!(a_pos < b_pos);
}

#[test]
fn workspace_self_run_is_clean() {
    let ws = Workspace::open(env!("CARGO_MANIFEST_DIR")).expect("repo root is a workspace");
    let report = ws.analyze(&RuleFilter::all()).expect("analysis over the live tree succeeds");
    assert!(report.files_scanned > 50, "walker found only {} files", report.files_scanned);
    let bad: Vec<String> = report.unsuppressed().map(|f| f.human()).collect();
    assert!(bad.is_empty(), "live tree has unsuppressed findings:\n{}", bad.join("\n"));
    // Every waiver in the tree carries a non-empty reason.
    for f in report.suppressed() {
        let reason = f.suppressed.as_deref().unwrap_or_default();
        assert!(!reason.trim().is_empty(), "reasonless suppression at {}:{}", f.file, f.line);
    }
}
