//! Property / fuzz coverage for the `simlint` lexer and item parser.
//!
//! The flow rules trust two totality claims: the lexer and the item parser
//! never panic — on any byte soup, and on any mutation of the real
//! workspace sources — and the spans they report are in-bounds and
//! strictly ordered. This suite holds them to it, and cross-checks the
//! parser's item counts against a naive line-scan oracle over the fixture
//! corpus (two completely different implementations agreeing on `fn` and
//! `static` counts).

use std::sync::OnceLock;

use proptest::prelude::*;
use simlint::lexer::{tokenize, TokKind};
use simlint::parse::{ItemKind, ParsedFile};
use simlint::Workspace;

/// Lexer span invariants over any input: 1-based lines within the source,
/// columns within their line, and strictly increasing start positions.
fn check_span_invariants(src: &str) {
    let toks = tokenize(src);
    let lines: Vec<&str> = src.lines().collect();
    let mut prev = (0u32, 0u32);
    for t in &toks {
        assert!(t.line >= 1, "line must be 1-based");
        assert!(
            (t.line as usize) <= lines.len().max(1),
            "token line {} beyond {} source lines",
            t.line,
            lines.len()
        );
        let line_chars = lines.get(t.line as usize - 1).map(|l| l.chars().count()).unwrap_or(0);
        assert!(
            (t.col as usize) <= line_chars + 1,
            "token col {}:{} beyond the {line_chars}-char line",
            t.line,
            t.col
        );
        assert!(
            (t.line, t.col) > prev,
            "token starts must strictly increase: {:?} then {:?}",
            prev,
            (t.line, t.col)
        );
        // Verbatim token kinds must not overlap the next token's start.
        if matches!(t.kind, TokKind::Ident | TokKind::Int | TokKind::Punct) {
            prev = (t.line, t.col + t.text.chars().count().max(1) as u32 - 1);
        } else {
            prev = (t.line, t.col);
        }
    }
}

/// Parser structural invariants over any input: item token ranges in
/// bounds, bodies nested inside their items.
fn check_parse_invariants(src: &str) {
    let p = ParsedFile::parse("crates/fuzz/src/lib.rs", "fuzz", src);
    for item in &p.items {
        assert!(item.tokens.start < item.tokens.end.max(item.tokens.start + 1));
        assert!(item.tokens.end <= p.toks.len(), "item range beyond the token stream");
        if let Some(body) = &item.body {
            assert!(body.start >= item.tokens.start && body.end <= item.tokens.end.max(body.end));
            assert!(body.end <= p.toks.len(), "body range beyond the token stream");
        }
    }
}

/// The real workspace sources, loaded once.
fn workspace_sources() -> &'static Vec<String> {
    static SOURCES: OnceLock<Vec<String>> = OnceLock::new();
    SOURCES.get_or_init(|| {
        let ws = Workspace::open(env!("CARGO_MANIFEST_DIR")).expect("repo root is a workspace");
        ws.source_paths()
            .expect("source walk succeeds")
            .iter()
            .map(|p| {
                std::fs::read_to_string(format!("{}/{p}", env!("CARGO_MANIFEST_DIR")))
                    .expect("scanned sources are readable")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lexer_and_parser_are_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u32..256, 0..256)
    ) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&raw);
        check_span_invariants(&src);
        check_parse_invariants(&src);
    }

    #[test]
    fn parser_is_total_on_mutated_workspace_sources(
        file_pick in 0u64..1_000_000,
        op in 0u32..3,
        cut_a in 0u64..1_000_000,
        cut_b in 0u64..1_000_000,
    ) {
        let sources = workspace_sources();
        let src = &sources[(file_pick as usize) % sources.len()];
        let bytes = src.as_bytes();
        let a = (cut_a as usize) % (bytes.len() + 1);
        let b = (cut_b as usize) % (bytes.len() + 1);
        let (lo, hi) = (a.min(b), a.max(b));
        let mutated: Vec<u8> = match op {
            // Truncate mid-file (can split tokens, strings, comments).
            0 => bytes[..lo].to_vec(),
            // Delete a byte range.
            1 => [&bytes[..lo], &bytes[hi..]].concat(),
            // Duplicate a byte range in place.
            _ => [&bytes[..hi], &bytes[lo..hi], &bytes[hi..]].concat(),
        };
        let src = String::from_utf8_lossy(&mutated);
        check_span_invariants(&src);
        check_parse_invariants(&src);
    }
}

/// Naive line-scan count of `fn` item introductions: comments stripped at
/// `//`, the keyword at a word boundary, followed by an identifier start.
/// Deliberately a different algorithm from the parser.
fn naive_count(src: &str, keyword: &str) -> usize {
    src.lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .map(|code| {
            code.match_indices(&format!("{keyword} "))
                .filter(|(i, _)| {
                    let boundary = code[..*i]
                        .chars()
                        .next_back()
                        .is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != '\'');
                    let starts_ident = code[*i + keyword.len() + 1..]
                        .chars()
                        .find(|c| !c.is_whitespace())
                        .is_some_and(|c| c.is_alphabetic() || c == '_');
                    boundary && starts_ident
                })
                .count()
        })
        .sum()
}

#[test]
fn parser_item_counts_agree_with_line_scan_oracle_on_corpus() {
    let dir = format!("{}/tests/simlint_fixtures", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixture corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("fixture file is readable");
        let p = ParsedFile::parse("crates/fixture/src/lib.rs", "fixture", &src);
        let parsed_fns = p.items_of(ItemKind::Fn).count();
        let parsed_statics = p.items_of(ItemKind::Static).count();
        assert_eq!(
            parsed_fns,
            naive_count(&src, "fn"),
            "fn count disagrees with the line-scan oracle in {}",
            path.display()
        );
        assert_eq!(
            parsed_statics,
            naive_count(&src, "static"),
            "static count disagrees with the line-scan oracle in {}",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 10, "expected the whole corpus, checked only {checked} files");
}
