//! Integration tests for the shared experiment engine and its persistent
//! result store: save → load round-trips, cache invalidation, and the
//! determinism guarantee that the single-process `figures` driver renders
//! exactly what the standalone figure binaries render.
//!
//! Everything runs at `--quick` scale on a small sub-matrix so `cargo test`
//! stays fast; the code paths are identical to the full-size runs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use stretch_bench::figures;
use stretch_bench::store::JsonCodec;
use stretch_bench::{Engine, ExperimentConfig, PairOutcome, ResultStore};
use stretch_repro::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let unique = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("stretch-it-{tag}-{}-{unique}", std::process::id()))
}

fn quick_engine() -> Engine {
    Engine::new(ExperimentConfig::quick()).with_sub_matrix(1, 2)
}

#[test]
fn result_store_round_trips_identical_pair_outcomes() {
    let dir = temp_dir("roundtrip");
    let store = ResultStore::open(&dir).expect("store opens");
    let outcome = PairOutcome {
        ls: "web-search".to_string(),
        batch: "zeusmp".to_string(),
        ls_uipc: 0.123_456_789_012_345_68,
        batch_uipc: 1.987_654_321_098_765_4,
    };
    store.save("deadbeef", "round-trip test", &outcome.to_json()).expect("save");
    let loaded =
        PairOutcome::from_json(&store.load("deadbeef").expect("entry present")).expect("decodes");
    assert_eq!(loaded, outcome);
    assert_eq!(loaded.ls_uipc.to_bits(), outcome.ls_uipc.to_bits());
    assert_eq!(loaded.batch_uipc.to_bits(), outcome.batch_uipc.to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_results_survive_restart_and_invalidate_on_key_changes() {
    let dir = temp_dir("invalidate");

    let cold = Engine::new(ExperimentConfig::quick()).with_store(&dir).expect("store opens");
    let first = cold.pair(&EqualPartition, "web-search", "zeusmp");
    assert_eq!(cold.sim_runs(), 1);

    // Same key, new process (modelled by a new engine): served from disk.
    let warm = Engine::new(ExperimentConfig::quick()).with_store(&dir).expect("store opens");
    let second = warm.pair(&EqualPartition, "web-search", "zeusmp");
    assert_eq!(warm.sim_runs(), 0, "identical request must be a pure cache hit");
    assert_eq!(first, second);
    assert_eq!(first.ls_uipc.to_bits(), second.ls_uipc.to_bits());

    // Any key component change — seed, length, core config — must miss.
    let reseeded = Engine::new(ExperimentConfig { seed: 1234, ..ExperimentConfig::quick() })
        .with_store(&dir)
        .expect("store opens");
    let _ = reseeded.pair(&EqualPartition, "web-search", "zeusmp");
    assert_eq!(reseeded.sim_runs(), 1, "seed change must recompute");

    let mut longer = ExperimentConfig::quick();
    longer.length.measured_instructions *= 2;
    let relength = Engine::new(longer).with_store(&dir).expect("store opens");
    let _ = relength.pair(&EqualPartition, "web-search", "zeusmp");
    assert_eq!(relength.sim_runs(), 1, "length change must recompute");

    let mut reconfigured = ExperimentConfig::quick();
    reconfigured.core.lsq_capacity = 48;
    let recore = Engine::new(reconfigured).with_store(&dir).expect("store opens");
    let _ = recore.pair(&EqualPartition, "web-search", "zeusmp");
    assert_eq!(recore.sim_runs(), 1, "core config change must recompute");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_digests_distinguish_policies_not_just_setups() {
    // Regression for the policy-keyed cache scheme: the persistent store
    // must keep separate entries for different policies even when they
    // derive the *same* core setup (EqualPartition vs Stretch pinned to its
    // Baseline mode), and a policy-parameter change must invalidate.
    let dir = temp_dir("policy-keys");

    let cold = Engine::new(ExperimentConfig::quick()).with_store(&dir).expect("store opens");
    let _ = cold.pair(&EqualPartition, "web-search", "zeusmp");
    let _ = cold.pair(&PinnedStretch::new(StretchMode::Baseline), "web-search", "zeusmp");
    assert_eq!(cold.sim_runs(), 2, "identical setups must still be distinct store entries");

    // A fresh engine finds BOTH entries warm — they were stored under
    // distinct digests, not overwriting each other.
    let warm = Engine::new(ExperimentConfig::quick()).with_store(&dir).expect("store opens");
    let _ = warm.pair(&EqualPartition, "web-search", "zeusmp");
    let _ = warm.pair(&PinnedStretch::new(StretchMode::Baseline), "web-search", "zeusmp");
    assert_eq!(warm.sim_runs(), 0, "both policy cells must be served from disk");

    // Changing a policy parameter (the fetch ratio) is a different identity.
    let _ = warm.pair(&FetchThrottling::new(ThreadId::T0, 4), "web-search", "zeusmp");
    assert_eq!(warm.sim_runs(), 1);
    let _ = warm.pair(&FetchThrottling::new(ThreadId::T0, 8), "web-search", "zeusmp");
    assert_eq!(warm.sim_runs(), 2, "a policy-parameter change must recompute");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_process_driver_output_matches_standalone_binaries() {
    // The `figures` driver renders every figure from ONE engine, so cells are
    // shared across figures; each standalone binary renders from a FRESH
    // engine. Outputs must be identical — memoisation must never change
    // numbers. (Figure 3 covers matrix cells plus the stand-alone reference,
    // Figure 7 stand-alone MLP runs; quick 1 × 2 sub-matrix scale keeps the
    // test fast on the single-core CI runner.)
    let shared = quick_engine();
    let shared_fig03 = figures::figure03(&shared);
    let shared_fig07 = figures::figure07(&shared);
    let _ = figures::figure03(&shared); // re-render: everything memoised
    assert!(shared.stats().memo_hits > 0, "rendering figures from one engine must share cells");

    for (name, shared_output) in [("figure03", &shared_fig03), ("figure07", &shared_fig07)] {
        let fresh = quick_engine();
        let spec = figures::by_name(name).expect("registered figure");
        let standalone_output = (spec.render)(&fresh);
        assert_eq!(
            &standalone_output, shared_output,
            "{name}: standalone rendering must match the single-process driver"
        );
    }
}

#[test]
fn warm_cache_rerun_performs_zero_simulation_runs() {
    let dir = temp_dir("warm-rerun");
    let tiny = || Engine::new(ExperimentConfig::quick()).with_sub_matrix(1, 1);

    let cold = tiny().with_store(&dir).expect("store opens");
    let cold_fig03 = figures::figure03(&cold);
    assert!(cold.sim_runs() > 0, "cold run must simulate");

    let warm = tiny().with_store(&dir).expect("store opens");
    let warm_fig03 = figures::figure03(&warm);
    assert_eq!(warm.sim_runs(), 0, "warm rerun must be served entirely from the cache");
    assert!((warm.stats().hit_rate() - 1.0).abs() < 1e-12, "hit rate must be 100%");
    assert_eq!(cold_fig03, warm_fig03, "cached results must render byte-identical tables");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn standalone_reference_is_computed_once_per_process() {
    let engine = quick_engine();
    let reference_runs = (engine.ls_names().len() + engine.batch_names().len()) as u64;

    // Figure 3 and Figure 7 both need stand-alone runs; Figure 7's workloads
    // are outside the 2 × 2 sub-matrix, so they add exactly two cells.
    let _ = engine.standalone_reference();
    assert_eq!(engine.sim_runs(), reference_runs);
    let _ = engine.standalone_reference();
    assert_eq!(engine.sim_runs(), reference_runs, "second reference request re-simulates nothing");
}
