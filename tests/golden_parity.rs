//! Golden-parity tests: every baseline and Stretch mode run through the new
//! `Scenario` / `ColocationPolicy` API reproduces the exact numbers the old
//! `run_pair` / `run_standalone` / `run_standalone_with_rob` free functions
//! produced at `SimLength::quick()`.
//!
//! The fixtures below were pinned by running the pre-refactor API (seed 42,
//! web-search × zeusmp, quick length) immediately before it was deleted; the
//! simulator is deterministic and uses no platform-dependent arithmetic, so
//! the comparison is bit-exact. If a simulator change legitimately moves
//! these numbers, re-pin the fixtures in the same commit and say so — a
//! silent update would defeat the test.

use stretch_repro::prelude::*;
use stretch_repro::workloads::profile_by_name;

const LS: &str = "web-search";
const BATCH: &str = "zeusmp";
const SEED: u64 = 42;

/// `(ls_uipc, batch_uipc)` produced by the old `run_pair` for each policy.
const BASELINE: (f64, f64) = (0.025265571120009093, 0.11707888189667788);
const DYNAMIC: (f64, f64) = (0.024612781665769436, 0.121300339640951);
const FETCH_THROTTLING_1_4: (f64, f64) = (0.024482489557993297, 0.12130769697337296);
const IDEAL_SCHEDULING: (f64, f64) = (0.025433103404431164, 0.11835194910866188);
const IDEAL_PLUS_STRETCH: (f64, f64) = (0.025417050618029298, 0.12150668286755771);
const B_MODE_56_136: (f64, f64) = (0.025254246917788763, 0.12092081198325247);
const Q_MODE_136_56: (f64, f64) = (0.02527906175850771, 0.10905422721448241);

/// UIPC produced by the old `run_standalone` / `run_standalone_with_rob`.
const STANDALONE_WS: f64 = 0.026711006938184054;
const STANDALONE_WS_ROB64: f64 = 0.026558925957034296;
const STANDALONE_ZEUSMP: f64 = 0.10917203362078376;

fn pair(policy: impl ColocationPolicy + 'static) -> (f64, f64) {
    let r = Scenario::colocate(
        profile_by_name(LS).expect("known ls"),
        profile_by_name(BATCH).expect("known batch"),
    )
    .policy(policy)
    .length(SimLength::quick())
    .seed(SEED)
    .run();
    (r.expect_thread(ThreadId::T0).uipc, r.expect_thread(ThreadId::T1).uipc)
}

fn assert_pair(label: &str, got: (f64, f64), want: (f64, f64)) {
    assert_eq!(
        got.0.to_bits(),
        want.0.to_bits(),
        "{label}: LS uipc drifted from the pinned fixture (got {}, want {})",
        got.0,
        want.0
    );
    assert_eq!(
        got.1.to_bits(),
        want.1.to_bits(),
        "{label}: batch uipc drifted from the pinned fixture (got {}, want {})",
        got.1,
        want.1
    );
}

#[test]
fn baseline_policy_matches_the_old_run_pair() {
    assert_pair("equal partitioning", pair(EqualPartition), BASELINE);
}

#[test]
fn dynamic_sharing_matches_the_old_run_pair() {
    assert_pair("dynamic sharing", pair(DynamicSharing), DYNAMIC);
}

#[test]
fn fetch_throttling_matches_the_old_run_pair() {
    assert_pair(
        "fetch throttling 1:4",
        pair(FetchThrottling::new(ThreadId::T0, 4)),
        FETCH_THROTTLING_1_4,
    );
}

#[test]
fn ideal_scheduling_matches_the_old_run_pair() {
    assert_pair("ideal scheduling", pair(IdealScheduling::new()), IDEAL_SCHEDULING);
    assert_pair(
        "ideal scheduling + Stretch 56-136",
        pair(IdealScheduling::with_stretch(ThreadId::T0, 56, 136)),
        IDEAL_PLUS_STRETCH,
    );
}

#[test]
fn stretch_modes_match_the_old_run_pair() {
    assert_pair(
        "B-mode 56-136",
        pair(PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode()))),
        B_MODE_56_136,
    );
    assert_pair(
        "Q-mode 136-56",
        pair(PinnedStretch::new(StretchMode::QosBoost(RobSkew::recommended_q_mode()))),
        Q_MODE_136_56,
    );
}

#[test]
fn standalone_scenarios_match_the_old_run_standalone() {
    let standalone = |name: &str| {
        Scenario::standalone(profile_by_name(name).expect("known workload"))
            .length(SimLength::quick())
            .seed(SEED)
            .run_thread0()
            .uipc
    };
    assert_eq!(standalone(LS).to_bits(), STANDALONE_WS.to_bits());
    assert_eq!(standalone(BATCH).to_bits(), STANDALONE_ZEUSMP.to_bits());

    let capped = Scenario::standalone(profile_by_name(LS).expect("known workload"))
        .policy(PrivateCore::with_rob(64))
        .length(SimLength::quick())
        .seed(SEED)
        .run_thread0();
    assert_eq!(capped.uipc.to_bits(), STANDALONE_WS_ROB64.to_bits());
}

/// Pinned quick-length fleet fixtures: the measured §VI-D case studies
/// (`CaseStudy::run_fleet`, least-loaded dispatch, `FleetScale::quick(42)`)
/// as first produced by the fleet simulator. The fleet uses the same
/// platform-independent arithmetic as the core model, so the comparison is
/// bit-exact; re-pin consciously (and say so in the commit) if the fleet
/// simulation legitimately changes.
// Re-pinned (consciously) when the fleet gained sharding: the bursty
// arrival-rate correction now uses the truncated-geometric burst mean
// (every bursty gap moves a fraction of a percent), zero-request
// server-intervals no longer report a 0.0 ms tail, and per-interval batch
// throughput accumulates through `det_sum`'s balanced tree instead of a
// left fold. The CPU-layer fixtures above are arrival-independent and did
// not move.
const FLEET_WS_GAIN: f64 = 0.044973958333333286;
const FLEET_WS_P99_MS: f64 = 87.38405916230323;
const FLEET_WS_HOURS: f64 = 9.8125;
const FLEET_YT_GAIN: f64 = 0.09404947916666706;
const FLEET_YT_P99_MS: f64 = 1402.2615420181398;
const FLEET_YT_HOURS: f64 = 14.5625;

#[test]
fn fleet_case_studies_match_the_pinned_quick_fixtures() {
    use stretch_repro::cluster::{CaseStudy, FleetScale, LoadBalancer};
    let fixture = |study: CaseStudy, gain: f64, p99: f64, hours: f64| {
        let report = study.run_fleet(LoadBalancer::LeastLoaded, FleetScale::quick(42));
        assert_eq!(
            report.gain().to_bits(),
            gain.to_bits(),
            "fleet gain drifted from the pinned fixture (got {}, want {gain})",
            report.gain()
        );
        assert_eq!(
            report.p99_ms.to_bits(),
            p99.to_bits(),
            "fleet p99 drifted from the pinned fixture (got {}, want {p99})",
            report.p99_ms
        );
        assert_eq!(report.hours_engaged.to_bits(), hours.to_bits());
    };
    fixture(CaseStudy::web_search(), FLEET_WS_GAIN, FLEET_WS_P99_MS, FLEET_WS_HOURS);
    fixture(CaseStudy::youtube(), FLEET_YT_GAIN, FLEET_YT_P99_MS, FLEET_YT_HOURS);
}

#[test]
fn elfen_keeps_its_analytical_performance_mapping() {
    // Elfen never ran through the cycle-level `run_*` functions; its
    // contract is the duty-cycle → delivered-performance mapping the §II
    // slack measurement uses. The policy must preserve it and run on a
    // contention-free core.
    let elfen = Elfen::new(stretch_repro::baselines::DutyCycle::new(0.3));
    assert!((elfen.delivered_performance() - 0.3).abs() < 1e-12);
    let cfg = CoreConfig::default();
    assert_eq!(elfen.setup(&cfg), PrivateCore::full().setup(&cfg));
}
