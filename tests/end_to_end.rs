//! Cross-crate integration tests: the full Stretch stack working together —
//! workloads on the SMT core through the `Scenario`/`ColocationPolicy` API,
//! mode changes through the control register, the closed-loop policy
//! reacting to the queueing model, and the cluster accounting on top.

use stretch_repro::cpu::SmtCoreBuilder;
use stretch_repro::model::{CoreConfig, ThreadId};
use stretch_repro::prelude::*;
use stretch_repro::qos::{ServiceSpec, SimParams};
use stretch_repro::stretch::orchestrator::PerformanceTable;
use stretch_repro::stretch::{ControlRegister, MonitorConfig, Orchestrator};
use stretch_repro::workloads::{batch, latency_sensitive, profile_by_name};

fn quick() -> SimLength {
    SimLength::quick()
}

/// A window long enough for steady-state window-capacity effects to show up,
/// still small enough for a debug-build test.
fn medium() -> SimLength {
    SimLength { warmup_instructions: 5_000, measured_instructions: 25_000, max_cycles: 3_000_000 }
}

fn ws_zeusmp(
    seed: u64,
    length: SimLength,
    policy: impl ColocationPolicy + 'static,
) -> ColocationResult {
    Scenario::colocate(
        profile_by_name("web-search").expect("web-search exists"),
        profile_by_name("zeusmp").expect("zeusmp exists"),
    )
    .policy(policy)
    .length(length)
    .seed(seed)
    .run()
}

#[test]
fn b_mode_boosts_a_rob_hungry_batch_corunner() {
    // The headline mechanism end to end: colocate Web Search with zeusmp,
    // switch from the baseline policy to B-mode 56-136 and observe a batch
    // speedup at a modest latency-sensitive cost. Only the policy changes
    // between the two scenarios.
    let baseline = ws_zeusmp(101, medium(), EqualPartition);
    let stretched = ws_zeusmp(
        101,
        medium(),
        PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode())),
    );
    let batch_speedup = stretched.expect_thread(ThreadId::T1).uipc
        / baseline.expect_thread(ThreadId::T1).uipc
        - 1.0;
    let ls_slowdown = 1.0
        - stretched.expect_thread(ThreadId::T0).uipc / baseline.expect_thread(ThreadId::T0).uipc;
    assert!(
        batch_speedup > 0.03,
        "B-mode should visibly speed up zeusmp (got {:.1}%)",
        batch_speedup * 100.0
    );
    assert!(
        ls_slowdown < 0.25,
        "B-mode must not devastate the latency-sensitive thread (got {:.1}%)",
        ls_slowdown * 100.0
    );
    assert!(
        batch_speedup > ls_slowdown,
        "the trade should favour the batch thread (batch {:+.1}%, LS {:+.1}%)",
        batch_speedup * 100.0,
        -ls_slowdown * 100.0
    );
}

#[test]
fn q_mode_shifts_performance_back_to_the_latency_sensitive_thread() {
    let pair = |mode| {
        Scenario::colocate(
            profile_by_name("data-serving").expect("data-serving exists"),
            profile_by_name("zeusmp").expect("zeusmp exists"),
        )
        .policy(PinnedStretch::new(mode))
        .length(quick())
        .seed(55)
        .run()
    };
    let b = pair(StretchMode::BatchBoost(RobSkew::recommended_b_mode()));
    let q = pair(StretchMode::QosBoost(RobSkew::recommended_q_mode()));
    assert!(
        q.expect_thread(ThreadId::T0).uipc >= b.expect_thread(ThreadId::T0).uipc,
        "Q-mode should not be worse than B-mode for the latency-sensitive thread"
    );
    assert!(
        q.expect_thread(ThreadId::T1).uipc < b.expect_thread(ThreadId::T1).uipc,
        "Q-mode should cost the batch thread relative to B-mode"
    );
}

#[test]
fn control_register_drives_mode_changes_on_a_live_core() {
    let cfg = CoreConfig::default();
    let stretch = StretchConfig::recommended();
    let mut core = SmtCoreBuilder::new(cfg)
        .thread(ThreadId::T0, latency_sensitive::web_search(7))
        .thread(ThreadId::T1, batch::zeusmp(7))
        .build();
    let mut reg = ControlRegister::new();

    // Warm up in baseline mode.
    for _ in 0..2_000 {
        core.step();
    }
    let committed_before = core.committed(ThreadId::T1);

    // Engage B-mode, run, then switch to Q-mode, run again.
    reg.engage_b_mode();
    let mode = reg.apply(&mut core, &stretch, ThreadId::T0);
    assert!(mode.is_batch_boost());
    for _ in 0..5_000 {
        core.step();
    }
    reg.engage_q_mode();
    let mode = reg.apply(&mut core, &stretch, ThreadId::T0);
    assert!(mode.is_qos_boost());
    for _ in 0..5_000 {
        core.step();
    }
    assert_eq!(core.thread_stats(ThreadId::T0).mode_change_flushes, 2);
    assert!(
        core.committed(ThreadId::T1) > committed_before,
        "the batch thread keeps making progress across mode changes"
    );
    assert_eq!(core.partition().rob_limit(core.config(), ThreadId::T0), 136);
}

#[test]
fn monitor_keeps_qos_while_harvesting_throughput_over_a_day() {
    // Diurnal closed loop: the policy should engage B-mode during the night
    // hours, back off during the peak, and never violate QoS during the
    // low-load part of the day.
    // Provision only a B-mode: at high load the policy falls back to the
    // baseline, so any engaged interval is a pure throughput gain.
    let mut orch = Orchestrator::new(
        ServiceSpec::web_search(),
        StretchConfig::b_mode_only(RobSkew::recommended_b_mode()),
        MonitorConfig { engage_after: 2, ..MonitorConfig::default() },
        PerformanceTable::paper_defaults(),
        SimParams::quick(19),
    );
    let loads: Vec<f64> = stretch_repro::cluster::DiurnalPattern::WebSearch
        .sample(1.0)
        .into_iter()
        .map(|s| s.load)
        .collect();
    let report = orch.run_trace(&loads);
    assert_eq!(report.intervals.len(), 24);
    assert!(
        report.b_mode_intervals >= 6,
        "expected B-mode at night, got {}",
        report.b_mode_intervals
    );
    assert!(report.average_batch_throughput > 1.0);
    for iv in &report.intervals {
        if iv.load < 0.4 && !iv.mode.is_batch_boost() {
            // Low-load intervals in baseline mode must certainly meet QoS.
            assert!(!iv.qos_violated, "baseline at low load must meet QoS: {iv:?}");
        }
    }
}

#[test]
fn standalone_beats_any_colocation_for_the_same_workload() {
    // Pre-spawned traces pin both runs to the *same* zeusmp instruction
    // stream, so the comparison isolates the colocation effect.
    let alone = Scenario::standalone_trace(batch::zeusmp(77)).length(quick()).run_thread0().uipc;
    let colocated =
        Scenario::colocate_traces(latency_sensitive::data_serving(77), batch::zeusmp(77))
            .policy(EqualPartition)
            .length(quick())
            .run()
            .expect_thread(ThreadId::T1)
            .uipc;
    assert!(
        alone >= colocated,
        "a full private core must be at least as fast as a colocated half \
         (alone={alone:.3}, colocated={colocated:.3})"
    );
}

#[test]
fn every_policy_runs_through_the_same_scenario_entry_point() {
    // The tentpole guarantee: Stretch, the baselines and the hybrid
    // demonstration policy are interchangeable values behind one trait; the
    // same scenario accepts each of them and produces a two-thread result.
    let policies: Vec<Box<dyn ColocationPolicy>> = vec![
        Box::new(EqualPartition),
        Box::new(DynamicSharing),
        Box::new(FetchThrottling::new(ThreadId::T0, 4)),
        Box::new(IdealScheduling::new()),
        Box::new(PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode()))),
        Box::new(HybridThrottleSkew::recommended()),
    ];
    for policy in policies {
        let label = policy.name();
        let r = Scenario::colocate(
            profile_by_name("web-search").expect("web-search exists"),
            profile_by_name("zeusmp").expect("zeusmp exists"),
        )
        .boxed_policy(policy)
        .length(quick())
        .seed(13)
        .run();
        assert!(
            r.uipc(ThreadId::T0).expect("LS thread active") > 0.0
                && r.uipc(ThreadId::T1).expect("batch thread active") > 0.0,
            "policy '{label}' must produce progress on both threads"
        );
    }

    // Elfen time-shares the core at the scheduler level, so its cycle-level
    // scenario is the stand-alone on-core fraction; delivered performance is
    // the duty-cycle scaling applied above the core model.
    let elfen = Elfen::new(stretch_repro::baselines::DutyCycle::new(0.5));
    let owned = Scenario::standalone(profile_by_name("web-search").expect("web-search exists"))
        .boxed_policy(elfen.clone_policy())
        .length(quick())
        .seed(13)
        .run_thread0();
    let delivered = owned.uipc * elfen.delivered_performance();
    assert!(delivered > 0.0 && delivered < owned.uipc);
}

#[test]
fn cluster_case_studies_match_the_paper_band() {
    let ws = stretch_repro::cluster::CaseStudy::web_search().run();
    let yt = stretch_repro::cluster::CaseStudy::youtube().run();
    assert!(ws.gain() > 0.03 && ws.gain() < 0.08, "Web Search gain {:.3}", ws.gain());
    assert!(yt.gain() > 0.08 && yt.gain() < 0.14, "YouTube gain {:.3}", yt.gain());
    assert!(yt.hours_engaged > ws.hours_engaged);
}
