//! Cross-crate integration tests: the full Stretch stack working together —
//! workloads on the SMT core, mode changes through the control register,
//! the software monitor reacting to the queueing model, and the cluster
//! accounting on top.

use stretch_repro::cpu::{run_pair, run_standalone, CoreSetup, SimLength, SmtCoreBuilder};
use stretch_repro::model::{CoreConfig, ThreadId};
use stretch_repro::qos::{ServiceSpec, SimParams};
use stretch_repro::stretch::orchestrator::PerformanceTable;
use stretch_repro::stretch::{
    ControlRegister, MonitorConfig, Orchestrator, RobSkew, StretchConfig, StretchMode,
};
use stretch_repro::workloads::{batch, latency_sensitive};

fn quick() -> SimLength {
    SimLength::quick()
}

/// A window long enough for steady-state window-capacity effects to show up,
/// still small enough for a debug-build test.
fn medium() -> SimLength {
    SimLength { warmup_instructions: 5_000, measured_instructions: 25_000, max_cycles: 3_000_000 }
}

#[test]
fn b_mode_boosts_a_rob_hungry_batch_corunner() {
    // The headline mechanism end to end: colocate Web Search with zeusmp,
    // switch from the baseline partitioning to B-mode 56-136 and observe a
    // batch speedup at a modest latency-sensitive cost.
    let cfg = CoreConfig::default();
    let baseline = run_pair(
        &cfg,
        CoreSetup::baseline(&cfg),
        latency_sensitive::web_search(101),
        batch::zeusmp(101),
        medium(),
    );
    let mut setup = CoreSetup::baseline(&cfg);
    setup.partition =
        StretchMode::BatchBoost(RobSkew::recommended_b_mode()).partition_policy(&cfg, ThreadId::T0);
    let stretched =
        run_pair(&cfg, setup, latency_sensitive::web_search(101), batch::zeusmp(101), medium());
    let batch_speedup = stretched.uipc(ThreadId::T1) / baseline.uipc(ThreadId::T1) - 1.0;
    let ls_slowdown = 1.0 - stretched.uipc(ThreadId::T0) / baseline.uipc(ThreadId::T0);
    assert!(
        batch_speedup > 0.03,
        "B-mode should visibly speed up zeusmp (got {:.1}%)",
        batch_speedup * 100.0
    );
    assert!(
        ls_slowdown < 0.25,
        "B-mode must not devastate the latency-sensitive thread (got {:.1}%)",
        ls_slowdown * 100.0
    );
    assert!(
        batch_speedup > ls_slowdown,
        "the trade should favour the batch thread (batch {:+.1}%, LS {:+.1}%)",
        batch_speedup * 100.0,
        -ls_slowdown * 100.0
    );
}

#[test]
fn q_mode_shifts_performance_back_to_the_latency_sensitive_thread() {
    let cfg = CoreConfig::default();
    let b_mode_policy =
        StretchMode::BatchBoost(RobSkew::recommended_b_mode()).partition_policy(&cfg, ThreadId::T0);
    let q_mode_policy =
        StretchMode::QosBoost(RobSkew::recommended_q_mode()).partition_policy(&cfg, ThreadId::T0);

    let mut b_setup = CoreSetup::baseline(&cfg);
    b_setup.partition = b_mode_policy;
    let mut q_setup = CoreSetup::baseline(&cfg);
    q_setup.partition = q_mode_policy;

    let b =
        run_pair(&cfg, b_setup, latency_sensitive::data_serving(55), batch::zeusmp(55), quick());
    let q =
        run_pair(&cfg, q_setup, latency_sensitive::data_serving(55), batch::zeusmp(55), quick());
    assert!(
        q.uipc(ThreadId::T0) >= b.uipc(ThreadId::T0),
        "Q-mode should not be worse than B-mode for the latency-sensitive thread"
    );
    assert!(
        q.uipc(ThreadId::T1) < b.uipc(ThreadId::T1),
        "Q-mode should cost the batch thread relative to B-mode"
    );
}

#[test]
fn control_register_drives_mode_changes_on_a_live_core() {
    let cfg = CoreConfig::default();
    let stretch = StretchConfig::recommended();
    let mut core = SmtCoreBuilder::new(cfg)
        .thread(ThreadId::T0, latency_sensitive::web_search(7))
        .thread(ThreadId::T1, batch::zeusmp(7))
        .build();
    let mut reg = ControlRegister::new();

    // Warm up in baseline mode.
    for _ in 0..2_000 {
        core.step();
    }
    let committed_before = core.committed(ThreadId::T1);

    // Engage B-mode, run, then switch to Q-mode, run again.
    reg.engage_b_mode();
    let mode = reg.apply(&mut core, &stretch, ThreadId::T0);
    assert!(mode.is_batch_boost());
    for _ in 0..5_000 {
        core.step();
    }
    reg.engage_q_mode();
    let mode = reg.apply(&mut core, &stretch, ThreadId::T0);
    assert!(mode.is_qos_boost());
    for _ in 0..5_000 {
        core.step();
    }
    assert_eq!(core.thread_stats(ThreadId::T0).mode_change_flushes, 2);
    assert!(
        core.committed(ThreadId::T1) > committed_before,
        "the batch thread keeps making progress across mode changes"
    );
    assert_eq!(core.partition().rob_limit(core.config(), ThreadId::T0), 136);
}

#[test]
fn monitor_keeps_qos_while_harvesting_throughput_over_a_day() {
    // Diurnal closed loop: the monitor should engage B-mode during the night
    // hours, back off during the peak, and never violate QoS during the
    // low-load part of the day.
    // Provision only a B-mode: at high load the monitor falls back to the
    // baseline, so any engaged interval is a pure throughput gain.
    let mut orch = Orchestrator::new(
        ServiceSpec::web_search(),
        StretchConfig::b_mode_only(RobSkew::recommended_b_mode()),
        MonitorConfig { engage_after: 2, ..MonitorConfig::default() },
        PerformanceTable::paper_defaults(),
        SimParams::quick(19),
    );
    let loads: Vec<f64> = stretch_repro::cluster::DiurnalPattern::WebSearch
        .sample(1.0)
        .into_iter()
        .map(|s| s.load)
        .collect();
    let report = orch.run_trace(&loads);
    assert_eq!(report.intervals.len(), 24);
    assert!(
        report.b_mode_intervals >= 6,
        "expected B-mode at night, got {}",
        report.b_mode_intervals
    );
    assert!(report.average_batch_throughput > 1.0);
    for iv in &report.intervals {
        if iv.load < 0.4 && !iv.mode.is_batch_boost() {
            // Low-load intervals in baseline mode must certainly meet QoS.
            assert!(!iv.qos_violated, "baseline at low load must meet QoS: {iv:?}");
        }
    }
}

#[test]
fn standalone_beats_any_colocation_for_the_same_workload() {
    let cfg = CoreConfig::default();
    let alone = run_standalone(&cfg, batch::zeusmp(77), quick()).uipc;
    let colocated = run_pair(
        &cfg,
        CoreSetup::baseline(&cfg),
        latency_sensitive::data_serving(77),
        batch::zeusmp(77),
        quick(),
    )
    .uipc(ThreadId::T1);
    assert!(
        alone >= colocated,
        "a full private core must be at least as fast as a colocated half \
         (alone={alone:.3}, colocated={colocated:.3})"
    );
}

#[test]
fn cluster_case_studies_match_the_paper_band() {
    let ws = stretch_repro::cluster::CaseStudy::web_search().run();
    let yt = stretch_repro::cluster::CaseStudy::youtube().run();
    assert!(ws.gain() > 0.03 && ws.gain() < 0.08, "Web Search gain {:.3}", ws.gain());
    assert!(yt.gain() > 0.08 && yt.gain() < 0.14, "YouTube gain {:.3}", yt.gain());
    assert!(yt.hours_engaged > ws.hours_engaged);
}
