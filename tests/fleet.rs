//! Integration tests for the measured fleet simulation: determinism,
//! per-server stream independence, warm-cache fleet cells through the
//! engine, and agreement between the measured and analytical §VI-D cluster
//! case studies.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use stretch_bench::{Engine, ExperimentConfig};
use stretch_repro::cluster::{server_seed, CaseStudy, Fleet, FleetScale, LoadBalancer};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let unique = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("stretch-fleet-{tag}-{}-{unique}", std::process::id()))
}

#[test]
fn same_seed_fleet_runs_are_bit_identical() {
    let cfg = CaseStudy::web_search().fleet_config(LoadBalancer::LeastLoaded, FleetScale::quick(3));
    let a = Fleet::new(cfg.clone()).run();
    let b = Fleet::new(cfg).run();
    assert_eq!(a, b, "identical config and seed must reproduce the identical report");
    // Bit-exact on the floats, not just approximately equal: the simulator
    // uses no platform-dependent arithmetic, so cross-process runs pin too
    // (tests/golden_parity.rs holds the cross-process fixture).
    assert_eq!(a.p99_ms.to_bits(), b.p99_ms.to_bits());
    assert_eq!(a.average_batch_throughput.to_bits(), b.average_batch_throughput.to_bits());
    for (x, y) in a.servers.iter().zip(&b.servers) {
        assert_eq!(x.p99_ms.to_bits(), y.p99_ms.to_bits());
    }
}

#[test]
fn per_server_streams_are_independent() {
    // Seed derivation: pairwise distinct, stable, and a function of (fleet
    // seed, server index) only — growing the fleet never re-seeds the
    // existing servers, which is what "no shared-RNG coupling" means here.
    let mut seen = std::collections::HashSet::new();
    for s in 0..256 {
        assert!(seen.insert(server_seed(99, s)), "server {s} shares another server's stream");
    }
    for s in 0..8 {
        assert_eq!(server_seed(99, s), server_seed(99, s));
    }

    // Behavioural check: under round-robin every server sees statistically
    // identical traffic, so only the private service-time streams separate
    // them — their measured tails must not collapse onto one value.
    let cfg = CaseStudy::web_search().fleet_config(LoadBalancer::RoundRobin, FleetScale::quick(5));
    let report = Fleet::new(cfg).run();
    let p99s: Vec<u64> = report.servers.iter().map(|s| s.p99_ms.to_bits()).collect();
    let distinct: std::collections::HashSet<&u64> = p99s.iter().collect();
    assert!(
        distinct.len() == p99s.len(),
        "every server must draw its own service times (p99s: {:?})",
        report.servers.iter().map(|s| s.p99_ms).collect::<Vec<_>>()
    );
}

#[test]
fn warm_engine_rerun_of_a_fleet_study_is_pure_cache_hits() {
    let dir = temp_dir("warm");
    let study = CaseStudy::web_search();
    let scale = FleetScale::quick(11);

    let cold = Engine::new(ExperimentConfig::quick()).with_store(&dir).expect("store opens");
    let first = cold.fleet_study(&study, LoadBalancer::PowerOfTwoChoices, scale);
    assert_eq!(cold.sim_runs(), 1, "cold fleet study must simulate exactly once");

    let warm = Engine::new(ExperimentConfig::quick()).with_store(&dir).expect("store opens");
    let second = warm.fleet_study(&study, LoadBalancer::PowerOfTwoChoices, scale);
    assert_eq!(warm.sim_runs(), 0, "warm rerun must perform zero simulations");
    assert!((warm.stats().hit_rate() - 1.0).abs() < 1e-12, "warm rerun must be 100% cache hits");
    assert_eq!(first, second, "cached fleet reports must decode to the identical value");
    assert_eq!(first.p99_ms.to_bits(), second.p99_ms.to_bits());

    // A different balancer or scale is a different cell.
    let _ = warm.fleet_study(&study, LoadBalancer::RoundRobin, scale);
    assert_eq!(warm.sim_runs(), 1);
    let _ = warm.fleet_study(&study, LoadBalancer::PowerOfTwoChoices, FleetScale::quick(12));
    assert_eq!(warm.sim_runs(), 2);

    // The raw-config cell (`Engine::fleet`) is keyed by the full
    // `FleetConfig` identity and memoises like any other cell.
    let cfg = study.fleet_config(LoadBalancer::PowerOfTwoChoices, scale);
    let direct = warm.fleet(&cfg);
    assert_eq!(warm.sim_runs(), 3);
    let again = warm.fleet(&cfg);
    assert_eq!(warm.sim_runs(), 3, "repeated raw-config cell must be a memo hit");
    assert_eq!(direct, again);
    assert_eq!(
        direct, first,
        "a study cell and the equivalent raw-config cell must measure the same day"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn measured_gains_land_within_two_points_of_the_analytical_accounting() {
    for (study, paper) in [(CaseStudy::web_search(), 0.05), (CaseStudy::youtube(), 0.11)] {
        let analytical = study.run();
        let measured = study.run_fleet(LoadBalancer::LeastLoaded, FleetScale::quick(42));
        let delta = (measured.gain() - analytical.gain()).abs();
        assert!(
            delta < 0.02,
            "{}: measured gain {:+.2}% vs analytical {:+.2}% differ by {:.2}pp",
            study.service().name,
            measured.gain() * 100.0,
            analytical.gain() * 100.0,
            delta * 100.0
        );
        assert!(
            (measured.gain() - paper).abs() < 0.02,
            "{}: measured gain {:+.2}% vs paper {:+.0}%",
            study.service().name,
            measured.gain() * 100.0,
            paper * 100.0
        );
    }
}

#[test]
fn engagement_is_a_measured_decision_not_a_load_rule() {
    // The measured fleet must show what the analytical accounting cannot:
    // hysteresis lag around the threshold crossings and (near-)full
    // engagement only after the monitors have seen sustained slack.
    let report =
        CaseStudy::web_search().run_fleet(LoadBalancer::LeastLoaded, FleetScale::quick(42));
    let n = report.servers.len();
    // The very first interval starts in Baseline: no engagement yet even
    // though the load is deep in the trough.
    assert_eq!(report.intervals[0].engaged_servers, 0, "controllers must start disengaged");
    // Within a few intervals the monitors engage nearly the whole fleet.
    assert!(
        report.intervals[4].engaged_servers >= n - 1,
        "sustained slack must engage the fleet (got {}/{})",
        report.intervals[4].engaged_servers,
        n
    );
    // Mode changes happened on every server, and every server saw traffic.
    for s in &report.servers {
        assert!(s.mode_changes >= 2, "each server's monitor must have acted");
        assert!(s.requests > 0);
    }
}
