//! Integration tests for the measured fleet simulation: determinism,
//! per-server stream independence, warm-cache fleet cells through the
//! engine, and agreement between the measured and analytical §VI-D cluster
//! case studies.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use stretch_bench::{Engine, ExperimentConfig};
use stretch_repro::cluster::{
    rack_seed, server_seed, CaseStudy, Fleet, FleetScale, FleetTopology, LoadBalancer,
    TailAccumulation,
};

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let unique = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("stretch-fleet-{tag}-{}-{unique}", std::process::id()))
}

#[test]
fn same_seed_fleet_runs_are_bit_identical() {
    let cfg = CaseStudy::web_search().fleet_config(LoadBalancer::LeastLoaded, FleetScale::quick(3));
    let a = Fleet::new(cfg.clone()).run();
    let b = Fleet::new(cfg).run();
    assert_eq!(a, b, "identical config and seed must reproduce the identical report");
    // Bit-exact on the floats, not just approximately equal: the simulator
    // uses no platform-dependent arithmetic, so cross-process runs pin too
    // (tests/golden_parity.rs holds the cross-process fixture).
    assert_eq!(a.p99_ms.to_bits(), b.p99_ms.to_bits());
    assert_eq!(a.average_batch_throughput.to_bits(), b.average_batch_throughput.to_bits());
    for (x, y) in a.servers.iter().zip(&b.servers) {
        assert_eq!(x.p99_ms.to_bits(), y.p99_ms.to_bits());
    }
}

#[test]
fn per_server_streams_are_independent() {
    // Seed derivation: pairwise distinct, stable, and a function of (fleet
    // seed, server index) only — growing the fleet never re-seeds the
    // existing servers, which is what "no shared-RNG coupling" means here.
    let mut seen = std::collections::HashSet::new();
    for s in 0..256 {
        assert!(seen.insert(server_seed(99, s)), "server {s} shares another server's stream");
    }
    for s in 0..8 {
        assert_eq!(server_seed(99, s), server_seed(99, s));
    }

    // Behavioural check: under round-robin every server sees statistically
    // identical traffic, so only the private service-time streams separate
    // them — their measured tails must not collapse onto one value.
    let cfg = CaseStudy::web_search().fleet_config(LoadBalancer::RoundRobin, FleetScale::quick(5));
    let report = Fleet::new(cfg).run();
    let p99s: Vec<u64> = report.servers.iter().map(|s| s.p99_ms.to_bits()).collect();
    let distinct: std::collections::HashSet<&u64> = p99s.iter().collect();
    assert!(
        distinct.len() == p99s.len(),
        "every server must draw its own service times (p99s: {:?})",
        report.servers.iter().map(|s| s.p99_ms).collect::<Vec<_>>()
    );
}

#[test]
fn warm_engine_rerun_of_a_fleet_study_is_pure_cache_hits() {
    let dir = temp_dir("warm");
    let study = CaseStudy::web_search();
    let scale = FleetScale::quick(11);

    let cold = Engine::new(ExperimentConfig::quick()).with_store(&dir).expect("store opens");
    let first = cold.fleet_study(&study, LoadBalancer::PowerOfTwoChoices, scale);
    assert_eq!(cold.sim_runs(), 1, "cold fleet study must simulate exactly once");

    let warm = Engine::new(ExperimentConfig::quick()).with_store(&dir).expect("store opens");
    let second = warm.fleet_study(&study, LoadBalancer::PowerOfTwoChoices, scale);
    assert_eq!(warm.sim_runs(), 0, "warm rerun must perform zero simulations");
    assert!((warm.stats().hit_rate() - 1.0).abs() < 1e-12, "warm rerun must be 100% cache hits");
    assert_eq!(first, second, "cached fleet reports must decode to the identical value");
    assert_eq!(first.p99_ms.to_bits(), second.p99_ms.to_bits());

    // A different balancer or scale is a different cell.
    let _ = warm.fleet_study(&study, LoadBalancer::RoundRobin, scale);
    assert_eq!(warm.sim_runs(), 1);
    let _ = warm.fleet_study(&study, LoadBalancer::PowerOfTwoChoices, FleetScale::quick(12));
    assert_eq!(warm.sim_runs(), 2);

    // The raw-config cell (`Engine::fleet`) is keyed by the full
    // `FleetConfig` identity and memoises like any other cell.
    let cfg = study.fleet_config(LoadBalancer::PowerOfTwoChoices, scale);
    let direct = warm.fleet(&cfg);
    assert_eq!(warm.sim_runs(), 3);
    let again = warm.fleet(&cfg);
    assert_eq!(warm.sim_runs(), 3, "repeated raw-config cell must be a memo hit");
    assert_eq!(direct, again);
    assert_eq!(
        direct, first,
        "a study cell and the equivalent raw-config cell must measure the same day"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_runs_are_bit_identical_across_worker_counts() {
    // The tentpole contract: the report is a pure function of the config —
    // the worker count only picks how many OS threads chew through the
    // shards, never what they compute or how the results merge.
    let fleet = CaseStudy::web_search().fleet_with(
        LoadBalancer::PowerOfTwoChoices,
        FleetScale { servers: 64, requests_per_server: 50, seed: 7 },
        FleetTopology::racked(8, LoadBalancer::PowerOfTwoChoices),
        TailAccumulation::binned_default(),
        1,
    );
    let one = fleet.run_with_workers(1);
    let two = fleet.run_with_workers(2);
    let eight = fleet.run_with_workers(8);
    assert_eq!(one, two, "1 and 2 workers must produce the identical report");
    assert_eq!(one, eight, "1 and 8 workers must produce the identical report");
    assert_eq!(one.p99_ms.to_bits(), eight.p99_ms.to_bits());
    assert_eq!(one.average_batch_throughput.to_bits(), eight.average_batch_throughput.to_bits());
    for (a, b) in one.servers.iter().zip(&eight.servers) {
        assert_eq!(a.p99_ms.to_bits(), b.p99_ms.to_bits());
    }
}

#[test]
fn a_single_rack_fleet_is_bit_identical_to_the_flat_fleet() {
    // Rack 0 reuses the fleet seed (`rack_seed(seed, 0) == seed`), so a
    // one-rack topology is the flat fleet by construction — dispatch unit,
    // RNG streams and merge all coincide.
    assert_eq!(rack_seed(123, 0), 123);
    assert_ne!(rack_seed(123, 1), 123);
    let study = CaseStudy::web_search();
    let scale = FleetScale::quick(42);
    let flat = study
        .fleet_with(
            LoadBalancer::LeastLoaded,
            scale,
            FleetTopology::Flat,
            TailAccumulation::Exact,
            1,
        )
        .run();
    let racked = study
        .fleet_with(
            LoadBalancer::LeastLoaded,
            scale,
            FleetTopology::racked(1, LoadBalancer::LeastLoaded),
            TailAccumulation::Exact,
            1,
        )
        .run();
    assert_eq!(flat, racked, "one rack must degenerate to the flat fleet bit-for-bit");
    // And the flat path itself matches the historical single-shard entry
    // point (`fleet_config` + `run`), so pre-topology behaviour is intact.
    let historical = study.run_fleet(LoadBalancer::LeastLoaded, scale);
    assert_eq!(flat, historical);
}

#[test]
fn multi_day_runs_extend_the_day_loop() {
    let study = CaseStudy::web_search();
    let scale = FleetScale { servers: 8, requests_per_server: 40, seed: 9 };
    let one_day = study
        .fleet_with(
            LoadBalancer::PowerOfTwoChoices,
            scale,
            FleetTopology::Flat,
            TailAccumulation::Exact,
            1,
        )
        .run();
    let two_days = study
        .fleet_with(
            LoadBalancer::PowerOfTwoChoices,
            scale,
            FleetTopology::Flat,
            TailAccumulation::Exact,
            2,
        )
        .run();
    assert_eq!(two_days.intervals.len(), 2 * one_day.intervals.len());
    // Days share controller state (no midnight reset), and the engaged-hours
    // figure stays normalised per 24 hours.
    assert!(two_days.hours_engaged <= 24.0);
    assert!(two_days.hours_engaged > 0.0);
    // Day one of the two-day run is the one-day run: same seed, same
    // streams, the second day merely continues.
    for (a, b) in one_day.intervals.iter().zip(&two_days.intervals) {
        assert_eq!(a, b, "the first day must be unchanged by appending a second");
    }
}

#[test]
fn starved_server_intervals_are_skipped_not_counted_as_perfect_tails() {
    // Regression for the idle-server tail bug: least-loaded dispatch over a
    // large, nearly idle fleet breaks all-idle ties towards the lowest
    // server index, so high-index servers receive zero requests interval
    // after interval. Those server-intervals used to report a 0.0 ms tail —
    // a "perfect latency" phantom that fed the mode controllers and diluted
    // the violation fraction. They are now skipped and surfaced as starved.
    let study = CaseStudy {
        pattern: stretch_repro::cluster::DiurnalPattern::Custom {
            base: 0.02,
            amplitude: 0.0,
            peak_hour: 12.0,
            width: 6.0,
        },
        engage_below: 0.85,
        b_mode_batch_speedup: 1.11,
        interval_hours: 0.25,
    };
    let report = study
        .fleet_with(
            LoadBalancer::LeastLoaded,
            FleetScale { servers: 128, requests_per_server: 20, seed: 21 },
            FleetTopology::Flat,
            TailAccumulation::Exact,
            1,
        )
        .run();
    let n = report.servers.len();
    let starved_total: usize = report.servers.iter().map(|s| s.starved_intervals).sum();
    assert!(starved_total > 0, "a near-idle least-loaded fleet must starve some server-intervals");
    // Conservation: every server-interval is either measured or starved.
    let measured_total: usize = report.intervals.iter().map(|i| i.measured_servers).sum();
    assert_eq!(measured_total + starved_total, n * report.intervals.len());
    assert!(
        report.intervals.iter().any(|i| i.measured_servers < n),
        "some interval must show fewer measured servers than the fleet size"
    );
    // No phantom zero tails anywhere: every reported percentile is a real
    // sojourn (a request takes strictly positive time).
    assert!(report.p50_ms > 0.0, "fleet p50 {} must not be dragged to zero", report.p50_ms);
    for i in &report.intervals {
        assert!(i.p99_ms > 0.0, "interval p99 must come from real samples");
    }
    // A server that was starved all day never got an observation, so its
    // controller can never have acted.
    for s in &report.servers {
        if s.requests == 0 {
            assert_eq!(s.mode_changes, 0, "an unobserved controller must hold its mode");
            assert_eq!(s.engaged_intervals, 0);
        }
    }
}

/// The full acceptance-scale run: a 10 000-server day (19.2M requests),
/// sharded as 125 racks, bit-identical at 1 and 8 workers. Ignored by
/// default because it costs several release-mode seconds (minutes in
/// debug); run it with `cargo test --release -- --ignored`. CI exercises
/// the same configuration every run through the `cluster/fleet-10k` perf
/// benchmark.
#[test]
#[ignore = "datacenter scale: run explicitly in release mode"]
fn datacenter_day_is_bit_identical_across_worker_counts() {
    let fleet = CaseStudy::web_search().fleet_with(
        LoadBalancer::PowerOfTwoChoices,
        FleetScale::datacenter(42),
        FleetTopology::racked(125, LoadBalancer::PowerOfTwoChoices),
        TailAccumulation::binned_default(),
        1,
    );
    let one = fleet.run_with_workers(1);
    let eight = fleet.run_with_workers(8);
    assert_eq!(one, eight, "10k-server day must be worker-count independent");
    assert_eq!(one.requests, 19_200_000);
    assert!(one.gain() > 0.0);
}

#[test]
fn measured_gains_land_within_two_points_of_the_analytical_accounting() {
    for (study, paper) in [(CaseStudy::web_search(), 0.05), (CaseStudy::youtube(), 0.11)] {
        let analytical = study.run();
        let measured = study.run_fleet(LoadBalancer::LeastLoaded, FleetScale::quick(42));
        let delta = (measured.gain() - analytical.gain()).abs();
        assert!(
            delta < 0.02,
            "{}: measured gain {:+.2}% vs analytical {:+.2}% differ by {:.2}pp",
            study.service().name,
            measured.gain() * 100.0,
            analytical.gain() * 100.0,
            delta * 100.0
        );
        assert!(
            (measured.gain() - paper).abs() < 0.02,
            "{}: measured gain {:+.2}% vs paper {:+.0}%",
            study.service().name,
            measured.gain() * 100.0,
            paper * 100.0
        );
    }
}

#[test]
fn engagement_is_a_measured_decision_not_a_load_rule() {
    // The measured fleet must show what the analytical accounting cannot:
    // hysteresis lag around the threshold crossings and (near-)full
    // engagement only after the monitors have seen sustained slack.
    let report =
        CaseStudy::web_search().run_fleet(LoadBalancer::LeastLoaded, FleetScale::quick(42));
    let n = report.servers.len();
    // The very first interval starts in Baseline: no engagement yet even
    // though the load is deep in the trough.
    assert_eq!(report.intervals[0].engaged_servers, 0, "controllers must start disengaged");
    // Within a few intervals the monitors engage nearly the whole fleet.
    assert!(
        report.intervals[4].engaged_servers >= n - 1,
        "sustained slack must engage the fleet (got {}/{})",
        report.intervals[4].engaged_servers,
        n
    );
    // Mode changes happened on every server, and every server saw traffic.
    for s in &report.servers {
        assert!(s.mode_changes >= 2, "each server's monitor must have acted");
        assert!(s.requests > 0);
    }
}
