//! A crate that forgot its lint header entirely.

pub fn noop() {}
