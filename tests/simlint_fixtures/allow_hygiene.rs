pub fn stale() -> u64 {
    41 + 1 // simlint: allow(float-eq, "nothing here to suppress")
}

pub fn unknown() -> u64 {
    7 // simlint: allow(no-such-rule, "the rule id is made up")
}

pub fn reasonless() -> f64 {
    let x = 0.0;
    if x == 0.0 { x } else { 1.0 } // simlint: allow(float-eq)
}
