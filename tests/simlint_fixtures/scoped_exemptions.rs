//! scoped-exemptions fixture: a line waiver for a rule the enclosing module
//! is already exempt from is stale noise (analyzed as bench::engine, where
//! nondet-collections carries a module-scoped exemption).

type Memo = HashMap<u64, u64>; // simlint: allow(nondet-collections, "fixture: redundant under bench::engine")

fn probe(memo: &Memo, key: u64) -> bool {
    memo.contains_key(&key)
}
