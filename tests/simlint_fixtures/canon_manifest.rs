pub struct Knob {
    pub width: u32,
    pub scale: f64,
}

impl CanonicalKey for Knob {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.u64(u64::from(self.width)).f64(self.scale);
    }
}
