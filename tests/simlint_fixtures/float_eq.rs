pub fn close(a: f64) -> bool {
    a == 1.0
}

pub fn not_close(a: f64) -> bool {
    a != 0.5 // simlint: allow(float-eq, "fixture: exact sentinel compare")
}

pub fn int_compare_is_fine(n: u64) -> bool {
    n == 1 && n <= 2
}

pub fn bitwise_is_the_blessed_way(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}
