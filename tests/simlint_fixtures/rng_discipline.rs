//! rng-discipline fixture: RNG construction provenance and shard capture.
//! Seeded constructions (inside a seed-derivation fn, or fed seed material)
//! are clean; a bare numeric seed and a closure-captured stream are not.

fn server_seed(fleet_seed: u64, server: u64) -> u64 {
    let mut rng = SimRng::new(fleet_seed ^ 0x5e72_76f1);
    rng.fork(server).next_u64()
}

fn from_scenario(scenario_seed: u64) -> SimRng {
    SimRng::new(scenario_seed)
}

fn sloppy() -> SimRng {
    SimRng::new(42)
}

fn waived() -> SimRng {
    SimRng::new(7) // simlint: allow(rng-discipline, "fixture: provenance audited by hand")
}

fn shared_across_shards(seed: u64, items: Vec<u64>) -> Vec<u64> {
    let mut shared = SimRng::new(seed);
    parallel_map(items, 4, |i| shared.next_u64() ^ i)
}

fn forked_per_item(seed: u64, items: Vec<u64>) -> Vec<u64> {
    parallel_map(items, 4, |i| SimRng::new(seed ^ i).next_u64())
}
