//! shared-state fixture: `static mut`, interior mutability in statics, and
//! the `#[cfg(test)]` exemption.

static mut TICKS: u64 = 0;

static CACHE: Mutex<u64> = Mutex::new(0);

static LIMIT: u64 = 64;

static WAIVED: AtomicU64 = AtomicU64::new(0); // simlint: allow(shared-state, "fixture: diagnostics counter, never read by results")

#[cfg(test)]
mod tests {
    static NEXT: AtomicU64 = AtomicU64::new(0);
}
