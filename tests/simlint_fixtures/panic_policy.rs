pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn head(v: &[u64]) -> u64 {
    *v.first().expect("")
}

pub fn justified(v: &[u64]) -> u64 {
    *v.first().expect("caller guarantees a non-empty slice")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_the_assertion() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
