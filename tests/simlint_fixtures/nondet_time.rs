pub fn stamp() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn seeded() -> u64 {
    let r = thread_rng(); // simlint: allow(nondet-time, "fixture: demonstrating suppression")
    std::env::var("HOME").map(|_| 1).unwrap_or(r)
}

pub fn sim_time(cycle: u64) -> u64 {
    cycle * 2
}
