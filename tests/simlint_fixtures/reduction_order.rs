//! reduction-order fixture: float accumulation in parallel_map merge
//! functions and in functions they reach. Shard-closure accumulation and
//! min/max folds are order-safe; merge-region `+=`, float `.sum()` and
//! additive `.fold` are not.

fn merge(items: Vec<f64>) -> f64 {
    let outs = parallel_map(items, 2, |x| {
        let mut local = 0.0;
        local += x;
        local
    });
    let mut total = 0.0;
    for o in &outs {
        total += o;
    }
    let tail: f64 = outs.iter().map(|o| o * 2.0).sum();
    let worst = outs.iter().cloned().fold(f64::MAX, f64::min);
    total + tail + worst
}

fn helper_total(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, b| a + b)
}

fn merge_transitive(items: Vec<f64>) -> f64 {
    let outs = parallel_map(items, 2, |x| x + 1.0);
    helper_total(&outs)
}

fn waived_merge(items: Vec<f64>) -> f64 {
    let outs = parallel_map(items, 2, |x| x);
    let mut t = 0.0;
    for o in &outs {
        t += o; // simlint: allow(reduction-order, "fixture: shard count pinned to 1")
    }
    t
}
