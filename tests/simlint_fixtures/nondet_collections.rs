use std::collections::BTreeMap;

pub struct Index {
    map: HashMap<String, u64>,
}

pub fn hot_set() -> HashSet<u64> { // simlint: allow(nondet-collections, "fixture: membership only")
    HashSet::new() // simlint: allow(nondet-collections, "fixture: membership only")
}

pub fn ordered() -> BTreeMap<String, u64> {
    BTreeMap::new()
}
