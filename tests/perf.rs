//! Perf-layer integration tests: the benchmark registry must *observe* the
//! simulator, never perturb it. A perf-instrumented run has to produce
//! bit-identical simulation results to the same experiment driven through
//! the plain `Scenario` / `sim_qos` / fleet APIs, and repeated measurement
//! must be idempotent.

use stretch_bench::perf::{self, fingerprint, MeasureOptions};
use stretch_repro::prelude::*;
use stretch_repro::workloads::profile_by_name;

/// The registry's `cpu/colocate-baseline` benchmark, replayed through the
/// plain public API: identical policy, pairing, length and seed.
fn direct_cpu_baseline_fingerprint() -> u64 {
    let r = Scenario::colocate(
        profile_by_name("web-search").expect("known ls"),
        profile_by_name("zeusmp").expect("known batch"),
    )
    .policy(EqualPartition)
    .length(SimLength::quick())
    .seed(42)
    .run();
    fingerprint([r.expect_thread(ThreadId::T0).uipc, r.expect_thread(ThreadId::T1).uipc])
}

#[test]
fn instrumented_run_is_bit_identical_to_the_plain_api() {
    let spec = perf::by_name("cpu/colocate-baseline").expect("registered benchmark");
    // The registry run is exactly what `measure` wraps in wall-clock timing;
    // its result fingerprint must match the un-instrumented API bit for bit.
    let instrumented = (spec.run)();
    assert_eq!(
        instrumented.fingerprint,
        direct_cpu_baseline_fingerprint(),
        "measuring a run must not change its simulation results"
    );
    assert!(instrumented.sim_cycles > 0, "a cycle-level benchmark reports cycle work");
}

#[test]
fn measurement_is_idempotent_across_repeats() {
    // Warm-up + repeated measured runs must leave no state behind that
    // changes a later run: fingerprints are identical on every invocation.
    let spec = perf::by_name("cpu/standalone-websearch").expect("registered benchmark");
    let first = (spec.run)();
    let measured = perf::measure(spec, MeasureOptions { runs: 2, warmup_runs: 1 });
    let after = (spec.run)();
    assert_eq!(first.fingerprint, after.fingerprint, "measurement must not perturb the simulator");
    assert_eq!(measured.sim_cycles, first.sim_cycles);
    assert!(measured.median_wall_ms >= measured.min_wall_ms);
    assert!(measured.max_wall_ms >= measured.median_wall_ms);
}

#[test]
fn qos_benchmark_matches_the_plain_queueing_api() {
    use stretch_repro::qos::{latency_vs_load, ServiceSpec, SimParams};
    let spec = perf::by_name("qos/latency-curve").expect("registered benchmark");
    let instrumented = (spec.run)();
    let curve = latency_vs_load(&ServiceSpec::web_search(), SimParams::quick(11), 0.2, 6);
    assert_eq!(
        instrumented.fingerprint,
        fingerprint(curve.iter().map(|p| p.latency.p99_ms)),
        "the qos benchmark must replay the exact public-API curve"
    );
    assert_eq!(instrumented.requests, curve.iter().map(|p| p.latency.requests as u64).sum::<u64>());
}

#[test]
fn every_registry_benchmark_is_deterministic() {
    // Two invocations of any benchmark produce the same work and
    // fingerprint. The figures/quick-matrix entry and the two datacenter
    // fleet entries are exercised by CI's perf job instead — rendering every
    // figure twice (or simulating a 10k-server day twice, in debug) would
    // dominate the whole test suite's runtime; the fleet merge's worker
    // independence is pinned at test scale by tests/fleet.rs.
    const HEAVY: [&str; 3] = ["figures/quick-matrix", "cluster/fleet-10k", "cluster/fleet-scaling"];
    for spec in perf::registry() {
        if HEAVY.contains(&spec.name) {
            continue;
        }
        let a = (spec.run)();
        let b = (spec.run)();
        assert_eq!(a, b, "{} must be run-to-run deterministic", spec.name);
    }
}
