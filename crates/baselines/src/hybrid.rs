//! Hybrid fetch-throttle + ROB-skew policy — the demonstration that adding a
//! new colocation scheme is now a one-file change.
//!
//! The paper evaluates fetch throttling *instead of* window management and
//! shows admission control alone cannot stop a miss-bound thread from
//! clogging a dynamically shared ROB. This policy combines the two knobs the
//! way a POWER-style core could: Stretch's static ROB/LSQ skew bounds how
//! much window the batch thread can clog, while a mild 1:M fetch ratio keeps
//! the latency-sensitive thread's front-end slots protected. It is not a
//! paper configuration — it exists to exercise the [`ColocationPolicy`]
//! surface end to end (setup, canonical identity, scenario runs) with a
//! scheme none of the built-in figures use.

use cpu_sim::{ColocationPolicy, ColocationTopology, CoreSetup, FetchPolicy, PartitionPolicy};
use mem_sim::Sharing;
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};

/// Fetch throttling layered on an asymmetric ROB split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridThrottleSkew {
    /// The hardware thread running the latency-sensitive workload (gets the
    /// `1` of the fetch ratio and the small ROB share).
    pub ls_thread: ThreadId,
    /// The `M` in the 1:M fetch ratio.
    pub ratio: u32,
    /// ROB entries for the latency-sensitive thread.
    pub ls_rob: usize,
    /// ROB entries for the batch thread.
    pub batch_rob: usize,
}

impl HybridThrottleSkew {
    /// Creates the hybrid policy.
    ///
    /// # Panics
    ///
    /// Panics if `ratio == 0`.
    pub fn new(ls_thread: ThreadId, ratio: u32, ls_rob: usize, batch_rob: usize) -> Self {
        assert!(ratio >= 1, "fetch throttling needs a ratio of at least 1, got {ratio}");
        HybridThrottleSkew { ls_thread, ratio, ls_rob, batch_rob }
    }

    /// The reproduction's default operating point: a mild 1:2 fetch ratio on
    /// top of the paper's headline B-mode 56-136 skew.
    pub fn recommended() -> Self {
        HybridThrottleSkew::new(ThreadId::T0, 2, 56, 136)
    }
}

impl CanonicalKey for HybridThrottleSkew {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("policy/hybrid-throttle-skew")
            .field(&self.ls_thread)
            .field(&self.ratio)
            .usize(self.ls_rob)
            .usize(self.batch_rob);
    }
}

impl ColocationPolicy for HybridThrottleSkew {
    fn name(&self) -> String {
        format!("hybrid 1:{} + {}-{}", self.ratio, self.ls_rob, self.batch_rob)
    }

    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup {
        CoreSetup {
            partition: PartitionPolicy::ls_split(
                cfg,
                topology.threads(),
                self.ls_thread,
                self.ls_rob,
                self.batch_rob,
            ),
            fetch_policy: FetchPolicy::throttled(self.ls_thread, self.ratio),
            l1i_sharing: Sharing::Shared,
            l1d_sharing: Sharing::Shared,
            bp_sharing: Sharing::Shared,
        }
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_setup_combines_both_mechanisms() {
        let cfg = CoreConfig::default();
        let setup = HybridThrottleSkew::recommended().setup(&cfg);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T0), 56);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T1), 136);
        match setup.fetch_policy {
            FetchPolicy::Throttled { throttled, ratio } => {
                assert_eq!(throttled, ThreadId::T0);
                assert_eq!(ratio, 2);
            }
            other => panic!("expected a throttled fetch policy, got {other:?}"),
        }
    }

    #[test]
    fn ls_thread_mapping_swaps_the_skew() {
        let cfg = CoreConfig::default();
        let setup = HybridThrottleSkew::new(ThreadId::T1, 4, 56, 136).setup(&cfg);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T1), 56);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T0), 136);
    }

    #[test]
    fn hybrid_boosts_the_batch_thread_over_the_equal_baseline() {
        use cpu_sim::{EqualPartition, Scenario, SimLength};
        use workloads::profile_by_name;

        let pair = || {
            Scenario::colocate(
                profile_by_name("web-search").unwrap(),
                profile_by_name("zeusmp").unwrap(),
            )
            .length(SimLength::quick())
            .seed(21)
        };
        let baseline = pair().policy(EqualPartition).run();
        let hybrid = pair().policy(HybridThrottleSkew::recommended()).run();
        // The batch thread gets both the big window and the fetch surplus;
        // it must not end up slower than under equal partitioning.
        assert!(
            hybrid.expect_thread(ThreadId::T1).uipc
                >= baseline.expect_thread(ThreadId::T1).uipc * 0.98,
            "hybrid batch {:.3} vs baseline {:.3}",
            hybrid.expect_thread(ThreadId::T1).uipc,
            baseline.expect_thread(ThreadId::T1).uipc
        );
    }

    #[test]
    fn canonical_key_distinguishes_operating_points() {
        let digest = |p: &HybridThrottleSkew| {
            let mut enc = KeyEncoder::new();
            p.encode_key(&mut enc);
            enc.digest()
        };
        assert_ne!(
            digest(&HybridThrottleSkew::recommended()),
            digest(&HybridThrottleSkew::new(ThreadId::T0, 4, 56, 136))
        );
        assert_ne!(
            digest(&HybridThrottleSkew::recommended()),
            digest(&HybridThrottleSkew::new(ThreadId::T0, 2, 48, 144))
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ratio_rejected() {
        let _ = HybridThrottleSkew::new(ThreadId::T0, 0, 56, 136);
    }
}
