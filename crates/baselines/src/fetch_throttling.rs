//! Fetch-throttling baseline (Figure 12).
//!
//! Front-end resource management: allocate fetch bandwidth between the
//! threads at a 1:M ratio (the latency-sensitive thread gets the `1`). The
//! paper evaluates M ∈ {2, 4, 8, 16} on top of a *dynamically shared* ROB —
//! the point being that admission control alone cannot keep a miss-bound
//! thread from clogging the window.

use cpu_sim::{CoreSetup, FetchPolicy, PartitionPolicy};
use mem_sim::Sharing;
use sim_model::{CoreConfig, ThreadId};

/// The fetch-throttling ratios (`M` in 1:M) evaluated in Figure 12.
pub const FETCH_THROTTLING_RATIOS: [u32; 4] = [2, 4, 8, 16];

/// Builds the fetch-throttling configuration: dynamically shared ROB, shared
/// caches/predictor, and a throttled fetch policy that gives `ls_thread` one
/// fetch cycle for every `ratio` cycles granted to the co-runner.
///
/// # Panics
///
/// Panics if `ratio == 0`.
pub fn fetch_throttling_setup(_cfg: &CoreConfig, ls_thread: ThreadId, ratio: u32) -> CoreSetup {
    CoreSetup {
        partition: PartitionPolicy::Dynamic,
        fetch_policy: FetchPolicy::throttled(ls_thread, ratio),
        l1i_sharing: Sharing::Shared,
        l1d_sharing: Sharing::Shared,
        bp_sharing: Sharing::Shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_the_figure() {
        assert_eq!(FETCH_THROTTLING_RATIOS, [2, 4, 8, 16]);
    }

    #[test]
    fn setup_uses_dynamic_rob_and_throttled_fetch() {
        let cfg = CoreConfig::default();
        let setup = fetch_throttling_setup(&cfg, ThreadId::T0, 4);
        assert_eq!(setup.partition, PartitionPolicy::Dynamic);
        match setup.fetch_policy {
            FetchPolicy::Throttled { throttled, ratio } => {
                assert_eq!(throttled, ThreadId::T0);
                assert_eq!(ratio, 4);
            }
            other => panic!("expected a throttled policy, got {other:?}"),
        }
    }

    #[test]
    fn heavier_throttling_hurts_the_latency_sensitive_thread() {
        use cpu_sim::{run_pair, SimLength};
        use workloads::{batch, latency_sensitive};

        let cfg = CoreConfig::default();
        let length = SimLength::quick();
        let mild = run_pair(
            &cfg,
            fetch_throttling_setup(&cfg, ThreadId::T0, 2),
            latency_sensitive::web_search(5),
            batch::zeusmp(5),
            length,
        );
        let harsh = run_pair(
            &cfg,
            fetch_throttling_setup(&cfg, ThreadId::T0, 16),
            latency_sensitive::web_search(5),
            batch::zeusmp(5),
            length,
        );
        assert!(
            harsh.uipc(ThreadId::T0) < mild.uipc(ThreadId::T0),
            "a 1:16 ratio must hurt the throttled thread more than 1:2 (1:2={:.3}, 1:16={:.3})",
            mild.uipc(ThreadId::T0),
            harsh.uipc(ThreadId::T0)
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ratio_rejected() {
        let _ = fetch_throttling_setup(&CoreConfig::default(), ThreadId::T0, 0);
    }
}
