//! Fetch-throttling baseline (Figure 12).
//!
//! Front-end resource management: allocate fetch bandwidth between the
//! threads at a 1:M ratio (the latency-sensitive thread gets the `1`). The
//! paper evaluates M ∈ {2, 4, 8, 16} on top of a *dynamically shared* ROB —
//! the point being that admission control alone cannot keep a miss-bound
//! thread from clogging the window.

use cpu_sim::{ColocationPolicy, ColocationTopology, CoreSetup, FetchPolicy, PartitionPolicy};
use mem_sim::Sharing;
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};

/// The fetch-throttling ratios (`M` in 1:M) evaluated in Figure 12.
pub const FETCH_THROTTLING_RATIOS: [u32; 4] = [2, 4, 8, 16];

/// The fetch-throttling policy: dynamically shared ROB, shared
/// caches/predictor, and a throttled fetch policy that gives the
/// latency-sensitive thread one fetch cycle for every `ratio` granted to the
/// co-runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchThrottling {
    /// The hardware thread running the latency-sensitive (throttled) workload.
    pub ls_thread: ThreadId,
    /// The `M` in the 1:M fetch ratio.
    pub ratio: u32,
}

impl FetchThrottling {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `ratio == 0` (the underlying fetch policy requires 1:M with
    /// M ≥ 1).
    pub fn new(ls_thread: ThreadId, ratio: u32) -> FetchThrottling {
        assert!(ratio >= 1, "fetch throttling needs a ratio of at least 1, got {ratio}");
        FetchThrottling { ls_thread, ratio }
    }
}

impl CanonicalKey for FetchThrottling {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("policy/fetch-throttling").field(&self.ls_thread).field(&self.ratio);
    }
}

impl ColocationPolicy for FetchThrottling {
    fn name(&self) -> String {
        format!("fetch throttling 1:{}", self.ratio)
    }

    fn setup_for(&self, _cfg: &CoreConfig, _topology: &ColocationTopology) -> CoreSetup {
        // The dynamically shared window and the 1:M fetch group are both
        // width-agnostic: every non-throttled thread joins the batch group.
        CoreSetup {
            partition: PartitionPolicy::Dynamic,
            fetch_policy: FetchPolicy::throttled(self.ls_thread, self.ratio),
            l1i_sharing: Sharing::Shared,
            l1d_sharing: Sharing::Shared,
            bp_sharing: Sharing::Shared,
        }
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_the_figure() {
        assert_eq!(FETCH_THROTTLING_RATIOS, [2, 4, 8, 16]);
    }

    #[test]
    fn setup_uses_dynamic_rob_and_throttled_fetch() {
        let cfg = CoreConfig::default();
        let setup = FetchThrottling::new(ThreadId::T0, 4).setup(&cfg);
        assert_eq!(setup.partition, PartitionPolicy::Dynamic);
        match setup.fetch_policy {
            FetchPolicy::Throttled { throttled, ratio } => {
                assert_eq!(throttled, ThreadId::T0);
                assert_eq!(ratio, 4);
            }
            other => panic!("expected a throttled policy, got {other:?}"),
        }
    }

    #[test]
    fn heavier_throttling_hurts_the_latency_sensitive_thread() {
        use cpu_sim::{Scenario, SimLength};
        use workloads::profile_by_name;

        let pair = |ratio| {
            Scenario::colocate(
                profile_by_name("web-search").unwrap(),
                profile_by_name("zeusmp").unwrap(),
            )
            .policy(FetchThrottling::new(ThreadId::T0, ratio))
            .length(SimLength::quick())
            .seed(5)
            .run()
        };
        let mild = pair(2);
        let harsh = pair(16);
        assert!(
            harsh.expect_thread(ThreadId::T0).uipc < mild.expect_thread(ThreadId::T0).uipc,
            "a 1:16 ratio must hurt the throttled thread more than 1:2 (1:2={:.3}, 1:16={:.3})",
            mild.expect_thread(ThreadId::T0).uipc,
            harsh.expect_thread(ThreadId::T0).uipc
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ratio_rejected() {
        let _ = FetchThrottling::new(ThreadId::T0, 0);
    }
}
