//! Comparison systems evaluated against Stretch.
//!
//! The paper compares Stretch against four alternatives, all reproduced here
//! as [`cpu_sim::CoreSetup`] constructors plus supporting policy code:
//!
//! * [`dynamic_sharing`] — a dynamically shared ROB (no partitioning at
//!   all), the Figure 11 configuration;
//! * [`fetch_throttling`] — front-end control: the latency-sensitive thread
//!   receives one fetch cycle for every `M` given to the batch thread
//!   (Figure 12), as on IBM POWER;
//! * [`ideal_scheduling`] — idealised software scheduling (SMiTe-style):
//!   contention in all dynamically shared structures is assumed away by
//!   giving each thread private L1s and branch predictor (Figure 13);
//! * [`elfen`] — Elfen-style fine-grain borrowing: the latency-sensitive
//!   thread time-shares the core with a non-contentious partner at
//!   sub-millisecond granularity, which is how the paper modulates core
//!   performance for the Section II slack measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic_sharing;
pub mod elfen;
pub mod fetch_throttling;
pub mod ideal_scheduling;

pub use dynamic_sharing::dynamic_rob_setup;
pub use elfen::{DutyCycle, ElfenSchedule};
pub use fetch_throttling::{fetch_throttling_setup, FETCH_THROTTLING_RATIOS};
pub use ideal_scheduling::{ideal_scheduling_setup, ideal_scheduling_with_stretch_setup};
