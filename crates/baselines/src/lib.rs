//! Comparison systems evaluated against Stretch — each a one-file
//! implementation of [`cpu_sim::ColocationPolicy`].
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! The paper's framing is that all of these mechanisms are interchangeable
//! resource-allocation policies over the same SMT core; this crate makes
//! them literally interchangeable values. Run any of them through
//! [`cpu_sim::Scenario`] (`Scenario::colocate(ls, batch).policy(p).run()`) or
//! the experiment engine's colocation matrix:
//!
//! * [`DynamicSharing`] — a dynamically shared ROB (no partitioning at all),
//!   the Figure 11 configuration;
//! * [`FetchThrottling`] — front-end control: the latency-sensitive thread
//!   receives one fetch cycle for every `M` given to the batch thread
//!   (Figure 12), as on IBM POWER;
//! * [`IdealScheduling`] — idealised software scheduling (SMiTe-style):
//!   contention in all dynamically shared structures is assumed away by
//!   giving each thread private L1s and branch predictor (Figure 13), with
//!   an optional Stretch skew layered on top for the combined bar;
//! * [`Elfen`] — Elfen-style fine-grain borrowing: the latency-sensitive
//!   thread time-shares the core with a non-contentious partner at
//!   sub-millisecond granularity (the Section II slack-measurement
//!   mechanism), with a duty cycle the closed-loop hook adapts to QoS
//!   headroom;
//! * [`HybridThrottleSkew`] — *not* a paper configuration: fetch throttling
//!   layered on a Stretch ROB skew, added as the demonstration that a new
//!   policy is a one-file change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic_sharing;
pub mod elfen;
pub mod fetch_throttling;
pub mod hybrid;
pub mod ideal_scheduling;

pub use dynamic_sharing::DynamicSharing;
pub use elfen::{duty_cycle_grid, DutyCycle, Elfen, ElfenSchedule};
pub use fetch_throttling::{FetchThrottling, FETCH_THROTTLING_RATIOS};
pub use hybrid::HybridThrottleSkew;
pub use ideal_scheduling::IdealScheduling;
