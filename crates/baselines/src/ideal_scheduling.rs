//! Idealised software scheduling baseline (Figure 13).
//!
//! Software schedulers such as SMiTe can only pick colocation-friendly
//! application pairs; they cannot reprovision microarchitectural resources.
//! The paper bounds what such scheduling could ever achieve by simulating a
//! core in which *all* dynamically shared structures (L1-I, L1-D, branch
//! predictor) are contention-free — i.e. private per thread — while the ROB
//! and LSQ stay equally partitioned. Stretch is complementary: the combined
//! configuration (private L1s/BP plus the asymmetric B-mode ROB split) is
//! also provided.

use cpu_sim::{CoreSetup, FetchPolicy, PartitionPolicy};
use mem_sim::Sharing;
use sim_model::{CoreConfig, ThreadId};

/// Ideal software scheduling: private L1-I, L1-D and branch predictor for
/// each thread, equally partitioned ROB/LSQ.
pub fn ideal_scheduling_setup(cfg: &CoreConfig) -> CoreSetup {
    CoreSetup {
        partition: PartitionPolicy::equal(cfg),
        fetch_policy: FetchPolicy::ICount,
        l1i_sharing: Sharing::PrivatePerThread,
        l1d_sharing: Sharing::PrivatePerThread,
        bp_sharing: Sharing::PrivatePerThread,
    }
}

/// Ideal software scheduling combined with Stretch's B-mode ROB skew
/// (`ls_rob`-`batch_rob` entries, latency-sensitive thread given by
/// `ls_thread`) — the "Stretch + Ideal Software Scheduling" bar of Figure 13.
///
/// # Panics
///
/// Panics if the requested skew exceeds the ROB capacity.
pub fn ideal_scheduling_with_stretch_setup(
    cfg: &CoreConfig,
    ls_thread: ThreadId,
    ls_rob: usize,
    batch_rob: usize,
) -> CoreSetup {
    let (t0, t1) =
        if ls_thread == ThreadId::T0 { (ls_rob, batch_rob) } else { (batch_rob, ls_rob) };
    CoreSetup {
        partition: PartitionPolicy::rob_split(cfg, t0, t1),
        fetch_policy: FetchPolicy::ICount,
        l1i_sharing: Sharing::PrivatePerThread,
        l1d_sharing: Sharing::PrivatePerThread,
        bp_sharing: Sharing::PrivatePerThread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_scheduling_privatises_everything_but_the_window() {
        let cfg = CoreConfig::default();
        let s = ideal_scheduling_setup(&cfg);
        assert_eq!(s.l1i_sharing, Sharing::PrivatePerThread);
        assert_eq!(s.l1d_sharing, Sharing::PrivatePerThread);
        assert_eq!(s.bp_sharing, Sharing::PrivatePerThread);
        assert_eq!(s.partition.rob_limit(&cfg, ThreadId::T0), 96);
    }

    #[test]
    fn combined_setup_applies_the_skew() {
        let cfg = CoreConfig::default();
        let s = ideal_scheduling_with_stretch_setup(&cfg, ThreadId::T0, 56, 136);
        assert_eq!(s.partition.rob_limit(&cfg, ThreadId::T0), 56);
        assert_eq!(s.partition.rob_limit(&cfg, ThreadId::T1), 136);
        assert_eq!(s.l1d_sharing, Sharing::PrivatePerThread);
        let swapped = ideal_scheduling_with_stretch_setup(&cfg, ThreadId::T1, 56, 136);
        assert_eq!(swapped.partition.rob_limit(&cfg, ThreadId::T1), 56);
    }

    #[test]
    fn removing_cache_contention_helps_the_batch_thread() {
        use cpu_sim::{run_pair, SimLength};
        use workloads::{batch, latency_sensitive};

        let cfg = CoreConfig::default();
        let length = SimLength::quick();
        let shared = run_pair(
            &cfg,
            CoreSetup::baseline(&cfg),
            latency_sensitive::web_serving(9),
            batch::by_name("gcc", 9).unwrap(),
            length,
        );
        let ideal = run_pair(
            &cfg,
            ideal_scheduling_setup(&cfg),
            latency_sensitive::web_serving(9),
            batch::by_name("gcc", 9).unwrap(),
            length,
        );
        assert!(
            ideal.uipc(ThreadId::T1) >= shared.uipc(ThreadId::T1) * 0.98,
            "removing L1/BP contention should not hurt the batch thread \
             (shared={:.3}, ideal={:.3})",
            shared.uipc(ThreadId::T1),
            ideal.uipc(ThreadId::T1)
        );
    }
}
