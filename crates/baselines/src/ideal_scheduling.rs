//! Idealised software scheduling baseline (Figure 13).
//!
//! Software schedulers such as SMiTe can only pick colocation-friendly
//! application pairs; they cannot reprovision microarchitectural resources.
//! The paper bounds what such scheduling could ever achieve by simulating a
//! core in which *all* dynamically shared structures (L1-I, L1-D, branch
//! predictor) are contention-free — i.e. private per thread — while the ROB
//! and LSQ stay equally partitioned. Stretch is complementary: the combined
//! policy (private L1s/BP plus an asymmetric B-mode ROB split) is the
//! "Stretch + Ideal Software Scheduling" bar of Figure 13.

use cpu_sim::{ColocationPolicy, ColocationTopology, CoreSetup, FetchPolicy, PartitionPolicy};
use mem_sim::Sharing;
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};

/// Ideal software scheduling: private L1-I, L1-D and branch predictor for
/// each thread. The ROB/LSQ stay equally partitioned unless a Stretch skew is
/// layered on top ([`IdealScheduling::with_stretch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdealScheduling {
    /// Optional Stretch ROB skew `(ls_thread, ls_entries, batch_entries)`
    /// layered on top of the contention-free caches.
    skew: Option<(ThreadId, usize, usize)>,
}

impl IdealScheduling {
    /// The pure ideal-scheduling policy (equal ROB partitioning).
    pub fn new() -> IdealScheduling {
        IdealScheduling { skew: None }
    }

    /// Ideal software scheduling combined with Stretch's B-mode ROB skew
    /// (`ls_rob`-`batch_rob` entries, latency-sensitive thread given by
    /// `ls_thread`).
    pub fn with_stretch(ls_thread: ThreadId, ls_rob: usize, batch_rob: usize) -> IdealScheduling {
        IdealScheduling { skew: Some((ls_thread, ls_rob, batch_rob)) }
    }
}

impl Default for IdealScheduling {
    fn default() -> IdealScheduling {
        IdealScheduling::new()
    }
}

impl CanonicalKey for IdealScheduling {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("policy/ideal-scheduling");
        match self.skew {
            None => {
                enc.tag(0);
            }
            Some((t, ls, batch)) => {
                enc.tag(1).field(&t).usize(ls).usize(batch);
            }
        }
    }
}

impl ColocationPolicy for IdealScheduling {
    fn name(&self) -> String {
        match self.skew {
            None => "ideal software scheduling".to_string(),
            Some((_, ls, batch)) => format!("ideal scheduling + Stretch {ls}-{batch}"),
        }
    }

    /// Builds the contention-free core, applying the Stretch skew if one was
    /// provisioned. On an SMT-T core the batch share is spread over the
    /// `T - 1` co-runners.
    ///
    /// # Panics
    ///
    /// Panics if the requested skew exceeds the ROB capacity.
    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup {
        let partition = match self.skew {
            None => PartitionPolicy::equal_n(cfg, topology.threads()),
            Some((ls_thread, ls_rob, batch_rob)) => {
                PartitionPolicy::ls_split(cfg, topology.threads(), ls_thread, ls_rob, batch_rob)
            }
        };
        CoreSetup {
            partition,
            fetch_policy: FetchPolicy::ICount,
            l1i_sharing: Sharing::PrivatePerThread,
            l1d_sharing: Sharing::PrivatePerThread,
            bp_sharing: Sharing::PrivatePerThread,
        }
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_scheduling_privatises_everything_but_the_window() {
        let cfg = CoreConfig::default();
        let s = IdealScheduling::new().setup(&cfg);
        assert_eq!(s.l1i_sharing, Sharing::PrivatePerThread);
        assert_eq!(s.l1d_sharing, Sharing::PrivatePerThread);
        assert_eq!(s.bp_sharing, Sharing::PrivatePerThread);
        assert_eq!(s.partition.rob_limit(&cfg, ThreadId::T0), 96);
    }

    #[test]
    fn combined_setup_applies_the_skew() {
        let cfg = CoreConfig::default();
        let s = IdealScheduling::with_stretch(ThreadId::T0, 56, 136).setup(&cfg);
        assert_eq!(s.partition.rob_limit(&cfg, ThreadId::T0), 56);
        assert_eq!(s.partition.rob_limit(&cfg, ThreadId::T1), 136);
        assert_eq!(s.l1d_sharing, Sharing::PrivatePerThread);
        let swapped = IdealScheduling::with_stretch(ThreadId::T1, 56, 136).setup(&cfg);
        assert_eq!(swapped.partition.rob_limit(&cfg, ThreadId::T1), 56);
    }

    #[test]
    fn pure_and_combined_policies_have_distinct_keys() {
        let digest = |p: &IdealScheduling| {
            let mut enc = KeyEncoder::new();
            p.encode_key(&mut enc);
            enc.digest()
        };
        assert_ne!(
            digest(&IdealScheduling::new()),
            digest(&IdealScheduling::with_stretch(ThreadId::T0, 56, 136))
        );
        assert_ne!(
            digest(&IdealScheduling::with_stretch(ThreadId::T0, 56, 136)),
            digest(&IdealScheduling::with_stretch(ThreadId::T1, 56, 136))
        );
    }

    #[test]
    fn removing_cache_contention_helps_the_batch_thread() {
        use cpu_sim::{EqualPartition, Scenario, SimLength};
        use workloads::profile_by_name;

        let pair = || {
            Scenario::colocate(
                profile_by_name("web-serving").unwrap(),
                profile_by_name("gcc").unwrap(),
            )
            .length(SimLength::quick())
            .seed(9)
        };
        let shared = pair().policy(EqualPartition).run();
        let ideal = pair().policy(IdealScheduling::new()).run();
        assert!(
            ideal.expect_thread(ThreadId::T1).uipc
                >= shared.expect_thread(ThreadId::T1).uipc * 0.98,
            "removing L1/BP contention should not hurt the batch thread \
             (shared={:.3}, ideal={:.3})",
            shared.expect_thread(ThreadId::T1).uipc,
            ideal.expect_thread(ThreadId::T1).uipc
        );
    }
}
