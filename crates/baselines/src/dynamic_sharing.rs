//! Dynamically shared ROB baseline (Figure 11).
//!
//! With no resource management at all, either thread may occupy any ROB/LSQ
//! entry. The paper shows this is *worse* than equal partitioning for most
//! batch co-runners: a latency-sensitive thread stalled on a miss clogs the
//! shared ROB without benefiting from it.

use cpu_sim::{ColocationPolicy, ColocationTopology, CoreSetup, FetchPolicy, PartitionPolicy};
use mem_sim::Sharing;
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder};

/// The dynamically shared ROB policy: ICOUNT fetch, shared caches and
/// predictor (as in the baseline), but no ROB/LSQ partitioning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynamicSharing;

impl CanonicalKey for DynamicSharing {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("policy/dynamic-sharing");
    }
}

impl ColocationPolicy for DynamicSharing {
    fn name(&self) -> String {
        "dynamic ROB sharing".to_string()
    }

    fn setup_for(&self, _cfg: &CoreConfig, _topology: &ColocationTopology) -> CoreSetup {
        // A fully dynamic window is width-agnostic by construction.
        CoreSetup {
            partition: PartitionPolicy::Dynamic,
            fetch_policy: FetchPolicy::ICount,
            l1i_sharing: Sharing::Shared,
            l1d_sharing: Sharing::Shared,
            bp_sharing: Sharing::Shared,
        }
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_model::ThreadId;

    #[test]
    fn dynamic_setup_has_full_capacity_limits() {
        let cfg = CoreConfig::default();
        let setup = DynamicSharing.setup(&cfg);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T0), cfg.rob_capacity);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T1), cfg.rob_capacity);
        assert!(setup.partition.enforce_total_capacity());
        assert_eq!(setup.l1d_sharing, Sharing::Shared);
    }

    #[test]
    fn a_stalled_thread_can_clog_the_shared_rob() {
        // Functional check of the mechanism behind Figure 11: under dynamic
        // sharing a miss-bound thread grabs most of the ROB, hurting an
        // MLP-rich co-runner relative to equal partitioning.
        use cpu_sim::{EqualPartition, Scenario, SimLength};
        use workloads::profile_by_name;

        let length = SimLength::quick();
        let pair = || {
            Scenario::colocate(
                profile_by_name("data-serving").unwrap(),
                profile_by_name("zeusmp").unwrap(),
            )
            .length(length)
            .seed(3)
        };
        let equal = pair().policy(EqualPartition).run();
        let dynamic = pair().policy(DynamicSharing).run();
        let equal_batch = equal.expect_thread(ThreadId::T1).uipc;
        let dynamic_batch = dynamic.expect_thread(ThreadId::T1).uipc;
        assert!(
            dynamic_batch < equal_batch * 1.05,
            "dynamic sharing should not beat equal partitioning for an MLP-rich batch thread \
             (equal={equal_batch:.3}, dynamic={dynamic_batch:.3})"
        );
    }
}
