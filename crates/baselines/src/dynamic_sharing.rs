//! Dynamically shared ROB baseline (Figure 11).
//!
//! With no resource management at all, either thread may occupy any ROB/LSQ
//! entry. The paper shows this is *worse* than equal partitioning for most
//! batch co-runners: a latency-sensitive thread stalled on a miss clogs the
//! shared ROB without benefiting from it.

use cpu_sim::{CoreSetup, FetchPolicy, PartitionPolicy};
use mem_sim::Sharing;
use sim_model::CoreConfig;

/// The dynamically shared ROB configuration: ICOUNT fetch, shared caches and
/// predictor (as in the baseline), but no ROB/LSQ partitioning.
pub fn dynamic_rob_setup(_cfg: &CoreConfig) -> CoreSetup {
    CoreSetup {
        partition: PartitionPolicy::Dynamic,
        fetch_policy: FetchPolicy::ICount,
        l1i_sharing: Sharing::Shared,
        l1d_sharing: Sharing::Shared,
        bp_sharing: Sharing::Shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_model::ThreadId;

    #[test]
    fn dynamic_setup_has_full_capacity_limits() {
        let cfg = CoreConfig::default();
        let setup = dynamic_rob_setup(&cfg);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T0), cfg.rob_capacity);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T1), cfg.rob_capacity);
        assert!(setup.partition.enforce_total_capacity());
        assert_eq!(setup.l1d_sharing, Sharing::Shared);
    }

    #[test]
    fn a_stalled_thread_can_clog_the_shared_rob() {
        // Functional check of the mechanism behind Figure 11: under dynamic
        // sharing a miss-bound thread grabs most of the ROB, hurting an
        // MLP-rich co-runner relative to equal partitioning.
        use cpu_sim::{run_pair, SimLength};
        use workloads::{batch, latency_sensitive};

        let cfg = CoreConfig::default();
        let length = SimLength::quick();
        let equal = run_pair(
            &cfg,
            CoreSetup::baseline(&cfg),
            latency_sensitive::data_serving(3),
            batch::zeusmp(3),
            length,
        );
        let dynamic = run_pair(
            &cfg,
            dynamic_rob_setup(&cfg),
            latency_sensitive::data_serving(3),
            batch::zeusmp(3),
            length,
        );
        let equal_batch = equal.uipc(ThreadId::T1);
        let dynamic_batch = dynamic.uipc(ThreadId::T1);
        assert!(
            dynamic_batch < equal_batch * 1.05,
            "dynamic sharing should not beat equal partitioning for an MLP-rich batch thread \
             (equal={equal_batch:.3}, dynamic={dynamic_batch:.3})"
        );
    }
}
