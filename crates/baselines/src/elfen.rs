//! Elfen-style fine-grain time interleaving.
//!
//! Section II of the paper measures QoS slack by modulating the fraction of
//! time the latency-sensitive workload runs on the core: a non-contentious
//! preemptive co-runner is interleaved at sub-millisecond granularity, so the
//! service receives a configurable duty cycle of the core. This module
//! provides that schedule abstraction — a duty cycle, a time quantum, and the
//! mapping from duty cycle to delivered performance fraction (which is what
//! the `qos` crate's slack analysis consumes) — plus the [`Elfen`]
//! [`ColocationPolicy`]: because the borrowed co-runner is non-contentious by
//! construction, the core itself runs contention-free (private structures),
//! and the policy's closed-loop hook adapts the duty cycle to the observed
//! QoS headroom.

use cpu_sim::{
    ColocationPolicy, ColocationTopology, CoreSetup, PolicyAction, PrivateCore, QosObservation,
};
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder};

/// Fraction of time the latency-sensitive thread owns the core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DutyCycle(f64);

impl DutyCycle {
    /// Creates a duty cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `(0, 1]`.
    pub fn new(fraction: f64) -> DutyCycle {
        assert!(fraction > 0.0 && fraction <= 1.0, "duty cycle must be in (0, 1], got {fraction}");
        DutyCycle(fraction)
    }

    /// The fraction as a float.
    pub fn fraction(self) -> f64 {
        self.0
    }
}

/// An Elfen-style interleaving schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElfenSchedule {
    /// Fraction of time given to the latency-sensitive thread.
    pub duty_cycle: DutyCycle,
    /// Scheduling quantum in microseconds (sub-millisecond per the paper).
    pub quantum_us: f64,
}

impl ElfenSchedule {
    /// Creates a schedule with the paper's sub-millisecond granularity
    /// (100 µs quanta).
    pub fn new(duty_cycle: DutyCycle) -> ElfenSchedule {
        ElfenSchedule { duty_cycle, quantum_us: 100.0 }
    }

    /// The single-thread performance fraction delivered to the
    /// latency-sensitive workload. With a non-contentious co-runner and a
    /// quantum far below the latency target, delivered performance equals the
    /// duty cycle.
    pub fn delivered_performance(&self) -> f64 {
        self.duty_cycle.fraction()
    }

    /// Length of one on/off period in microseconds.
    pub fn period_us(&self) -> f64 {
        self.quantum_us / self.duty_cycle.fraction()
    }

    /// Whether the schedule's granularity is safely below a latency target
    /// (expressed in milliseconds): the paper requires the interleaving
    /// period to be orders of magnitude below the tail-latency target.
    pub fn is_fine_grained_for(&self, qos_target_ms: f64) -> bool {
        self.period_us() < qos_target_ms * 1000.0 / 100.0
    }
}

/// The duty-cycle grid used for the Section II slack measurement: 5% steps.
pub fn duty_cycle_grid() -> Vec<DutyCycle> {
    (1..=20).map(|i| DutyCycle::new(i as f64 * 0.05)).collect()
}

/// The Elfen-style borrowing policy.
///
/// The latency-sensitive thread time-shares the core with a non-contentious
/// lending partner, so the core configuration is contention-free (everything
/// private, full window); what varies is the duty cycle, and with it the
/// delivered single-thread performance fraction the `qos` slack analysis
/// consumes. The closed-loop hook walks the duty cycle along the Section II
/// 5% grid: ample QoS headroom lends more of the core away, pressure claims
/// it back.
///
/// **Scope of the cycle model:** a `Scenario` run under this policy models
/// the instants when a thread *owns* the core (hence the contention-free
/// setup); the time-sharing itself happens at the scheduler level, above the
/// cycle model, and is represented analytically by
/// [`Elfen::delivered_performance`] (delivered performance equals the duty
/// cycle, §II). Use [`cpu_sim::Scenario::standalone`] for the on-core
/// fraction and scale by the duty cycle — a *colocated* scenario under this
/// policy would not model the interleaving and is not meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Elfen {
    /// The current interleaving schedule.
    pub schedule: ElfenSchedule,
}

impl Elfen {
    /// Creates the policy at a given duty cycle (paper-default 100 µs quanta).
    pub fn new(duty_cycle: DutyCycle) -> Elfen {
        Elfen { schedule: ElfenSchedule::new(duty_cycle) }
    }

    /// The single-thread performance fraction currently delivered to the
    /// latency-sensitive workload.
    pub fn delivered_performance(&self) -> f64 {
        self.schedule.delivered_performance()
    }
}

impl CanonicalKey for Elfen {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("policy/elfen")
            .f64(self.schedule.duty_cycle.fraction())
            .f64(self.schedule.quantum_us);
    }
}

impl ColocationPolicy for Elfen {
    fn name(&self) -> String {
        format!("Elfen borrowing at {:.0}% duty cycle", self.delivered_performance() * 100.0)
    }

    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup {
        // The lending partner is non-contentious by construction, so the
        // core the service sees is a private full core; the duty cycle is
        // applied above the core, at the scheduler level.
        PrivateCore::full().setup_for(cfg, topology)
    }

    fn supports_colocation(&self) -> bool {
        // The borrower is interleaved by the scheduler, not co-resident on
        // the SMT core; a colocated cycle-level run would model nothing.
        false
    }

    fn on_sample(&mut self, obs: &QosObservation) -> PolicyAction {
        const STEP: f64 = 0.05;
        let ratio = if obs.qos_target_ms > 0.0 {
            obs.tail_latency_ms / obs.qos_target_ms
        } else {
            f64::INFINITY
        };
        let current = self.schedule.duty_cycle.fraction();
        if ratio > 0.9 && current < 1.0 {
            // Pressure: claim the core back one grid step at a time.
            self.schedule.duty_cycle = DutyCycle::new((current + STEP).min(1.0));
            PolicyAction::Reconfigure
        } else if ratio < 0.6 && current > STEP * 2.0 {
            // Ample headroom: lend more of the core to the borrower.
            self.schedule.duty_cycle = DutyCycle::new(current - STEP);
            PolicyAction::Reconfigure
        } else {
            PolicyAction::Keep
        }
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_bounds() {
        assert_eq!(DutyCycle::new(0.25).fraction(), 0.25);
        assert_eq!(DutyCycle::new(1.0).fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_cycle_rejected() {
        let _ = DutyCycle::new(0.0);
    }

    #[test]
    fn delivered_performance_equals_duty_cycle() {
        let s = ElfenSchedule::new(DutyCycle::new(0.3));
        assert!((s.delivered_performance() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn period_shrinks_with_larger_duty_cycle() {
        let small = ElfenSchedule::new(DutyCycle::new(0.1));
        let large = ElfenSchedule::new(DutyCycle::new(0.9));
        assert!(small.period_us() > large.period_us());
    }

    #[test]
    fn granularity_check_against_targets() {
        let s = ElfenSchedule::new(DutyCycle::new(0.2));
        // 100 us quanta -> 500 us period: fine for a 100 ms target, not for a 20 ms one? It is: 20 ms / 100 = 200 us... period 500us is too coarse.
        assert!(s.is_fine_grained_for(100.0));
        assert!(!s.is_fine_grained_for(0.04));
    }

    #[test]
    fn elfen_policy_runs_on_a_contention_free_core() {
        let cfg = CoreConfig::default();
        let policy = Elfen::new(DutyCycle::new(0.5));
        assert_eq!(policy.setup(&cfg), PrivateCore::full().setup(&cfg));
        assert!((policy.delivered_performance() - 0.5).abs() < 1e-12);
        assert!(!policy.supports_colocation());
    }

    #[test]
    #[should_panic(expected = "does not model colocation")]
    fn colocated_elfen_scenario_is_rejected() {
        // The time-sharing happens at the scheduler level; a colocated
        // cycle-level run would return plausible-looking numbers that model
        // no real system, so the scenario refuses to run one.
        use cpu_sim::{Scenario, SimLength};
        use workloads::profile_by_name;

        let _ = Scenario::colocate(
            profile_by_name("web-search").unwrap(),
            profile_by_name("zeusmp").unwrap(),
        )
        .policy(Elfen::new(DutyCycle::new(0.5)))
        .length(SimLength::quick())
        .run();
    }

    #[test]
    fn elfen_duty_cycle_tracks_qos_headroom() {
        let mut policy = Elfen::new(DutyCycle::new(0.5));
        // Ample headroom: lend the core away, one 5% step per sample.
        let slack = QosObservation::tail_latency(20.0, 100.0, 0.2);
        assert_eq!(policy.on_sample(&slack), PolicyAction::Reconfigure);
        assert!((policy.delivered_performance() - 0.45).abs() < 1e-9);
        // Pressure: claim it back.
        let pressure = QosObservation::tail_latency(95.0, 100.0, 0.9);
        assert_eq!(policy.on_sample(&pressure), PolicyAction::Reconfigure);
        assert!((policy.delivered_performance() - 0.5).abs() < 1e-9);
        // Middling observations leave the schedule alone.
        let mid = QosObservation::tail_latency(75.0, 100.0, 0.6);
        assert_eq!(policy.on_sample(&mid), PolicyAction::Keep);
        // The duty cycle never walks past 100% or below the grid floor.
        let mut saturating = Elfen::new(DutyCycle::new(1.0));
        assert_eq!(saturating.on_sample(&pressure), PolicyAction::Keep);
        let mut floor = Elfen::new(DutyCycle::new(0.1));
        assert_eq!(floor.on_sample(&slack), PolicyAction::Keep);
    }

    #[test]
    fn grid_covers_5_to_100_percent() {
        let grid = duty_cycle_grid();
        assert_eq!(grid.len(), 20);
        assert!((grid[0].fraction() - 0.05).abs() < 1e-12);
        assert!((grid[19].fraction() - 1.0).abs() < 1e-12);
    }
}
