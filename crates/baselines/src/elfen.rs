//! Elfen-style fine-grain time interleaving.
//!
//! Section II of the paper measures QoS slack by modulating the fraction of
//! time the latency-sensitive workload runs on the core: a non-contentious
//! preemptive co-runner is interleaved at sub-millisecond granularity, so the
//! service receives a configurable duty cycle of the core. This module
//! provides that schedule abstraction: a duty cycle, a time quantum, and the
//! mapping from duty cycle to delivered performance fraction (which is what
//! the `qos` crate's slack analysis consumes).

use serde::{Deserialize, Serialize};

/// Fraction of time the latency-sensitive thread owns the core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DutyCycle(f64);

impl DutyCycle {
    /// Creates a duty cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `(0, 1]`.
    pub fn new(fraction: f64) -> DutyCycle {
        assert!(fraction > 0.0 && fraction <= 1.0, "duty cycle must be in (0, 1], got {fraction}");
        DutyCycle(fraction)
    }

    /// The fraction as a float.
    pub fn fraction(self) -> f64 {
        self.0
    }
}

/// An Elfen-style interleaving schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElfenSchedule {
    /// Fraction of time given to the latency-sensitive thread.
    pub duty_cycle: DutyCycle,
    /// Scheduling quantum in microseconds (sub-millisecond per the paper).
    pub quantum_us: f64,
}

impl ElfenSchedule {
    /// Creates a schedule with the paper's sub-millisecond granularity
    /// (100 µs quanta).
    pub fn new(duty_cycle: DutyCycle) -> ElfenSchedule {
        ElfenSchedule { duty_cycle, quantum_us: 100.0 }
    }

    /// The single-thread performance fraction delivered to the
    /// latency-sensitive workload. With a non-contentious co-runner and a
    /// quantum far below the latency target, delivered performance equals the
    /// duty cycle.
    pub fn delivered_performance(&self) -> f64 {
        self.duty_cycle.fraction()
    }

    /// Length of one on/off period in microseconds.
    pub fn period_us(&self) -> f64 {
        self.quantum_us / self.duty_cycle.fraction()
    }

    /// Whether the schedule's granularity is safely below a latency target
    /// (expressed in milliseconds): the paper requires the interleaving
    /// period to be orders of magnitude below the tail-latency target.
    pub fn is_fine_grained_for(&self, qos_target_ms: f64) -> bool {
        self.period_us() < qos_target_ms * 1000.0 / 100.0
    }
}

/// The duty-cycle grid used for the Section II slack measurement: 5% steps.
pub fn duty_cycle_grid() -> Vec<DutyCycle> {
    (1..=20).map(|i| DutyCycle::new(i as f64 * 0.05)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_bounds() {
        assert_eq!(DutyCycle::new(0.25).fraction(), 0.25);
        assert_eq!(DutyCycle::new(1.0).fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn zero_duty_cycle_rejected() {
        let _ = DutyCycle::new(0.0);
    }

    #[test]
    fn delivered_performance_equals_duty_cycle() {
        let s = ElfenSchedule::new(DutyCycle::new(0.3));
        assert!((s.delivered_performance() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn period_shrinks_with_larger_duty_cycle() {
        let small = ElfenSchedule::new(DutyCycle::new(0.1));
        let large = ElfenSchedule::new(DutyCycle::new(0.9));
        assert!(small.period_us() > large.period_us());
    }

    #[test]
    fn granularity_check_against_targets() {
        let s = ElfenSchedule::new(DutyCycle::new(0.2));
        // 100 us quanta -> 500 us period: fine for a 100 ms target, not for a 20 ms one? It is: 20 ms / 100 = 200 us... period 500us is too coarse.
        assert!(s.is_fine_grained_for(100.0));
        assert!(!s.is_fine_grained_for(0.04));
    }

    #[test]
    fn grid_covers_5_to_100_percent() {
        let grid = duty_cycle_grid();
        assert_eq!(grid.len(), 20);
        assert!((grid[0].fraction() - 0.05).abs() < 1e-12);
        assert!((grid[19].fraction() - 1.0).abs() < 1e-12);
    }
}
