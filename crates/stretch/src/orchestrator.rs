//! Closed-loop orchestration: load trace → QoS measurement → policy
//! decision → mode change → throughput accounting.
//!
//! This is the machinery behind the §VI-D case studies and the
//! `mode_controller` example: a server's diurnal load is replayed interval by
//! interval; at each interval the queueing model produces the tail latency
//! the service would observe given the single-thread performance the current
//! mode leaves it, the [`ClosedLoopStretch`] policy reacts through the
//! shared [`cpu_sim::ColocationPolicy`] interface, and the batch co-runner's
//! throughput is accumulated according to the engaged mode.
//!
//! The per-mode performance numbers (how much single-thread performance the
//! latency-sensitive thread retains, and how much faster the batch thread
//! runs than under the baseline partitioning) come from a
//! [`PerformanceTable`]: either the paper's headline numbers
//! ([`PerformanceTable::paper_defaults`]) or cycle-level measurements taken
//! through the same policy trait ([`PerformanceTable::measured`], which runs
//! [`cpu_sim::Scenario`]s under [`PinnedStretch`] policies).

use crate::config::{StretchConfig, StretchMode};
use crate::monitor::MonitorConfig;
use crate::policy::{ClosedLoopStretch, PinnedStretch};
use cpu_sim::{ColocationPolicy, PolicyAction, QosObservation, Scenario, SimLength};
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder, ThreadId};
use sim_qos::{ArrivalProcess, ServerSim, ServiceSpec, SimParams};

/// Performance of one Stretch mode relative to a stand-alone full core (for
/// the latency-sensitive thread) and to the baseline SMT partitioning (for
/// the batch thread).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModePerformance {
    /// Fraction of full-core single-thread performance retained by the
    /// latency-sensitive thread under this mode (colocation included).
    pub ls_performance: f64,
    /// Batch thread speedup over the equal-partition baseline (1.0 = no
    /// change, 1.13 = 13% faster).
    pub batch_speedup: f64,
}

impl ModePerformance {
    /// The paper's headline numbers for the three modes with the recommended
    /// skews (Figure 9 and §VI-A): baseline colocation costs the LS thread
    /// about 14%; B-mode 56-136 costs a further ~7% while buying the batch
    /// thread ~13%; Q-mode 136-56 restores ~7% of LS performance while
    /// costing the batch thread ~21%.
    pub fn paper_defaults(mode: StretchMode) -> ModePerformance {
        match mode {
            StretchMode::Baseline => ModePerformance { ls_performance: 0.86, batch_speedup: 1.0 },
            StretchMode::BatchBoost(_) => {
                ModePerformance { ls_performance: 0.80, batch_speedup: 1.13 }
            }
            StretchMode::QosBoost(_) => {
                ModePerformance { ls_performance: 0.93, batch_speedup: 0.79 }
            }
        }
    }
}

impl CanonicalKey for ModePerformance {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.f64(self.ls_performance).f64(self.batch_speedup);
    }
}

/// Per-mode performance table used by the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerformanceTable {
    /// Baseline (equal partitioning) performance.
    pub baseline: ModePerformance,
    /// B-mode performance.
    pub b_mode: ModePerformance,
    /// Q-mode performance.
    pub q_mode: ModePerformance,
}

impl PerformanceTable {
    /// Table populated with the paper's headline numbers.
    pub fn paper_defaults() -> PerformanceTable {
        PerformanceTable {
            baseline: ModePerformance::paper_defaults(StretchMode::Baseline),
            b_mode: ModePerformance::paper_defaults(StretchMode::BatchBoost(
                crate::config::RobSkew::recommended_b_mode(),
            )),
            q_mode: ModePerformance::paper_defaults(StretchMode::QosBoost(
                crate::config::RobSkew::recommended_q_mode(),
            )),
        }
    }

    /// Looks up the performance of a mode.
    pub fn for_mode(&self, mode: StretchMode) -> ModePerformance {
        match mode {
            StretchMode::Baseline => self.baseline,
            StretchMode::BatchBoost(_) => self.b_mode,
            StretchMode::QosBoost(_) => self.q_mode,
        }
    }

    /// Measures the table with the cycle-level core model, through the same
    /// [`cpu_sim::ColocationPolicy`] interface the figures use: one
    /// stand-alone reference run plus one colocation per mode, each a
    /// [`Scenario`] under a [`PinnedStretch`] policy.
    ///
    /// `ls` / `batch` name workloads from the `workloads` registry. The
    /// latency-sensitive thread's retained performance is its colocated UIPC
    /// over its stand-alone full-core UIPC; the batch speedup is relative to
    /// the equal-partition baseline colocation, exactly as the paper defines
    /// the two axes.
    ///
    /// # Panics
    ///
    /// Panics if either workload name is unknown.
    pub fn measured(
        core: &sim_model::CoreConfig,
        ls: &str,
        batch: &str,
        stretch: StretchConfig,
        length: SimLength,
        seed: u64,
    ) -> PerformanceTable {
        let profile = |name: &str| {
            workloads::profile_by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"))
        };
        let pair = |mode: StretchMode| {
            let r = Scenario::colocate(profile(ls), profile(batch))
                .config(*core)
                .policy(PinnedStretch::new(mode))
                .length(length)
                .seed(seed)
                .run();
            (r.expect_thread(ThreadId::T0).uipc, r.expect_thread(ThreadId::T1).uipc)
        };
        let standalone =
            Scenario::standalone(profile(ls)).config(*core).length(length).seed(seed).run_thread0();

        let (base_ls, base_batch) = pair(StretchMode::Baseline);
        let mode_perf = |(ls_uipc, batch_uipc): (f64, f64)| ModePerformance {
            ls_performance: ls_uipc / standalone.uipc,
            batch_speedup: batch_uipc / base_batch,
        };
        PerformanceTable {
            baseline: mode_perf((base_ls, base_batch)),
            b_mode: mode_perf(pair(stretch.low_load_mode())),
            q_mode: mode_perf(pair(stretch.high_load_mode())),
        }
    }
}

impl CanonicalKey for PerformanceTable {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.field(&self.baseline).field(&self.b_mode).field(&self.q_mode);
    }
}

/// Result of one control interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalReport {
    /// Load during the interval (fraction of peak).
    pub load: f64,
    /// Mode engaged for the interval.
    pub mode: StretchMode,
    /// Tail latency observed (milliseconds).
    pub tail_latency_ms: f64,
    /// Whether the QoS target was violated.
    pub qos_violated: bool,
    /// Batch throughput during the interval relative to the baseline
    /// partitioning (1.0 = baseline).
    pub batch_throughput: f64,
}

/// Result of a full load-trace replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayReport {
    /// Per-interval details.
    pub intervals: Vec<IntervalReport>,
    /// Mean batch throughput relative to the baseline over the whole trace.
    pub average_batch_throughput: f64,
    /// Number of intervals with a QoS violation.
    pub violations: usize,
    /// Number of intervals in which B-mode was engaged.
    pub b_mode_intervals: usize,
}

impl DayReport {
    /// Batch throughput gain over the baseline, e.g. 0.05 for +5%.
    pub fn batch_gain(&self) -> f64 {
        self.average_batch_throughput - 1.0
    }
}

/// The closed-loop orchestrator: a [`ClosedLoopStretch`] policy driven by
/// the request-level queueing model.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    service: ServiceSpec,
    policy: ClosedLoopStretch,
    table: PerformanceTable,
    params: SimParams,
    peak_rps: f64,
}

impl Orchestrator {
    /// Builds an orchestrator for one latency-sensitive service.
    ///
    /// The peak sustainable load is calibrated once, at full single-thread
    /// performance, exactly as in the paper's methodology.
    pub fn new(
        service: ServiceSpec,
        stretch: StretchConfig,
        monitor_cfg: MonitorConfig,
        table: PerformanceTable,
        params: SimParams,
    ) -> Orchestrator {
        let sim = ServerSim::new(service.clone(), ArrivalProcess::bursty(100.0));
        let peak_rps = sim.find_peak_load_rps(params);
        Orchestrator {
            service,
            policy: ClosedLoopStretch::new(stretch, monitor_cfg),
            table,
            params,
            peak_rps,
        }
    }

    /// The policy's currently engaged mode.
    pub fn mode(&self) -> StretchMode {
        self.policy.mode()
    }

    /// The closed-loop policy being orchestrated.
    pub fn policy(&self) -> &ClosedLoopStretch {
        &self.policy
    }

    /// Replays a load trace (one entry per control interval, each a fraction
    /// of peak load) and reports what happened.
    pub fn run_trace(&mut self, loads: &[f64]) -> DayReport {
        let sim = ServerSim::new(self.service.clone(), ArrivalProcess::bursty(100.0));
        let mut intervals = Vec::with_capacity(loads.len());
        let mut throughput_sum = 0.0;
        let mut violations = 0;
        let mut b_intervals = 0;
        for (i, &load) in loads.iter().enumerate() {
            let mode = self.policy.mode();
            let perf = self.table.for_mode(mode);
            let load = load.clamp(0.02, 1.0);
            let params = SimParams { seed: self.params.seed.wrapping_add(i as u64), ..self.params }
                .with_performance(perf.ls_performance.clamp(0.05, 1.0));
            let summary = sim.run_at_load(load, self.peak_rps, params);
            let tail = summary.tail(self.service.tail_metric);
            let violated = tail > self.service.qos_target_ms;
            if violated {
                violations += 1;
            }
            if mode.is_batch_boost() {
                b_intervals += 1;
            }
            throughput_sum += perf.batch_speedup;
            intervals.push(IntervalReport {
                load,
                mode,
                tail_latency_ms: tail,
                qos_violated: violated,
                batch_throughput: perf.batch_speedup,
            });
            // Feed the observation to the policy through the shared trait;
            // the decision applies from the next interval (control acts on
            // measured history).
            let obs = QosObservation::tail_latency(tail, self.service.qos_target_ms, load);
            let _action: PolicyAction = self.policy.on_sample(&obs);
        }
        DayReport {
            average_batch_throughput: if loads.is_empty() {
                1.0
            } else {
                throughput_sum / loads.len() as f64
            },
            violations,
            b_mode_intervals: b_intervals,
            intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orchestrator() -> Orchestrator {
        Orchestrator::new(
            ServiceSpec::web_search(),
            StretchConfig::recommended(),
            MonitorConfig { engage_after: 2, ..MonitorConfig::default() },
            PerformanceTable::paper_defaults(),
            SimParams::quick(5),
        )
    }

    #[test]
    fn low_load_day_engages_b_mode_and_gains_throughput() {
        let mut orch = orchestrator();
        let loads = vec![0.2; 24];
        let report = orch.run_trace(&loads);
        assert!(report.b_mode_intervals > 12, "B-mode should dominate a low-load day");
        assert!(report.batch_gain() > 0.05, "batch gain {:.3}", report.batch_gain());
        assert_eq!(report.violations, 0, "no QoS violations expected at 20% load");
    }

    #[test]
    fn high_load_day_stays_out_of_b_mode() {
        let mut orch = orchestrator();
        let loads = vec![0.95; 12];
        let report = orch.run_trace(&loads);
        assert!(
            report.b_mode_intervals <= 2,
            "B-mode must not be engaged at sustained high load (got {})",
            report.b_mode_intervals
        );
    }

    #[test]
    fn diurnal_day_mixes_modes_without_violating_qos_at_low_load() {
        let mut orch = orchestrator();
        // Night: low load; day: high load; evening: medium.
        let mut loads = vec![0.15; 8];
        loads.extend(vec![0.9; 8]);
        loads.extend(vec![0.5; 8]);
        let report = orch.run_trace(&loads);
        assert_eq!(report.intervals.len(), 24);
        assert!(report.b_mode_intervals >= 6, "night hours should run B-mode");
        // Violations, if any, should be confined to the high-load block.
        for iv in &report.intervals[..6] {
            assert!(!iv.qos_violated, "low-load interval violated QoS: {iv:?}");
        }
        assert!(report.average_batch_throughput >= 1.0);
    }

    #[test]
    fn performance_table_lookup() {
        let t = PerformanceTable::paper_defaults();
        assert!(t.for_mode(StretchMode::Baseline).batch_speedup == 1.0);
        assert!(
            t.for_mode(StretchMode::BatchBoost(crate::config::RobSkew::recommended_b_mode()))
                .batch_speedup
                > 1.0
        );
        assert!(
            t.for_mode(StretchMode::QosBoost(crate::config::RobSkew::recommended_q_mode()))
                .ls_performance
                > t.baseline.ls_performance
        );
    }

    #[test]
    fn empty_trace_is_neutral() {
        let mut orch = orchestrator();
        let report = orch.run_trace(&[]);
        assert_eq!(report.intervals.len(), 0);
        assert_eq!(report.average_batch_throughput, 1.0);
    }

    #[test]
    fn measured_table_agrees_qualitatively_with_the_paper() {
        // Cycle-level measurement through the policy trait: B-mode must buy
        // batch throughput at some LS cost, Q-mode the reverse, and the
        // baseline batch speedup is 1.0 by construction.
        let table = PerformanceTable::measured(
            &sim_model::CoreConfig::default(),
            "web-search",
            "zeusmp",
            StretchConfig::recommended(),
            SimLength::quick(),
            42,
        );
        assert!((table.baseline.batch_speedup - 1.0).abs() < 1e-12);
        assert!(table.baseline.ls_performance < 1.0, "colocation must cost the LS thread");
        assert!(
            table.b_mode.batch_speedup > table.q_mode.batch_speedup,
            "B-mode must out-throughput Q-mode for the batch thread ({:.3} vs {:.3})",
            table.b_mode.batch_speedup,
            table.q_mode.batch_speedup
        );
        assert!(
            table.q_mode.ls_performance >= table.b_mode.ls_performance,
            "Q-mode must retain at least B-mode's LS performance"
        );

        // A measured table drives the orchestrator exactly like the
        // analytical one.
        let mut orch = Orchestrator::new(
            ServiceSpec::web_search(),
            StretchConfig::recommended(),
            MonitorConfig { engage_after: 2, ..MonitorConfig::default() },
            table,
            SimParams::quick(5),
        );
        let report = orch.run_trace(&[0.2; 6]);
        assert_eq!(report.intervals.len(), 6);
    }
}
