//! **Stretch** — software-controlled asymmetric ROB/LSQ partitioning for SMT
//! cores (Margaritov et al., HPCA 2019).
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! Stretch exploits the performance slack of latency-sensitive services
//! running below peak load: system software can shift reorder-buffer (and,
//! proportionally, load/store-queue) capacity from the latency-sensitive
//! hardware thread to a co-running batch thread, boosting batch throughput
//! without violating QoS targets. The mechanism is a handful of ROB
//! partitioning configurations provisioned at design time plus an
//! architecturally exposed control register; the policy is a CPI²-style
//! software monitor driven by a QoS metric (tail latency or queue length).
//!
//! To the rest of the repository, Stretch is just another
//! [`cpu_sim::ColocationPolicy`] — the same interface every baseline
//! implements — and runs through the same [`cpu_sim::Scenario`] entry point:
//!
//! * [`policy`] — [`PinnedStretch`] (one mode for a whole run; what the
//!   evaluation figures sweep) and [`ClosedLoopStretch`] (the §IV-C control
//!   loop packaged as a policy: QoS telemetry in via `on_sample`, core
//!   reconfigurations out).
//! * [`config`] — ROB skews ([`RobSkew`]), the provisioned configuration set
//!   ([`StretchConfig`]) and the runtime mode ([`StretchMode`]:
//!   Baseline / B-mode / Q-mode), plus the mapping onto the core's
//!   partition limit registers.
//! * [`control`] — the architecturally exposed control register
//!   ([`ControlRegister`], the S/B/Q bits of §IV-C) and its application to a
//!   simulated core (mode change + pipeline flush).
//! * [`monitor`] — the software monitor ([`SoftwareMonitor`]): sliding-window
//!   QoS tracking, hysteresis, B-/Q-mode engagement and the co-runner
//!   throttling fallback. [`ClosedLoopStretch`] wraps it behind the policy
//!   trait.
//! * [`orchestrator`] — a closed-loop driver that replays a load trace
//!   against the queueing model, lets the policy pick modes and accounts
//!   for batch throughput — the machinery behind the §VI-D case studies. Its
//!   per-mode performance table can hold the paper's headline numbers or
//!   cycle-level measurements taken through the same trait
//!   ([`orchestrator::PerformanceTable::measured`]).
//!
//! # Example
//!
//! ```
//! use cpu_sim::ColocationPolicy;
//! use stretch::{PinnedStretch, RobSkew, StretchMode};
//! use sim_model::{CoreConfig, ThreadId};
//!
//! let cfg = CoreConfig::default();
//! let policy = PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode()));
//! let setup = policy.setup(&cfg);
//! assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T0), 56);
//! assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T1), 136);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod monitor;
pub mod orchestrator;
pub mod policy;
pub mod selection;

pub use config::{RobSkew, StretchConfig, StretchMode};
pub use control::ControlRegister;
pub use monitor::{MonitorAction, MonitorConfig, QosPolicy, SoftwareMonitor};
pub use orchestrator::{
    DayReport, IntervalReport, ModePerformance, Orchestrator, PerformanceTable,
};
pub use policy::{ClosedLoopStretch, PinnedStretch};
pub use selection::{LoadBand, LoadIndexedSelector};
