//! **Stretch** — software-controlled asymmetric ROB/LSQ partitioning for SMT
//! cores (Margaritov et al., HPCA 2019).
//!
//! Stretch exploits the performance slack of latency-sensitive services
//! running below peak load: system software can shift reorder-buffer (and,
//! proportionally, load/store-queue) capacity from the latency-sensitive
//! hardware thread to a co-running batch thread, boosting batch throughput
//! without violating QoS targets. The mechanism is a handful of ROB
//! partitioning configurations provisioned at design time plus an
//! architecturally exposed control register; the policy is a CPI²-style
//! software monitor driven by a QoS metric (tail latency or queue length).
//!
//! This crate implements all of it:
//!
//! * [`config`] — ROB skews ([`RobSkew`]), the provisioned configuration set
//!   ([`StretchConfig`]) and the runtime mode ([`StretchMode`]:
//!   Baseline / B-mode / Q-mode), plus the mapping onto the core's
//!   partition limit registers.
//! * [`control`] — the architecturally exposed control register
//!   ([`ControlRegister`], the S/B/Q bits of §IV-C) and its application to a
//!   simulated core (mode change + pipeline flush).
//! * [`monitor`] — the software monitor ([`SoftwareMonitor`]): sliding-window
//!   QoS tracking, hysteresis, B-/Q-mode engagement and the co-runner
//!   throttling fallback.
//! * [`orchestrator`] — a closed-loop driver that replays a load trace
//!   against the queueing model, lets the monitor pick modes and accounts
//!   for batch throughput — the machinery behind the §VI-D case studies.
//!
//! # Example
//!
//! ```
//! use stretch::{ControlRegister, RobSkew, StretchConfig, StretchMode};
//! use sim_model::{CoreConfig, ThreadId};
//!
//! let cfg = CoreConfig::default();
//! let stretch = StretchConfig::recommended();
//! let mut reg = ControlRegister::new();
//! reg.engage_b_mode();
//! let mode = reg.mode(&stretch);
//! assert_eq!(mode, StretchMode::BatchBoost(RobSkew::new(56, 136)));
//! let policy = mode.partition_policy(&cfg, ThreadId::T0);
//! assert_eq!(policy.rob_limit(&cfg, ThreadId::T1), 136);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod monitor;
pub mod orchestrator;
pub mod selection;

pub use config::{RobSkew, StretchConfig, StretchMode};
pub use control::ControlRegister;
pub use monitor::{MonitorAction, MonitorConfig, QosPolicy, SoftwareMonitor};
pub use orchestrator::{DayReport, IntervalReport, ModePerformance, Orchestrator};
pub use selection::{LoadBand, LoadIndexedSelector};
