//! Multi-configuration selection (§IV-D, "Number of configurations").
//!
//! The paper notes that more than one B-mode (and Q-mode) configuration can
//! be provisioned, differing in how much ROB capacity is shifted, at the cost
//! of slightly more sophisticated software control "to choose the appropriate
//! configuration as a function of load". This module implements that control:
//! a [`LoadIndexedSelector`] maps the measured service load (as a fraction of
//! peak) to the most aggressive configuration that is still safe at that
//! load, using the slack curve of Figure 2 as the safety criterion.

use crate::config::{RobSkew, StretchMode};
use serde::{Deserialize, Serialize};
use sim_model::CoreConfig;

/// One provisioned configuration together with the highest load at which it
/// may be engaged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadBand {
    /// Highest load (fraction of peak, exclusive) at which this skew is safe.
    pub max_load: f64,
    /// The ROB skew to engage below that load.
    pub skew: RobSkew,
}

/// Selects among several provisioned B-mode configurations by load.
///
/// Bands are kept sorted by `max_load`; at a given load the selector picks
/// the most aggressive (most batch-favouring) skew whose band covers it, or
/// falls back to the baseline when none does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadIndexedSelector {
    bands: Vec<LoadBand>,
    /// Load at or above which the Q-mode (if provisioned) is engaged.
    q_mode_above: f64,
    q_mode: Option<RobSkew>,
}

impl LoadIndexedSelector {
    /// Creates a selector from a set of bands.
    ///
    /// # Panics
    ///
    /// Panics if `bands` is empty, any band has a non-positive `max_load`, or
    /// any skew is invalid for the given core.
    pub fn new(
        cfg: &CoreConfig,
        mut bands: Vec<LoadBand>,
        q_mode: Option<RobSkew>,
        q_mode_above: f64,
    ) -> LoadIndexedSelector {
        assert!(!bands.is_empty(), "need at least one load band");
        for band in &bands {
            assert!(
                band.max_load > 0.0 && band.max_load <= 1.0,
                "band max_load {} out of range",
                band.max_load
            );
            band.skew.validate(cfg).unwrap_or_else(|e| panic!("{e}"));
        }
        if let Some(q) = q_mode {
            q.validate(cfg).unwrap_or_else(|e| panic!("{e}"));
        }
        bands.sort_by(|a, b| a.max_load.partial_cmp(&b.max_load).expect("no NaN loads"));
        LoadIndexedSelector { bands, q_mode, q_mode_above }
    }

    /// The default three-band provisioning used in the reproduction's
    /// ablation study: the deeper the slack, the more capacity is shifted.
    ///
    /// * below 30 % load → 32-160 (most aggressive),
    /// * below 60 % load → 48-144,
    /// * below 85 % load → 56-136 (the paper's headline configuration),
    /// * at or above 90 % load → Q-mode 136-56.
    pub fn recommended(cfg: &CoreConfig) -> LoadIndexedSelector {
        LoadIndexedSelector::new(
            cfg,
            vec![
                LoadBand { max_load: 0.30, skew: RobSkew::new(32, 160) },
                LoadBand { max_load: 0.60, skew: RobSkew::new(48, 144) },
                LoadBand { max_load: 0.85, skew: RobSkew::recommended_b_mode() },
            ],
            Some(RobSkew::recommended_q_mode()),
            0.90,
        )
    }

    /// Number of provisioned B-mode bands.
    pub fn bands(&self) -> usize {
        self.bands.len()
    }

    /// Picks the mode for a measured load (fraction of peak).
    ///
    /// # Panics
    ///
    /// Panics if `load` is negative or not finite.
    pub fn mode_for_load(&self, load: f64) -> StretchMode {
        assert!(load.is_finite() && load >= 0.0, "load must be a non-negative fraction");
        if load >= self.q_mode_above {
            if let Some(q) = self.q_mode {
                return StretchMode::QosBoost(q);
            }
        }
        for band in &self.bands {
            if load < band.max_load {
                return StretchMode::BatchBoost(band.skew);
            }
        }
        StretchMode::Baseline
    }

    /// Replays a load trace and returns the mode chosen for every entry
    /// (useful for the ablation bench comparing single- vs multi-configuration
    /// provisioning).
    pub fn modes_for_trace(&self, loads: &[f64]) -> Vec<StretchMode> {
        loads.iter().map(|&l| self.mode_for_load(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector() -> LoadIndexedSelector {
        LoadIndexedSelector::recommended(&CoreConfig::default())
    }

    #[test]
    fn deeper_slack_selects_more_aggressive_skews() {
        let s = selector();
        assert_eq!(s.mode_for_load(0.10), StretchMode::BatchBoost(RobSkew::new(32, 160)));
        assert_eq!(s.mode_for_load(0.45), StretchMode::BatchBoost(RobSkew::new(48, 144)));
        assert_eq!(s.mode_for_load(0.70), StretchMode::BatchBoost(RobSkew::new(56, 136)));
    }

    #[test]
    fn high_load_selects_baseline_then_q_mode() {
        let s = selector();
        assert_eq!(s.mode_for_load(0.87), StretchMode::Baseline);
        assert_eq!(s.mode_for_load(0.95), StretchMode::QosBoost(RobSkew::new(136, 56)));
        assert_eq!(s.mode_for_load(1.0), StretchMode::QosBoost(RobSkew::new(136, 56)));
    }

    #[test]
    fn band_boundaries_are_exclusive() {
        let s = selector();
        assert_eq!(s.mode_for_load(0.30), StretchMode::BatchBoost(RobSkew::new(48, 144)));
        assert_eq!(s.mode_for_load(0.85), StretchMode::Baseline);
    }

    #[test]
    fn without_q_mode_high_load_is_baseline() {
        let cfg = CoreConfig::default();
        let s = LoadIndexedSelector::new(
            &cfg,
            vec![LoadBand { max_load: 0.5, skew: RobSkew::recommended_b_mode() }],
            None,
            0.9,
        );
        assert_eq!(s.mode_for_load(0.95), StretchMode::Baseline);
        assert_eq!(s.bands(), 1);
    }

    #[test]
    fn bands_are_sorted_regardless_of_input_order() {
        let cfg = CoreConfig::default();
        let s = LoadIndexedSelector::new(
            &cfg,
            vec![
                LoadBand { max_load: 0.8, skew: RobSkew::new(56, 136) },
                LoadBand { max_load: 0.3, skew: RobSkew::new(32, 160) },
            ],
            None,
            0.95,
        );
        assert_eq!(s.mode_for_load(0.1), StretchMode::BatchBoost(RobSkew::new(32, 160)));
        assert_eq!(s.mode_for_load(0.5), StretchMode::BatchBoost(RobSkew::new(56, 136)));
    }

    #[test]
    fn trace_replay_matches_pointwise_selection() {
        let s = selector();
        let loads = [0.1, 0.5, 0.7, 0.95];
        let modes = s.modes_for_trace(&loads);
        for (l, m) in loads.iter().zip(&modes) {
            assert_eq!(*m, s.mode_for_load(*l));
        }
    }

    #[test]
    #[should_panic(expected = "at least one load band")]
    fn empty_bands_rejected() {
        let _ = LoadIndexedSelector::new(&CoreConfig::default(), vec![], None, 0.9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_band_rejected() {
        let _ = LoadIndexedSelector::new(
            &CoreConfig::default(),
            vec![LoadBand { max_load: 1.5, skew: RobSkew::recommended_b_mode() }],
            None,
            0.9,
        );
    }
}
