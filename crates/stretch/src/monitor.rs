//! The software monitor (§IV-C): an extension of Google's CPI² framework
//! that tracks a QoS metric and drives the Stretch control register.
//!
//! The monitor periodically samples a QoS signal — tail latency relative to
//! the target, or queue length — and decides which mode to engage:
//!
//! * ample slack (metric well below the target) → engage **B-mode**;
//! * metric approaching the target → disengage B-mode (back to the baseline
//!   or, if provisioned, **Q-mode**);
//! * persistent violations despite that → take the CPI²-style corrective
//!   action and **throttle the co-runner**.
//!
//! Hysteresis (distinct engage/disengage thresholds plus a required number
//! of consecutive observations before engaging) keeps mode changes — and the
//! pipeline flushes they imply — infrequent, matching the paper's
//! observation that load swings are slow and cyclical.

use crate::config::{StretchConfig, StretchMode};
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder};

/// Which QoS signal the monitor consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QosPolicy {
    /// Drive decisions from measured tail latency versus the QoS target
    /// (the paper's primary choice: "we use tail latency as a representative
    /// and easily-available QoS metric").
    TailLatency {
        /// Engage B-mode when tail latency is below this fraction of the
        /// target (e.g. 0.6 → engage when the tail is under 60% of target).
        engage_below: f64,
        /// Disengage B-mode when tail latency exceeds this fraction of the
        /// target.
        disengage_above: f64,
    },
    /// Drive decisions from instantaneous queue length (the Rubik-style
    /// alternative the paper sketches): short queues mean slack, long queues
    /// mean the service needs full performance.
    QueueLength {
        /// Engage B-mode when the queue is at or below this depth.
        engage_at_or_below: usize,
        /// Disengage (and possibly engage Q-mode) above this depth.
        disengage_above: usize,
    },
}

impl QosPolicy {
    /// The default tail-latency policy: engage below 60% of target, disengage
    /// above 90%.
    pub fn default_tail_latency() -> QosPolicy {
        QosPolicy::TailLatency { engage_below: 0.6, disengage_above: 0.9 }
    }

    /// The default queue-length policy.
    pub fn default_queue_length() -> QosPolicy {
        QosPolicy::QueueLength { engage_at_or_below: 1, disengage_above: 4 }
    }

    /// Validates threshold ordering.
    ///
    /// # Errors
    ///
    /// Returns an error if the engage threshold is not below the disengage
    /// threshold.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            QosPolicy::TailLatency { engage_below, disengage_above } => {
                if !(*engage_below > 0.0
                    && engage_below < disengage_above
                    && *disengage_above <= 1.5)
                {
                    return Err(format!(
                        "tail-latency thresholds must satisfy 0 < engage ({engage_below}) < disengage ({disengage_above}) <= 1.5"
                    ));
                }
            }
            QosPolicy::QueueLength { engage_at_or_below, disengage_above } => {
                if engage_at_or_below >= disengage_above {
                    return Err(format!(
                        "queue-length thresholds must satisfy engage ({engage_at_or_below}) < disengage ({disengage_above})"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl CanonicalKey for QosPolicy {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match *self {
            QosPolicy::TailLatency { engage_below, disengage_above } => {
                enc.tag(0).f64(engage_below).f64(disengage_above);
            }
            QosPolicy::QueueLength { engage_at_or_below, disengage_above } => {
                enc.tag(1).usize(engage_at_or_below).usize(disengage_above);
            }
        }
    }
}

/// Monitor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// QoS signal and thresholds.
    pub policy: QosPolicy,
    /// Consecutive slack observations required before engaging B-mode
    /// (hysteresis against noise).
    pub engage_after: usize,
    /// Consecutive QoS violations (metric above the target itself) tolerated
    /// before the monitor escalates to throttling the co-runner.
    pub violations_before_throttle: usize,
}

impl CanonicalKey for MonitorConfig {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.field(&self.policy).usize(self.engage_after).usize(self.violations_before_throttle);
    }
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            policy: QosPolicy::default_tail_latency(),
            engage_after: 3,
            violations_before_throttle: 3,
        }
    }
}

/// Action the monitor requests after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitorAction {
    /// Keep the currently engaged mode.
    Keep,
    /// Program the control register for the given mode (a mode change).
    SwitchTo(StretchMode),
    /// QoS violations persist even without B-mode: throttle the co-runner,
    /// as the baseline CPI² framework would.
    ThrottleCoRunner,
}

/// The Stretch software monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftwareMonitor {
    stretch: StretchConfig,
    cfg: MonitorConfig,
    mode: StretchMode,
    slack_streak: usize,
    violation_streak: usize,
    mode_changes: u64,
    throttle_events: u64,
}

impl SoftwareMonitor {
    /// Creates a monitor for the given provisioned configurations.
    ///
    /// # Panics
    ///
    /// Panics if the policy thresholds are inconsistent.
    pub fn new(stretch: StretchConfig, cfg: MonitorConfig) -> SoftwareMonitor {
        cfg.policy.validate().expect("invalid QoS policy");
        SoftwareMonitor {
            stretch,
            cfg,
            mode: StretchMode::Baseline,
            slack_streak: 0,
            violation_streak: 0,
            mode_changes: 0,
            throttle_events: 0,
        }
    }

    /// Currently engaged mode (as last decided by the monitor).
    pub fn mode(&self) -> StretchMode {
        self.mode
    }

    /// Number of mode changes decided so far.
    pub fn mode_changes(&self) -> u64 {
        self.mode_changes
    }

    /// Number of co-runner throttling events requested so far.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// Feeds one tail-latency observation (both in milliseconds) and returns
    /// the requested action. Only meaningful when the monitor was built with
    /// a tail-latency policy; a queue-length policy treats the ratio against
    /// the target like a latency ratio.
    pub fn observe_tail_latency(&mut self, tail_ms: f64, target_ms: f64) -> MonitorAction {
        let (engage_below, disengage_above) = match self.cfg.policy {
            QosPolicy::TailLatency { engage_below, disengage_above } => {
                (engage_below, disengage_above)
            }
            // Allow latency observations under a queue policy by mapping the
            // default thresholds.
            QosPolicy::QueueLength { .. } => (0.6, 0.9),
        };
        let ratio = if target_ms > 0.0 { tail_ms / target_ms } else { f64::INFINITY };
        self.decide(ratio < engage_below, ratio > disengage_above, ratio > 1.0)
    }

    /// Feeds one queue-length observation and returns the requested action.
    pub fn observe_queue_length(&mut self, queue_length: usize) -> MonitorAction {
        let (engage_at_or_below, disengage_above) = match self.cfg.policy {
            QosPolicy::QueueLength { engage_at_or_below, disengage_above } => {
                (engage_at_or_below, disengage_above)
            }
            QosPolicy::TailLatency { .. } => (1, 4),
        };
        self.decide(
            queue_length <= engage_at_or_below,
            queue_length > disengage_above,
            queue_length > disengage_above * 2,
        )
    }

    /// Common decision logic. `slack` / `pressure` / `violation` classify the
    /// current observation.
    fn decide(&mut self, slack: bool, pressure: bool, violation: bool) -> MonitorAction {
        if violation {
            self.violation_streak += 1;
        } else {
            self.violation_streak = 0;
        }
        if slack {
            self.slack_streak += 1;
        } else {
            self.slack_streak = 0;
        }

        // Pressure: leave B-mode first (the paper: "it first disengages
        // B-mode"), escalate to throttling only if violations persist after
        // that.
        if pressure {
            if self.mode.is_batch_boost() {
                return self.switch_to(self.stretch.high_load_mode());
            }
            if self.violation_streak >= self.cfg.violations_before_throttle {
                self.violation_streak = 0;
                self.throttle_events += 1;
                return MonitorAction::ThrottleCoRunner;
            }
            // Under pressure without B-mode engaged: ensure Q-mode (or
            // baseline) is selected.
            let wanted = self.stretch.high_load_mode();
            if self.mode != wanted {
                return self.switch_to(wanted);
            }
            return MonitorAction::Keep;
        }

        // Slack: engage B-mode after the hysteresis streak.
        if slack && !self.mode.is_batch_boost() && self.slack_streak >= self.cfg.engage_after {
            return self.switch_to(self.stretch.low_load_mode());
        }

        // Neither clear slack nor pressure: if Q-mode is engaged but the
        // pressure has subsided, fall back to the baseline.
        if !slack && !pressure && self.mode.is_qos_boost() {
            return self.switch_to(StretchMode::Baseline);
        }

        MonitorAction::Keep
    }

    fn switch_to(&mut self, mode: StretchMode) -> MonitorAction {
        if mode == self.mode {
            return MonitorAction::Keep;
        }
        self.mode = mode;
        self.mode_changes += 1;
        self.slack_streak = 0;
        MonitorAction::SwitchTo(mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RobSkew;

    fn monitor() -> SoftwareMonitor {
        SoftwareMonitor::new(StretchConfig::recommended(), MonitorConfig::default())
    }

    #[test]
    fn engages_b_mode_after_sustained_slack() {
        let mut m = monitor();
        // Two slack samples: not yet (hysteresis = 3).
        assert_eq!(m.observe_tail_latency(20.0, 100.0), MonitorAction::Keep);
        assert_eq!(m.observe_tail_latency(25.0, 100.0), MonitorAction::Keep);
        match m.observe_tail_latency(22.0, 100.0) {
            MonitorAction::SwitchTo(mode) => assert!(mode.is_batch_boost()),
            other => panic!("expected B-mode engagement, got {other:?}"),
        }
        assert!(m.mode().is_batch_boost());
    }

    #[test]
    fn pressure_disengages_b_mode_before_throttling() {
        let mut m = monitor();
        for _ in 0..3 {
            m.observe_tail_latency(10.0, 100.0);
        }
        assert!(m.mode().is_batch_boost());
        // Latency climbs past the disengage threshold: first leave B-mode.
        match m.observe_tail_latency(95.0, 100.0) {
            MonitorAction::SwitchTo(mode) => assert!(!mode.is_batch_boost()),
            other => panic!("expected disengagement, got {other:?}"),
        }
        assert!(!m.mode().is_batch_boost());
    }

    #[test]
    fn persistent_violations_trigger_throttling() {
        let mut m = monitor();
        // Drive straight into violation territory without B-mode engaged.
        let mut throttled = false;
        for _ in 0..8 {
            if m.observe_tail_latency(150.0, 100.0) == MonitorAction::ThrottleCoRunner {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "persistent violations must escalate to throttling");
        assert!(m.throttle_events() >= 1);
    }

    #[test]
    fn queue_length_policy_engages_and_disengages() {
        let mut m = SoftwareMonitor::new(
            StretchConfig::recommended(),
            MonitorConfig {
                policy: QosPolicy::default_queue_length(),
                engage_after: 2,
                violations_before_throttle: 3,
            },
        );
        assert_eq!(m.observe_queue_length(0), MonitorAction::Keep);
        match m.observe_queue_length(1) {
            MonitorAction::SwitchTo(mode) => assert!(mode.is_batch_boost()),
            other => panic!("expected engagement, got {other:?}"),
        }
        match m.observe_queue_length(10) {
            MonitorAction::SwitchTo(mode) => assert!(mode.is_qos_boost()),
            other => panic!("expected Q-mode under pressure, got {other:?}"),
        }
    }

    #[test]
    fn q_mode_relaxes_to_baseline_when_pressure_subsides() {
        let mut m = monitor();
        // Push into Q-mode.
        m.observe_tail_latency(95.0, 100.0);
        assert!(m.mode().is_qos_boost());
        // A middling observation (neither slack nor pressure) returns to baseline.
        match m.observe_tail_latency(75.0, 100.0) {
            MonitorAction::SwitchTo(StretchMode::Baseline) => {}
            other => panic!("expected return to baseline, got {other:?}"),
        }
    }

    #[test]
    fn without_q_mode_pressure_selects_baseline() {
        let mut m = SoftwareMonitor::new(
            StretchConfig::b_mode_only(RobSkew::new(56, 136)),
            MonitorConfig::default(),
        );
        for _ in 0..3 {
            m.observe_tail_latency(10.0, 100.0);
        }
        assert!(m.mode().is_batch_boost());
        match m.observe_tail_latency(99.0, 100.0) {
            MonitorAction::SwitchTo(StretchMode::Baseline) => {}
            other => panic!("expected baseline fallback, got {other:?}"),
        }
    }

    #[test]
    fn mode_changes_are_counted_and_hysteresis_limits_them() {
        let mut m = monitor();
        // Alternating noisy observations around the engage threshold must not
        // flap the mode on every sample.
        for i in 0..40 {
            let tail = if i % 2 == 0 { 55.0 } else { 65.0 };
            m.observe_tail_latency(tail, 100.0);
        }
        assert!(
            m.mode_changes() <= 2,
            "hysteresis should prevent flapping ({} changes)",
            m.mode_changes()
        );
    }

    #[test]
    #[should_panic(expected = "invalid QoS policy")]
    fn bad_thresholds_rejected() {
        let _ = SoftwareMonitor::new(
            StretchConfig::recommended(),
            MonitorConfig {
                policy: QosPolicy::TailLatency { engage_below: 0.9, disengage_above: 0.5 },
                engage_after: 1,
                violations_before_throttle: 1,
            },
        );
    }
}
