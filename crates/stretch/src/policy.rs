//! Stretch as a [`ColocationPolicy`] — the same interface the baselines use.
//!
//! Two implementations cover the two ways the paper exercises the mechanism:
//!
//! * [`PinnedStretch`] — open loop: one [`StretchMode`] for the whole run.
//!   This is what the evaluation figures sweep (B-mode/Q-mode skews over the
//!   colocation matrix).
//! * [`ClosedLoopStretch`] — the §IV-C control loop: the CPI²-style
//!   [`SoftwareMonitor`] consumes QoS telemetry through
//!   [`ColocationPolicy::on_sample`] and reprograms the (modelled) control
//!   register, so the policy's [`setup`](ColocationPolicy::setup) tracks the
//!   currently engaged mode. The orchestrator drives this against the
//!   queueing model for the §VI-D case studies.

use crate::config::{StretchConfig, StretchMode};
use crate::monitor::{MonitorAction, MonitorConfig, SoftwareMonitor};
use cpu_sim::{ColocationPolicy, ColocationTopology, CoreSetup, PolicyAction, QosObservation};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};

/// Stretch pinned to one mode for the whole run (open loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinnedStretch {
    /// The engaged mode.
    pub mode: StretchMode,
    /// The hardware thread running the latency-sensitive workload.
    pub ls_thread: ThreadId,
}

impl PinnedStretch {
    /// Pins `mode` with the latency-sensitive workload on thread 0 (the
    /// convention of every scenario and figure).
    pub fn new(mode: StretchMode) -> PinnedStretch {
        PinnedStretch { mode, ls_thread: ThreadId::T0 }
    }
}

impl CanonicalKey for PinnedStretch {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("policy/stretch-pinned").field(&self.mode).field(&self.ls_thread);
    }
}

impl ColocationPolicy for PinnedStretch {
    fn name(&self) -> String {
        format!("Stretch {}", self.mode)
    }

    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup {
        let mut setup = CoreSetup::baseline_n(cfg, topology.threads());
        setup.partition = self.mode.partition_policy_n(cfg, topology.threads(), self.ls_thread);
        setup
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

/// The full Stretch control loop behind one policy value: provisioned skews
/// plus the software monitor that picks among them.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoopStretch {
    stretch: StretchConfig,
    monitor: SoftwareMonitor,
    ls_thread: ThreadId,
}

impl ClosedLoopStretch {
    /// Creates the closed-loop policy (latency-sensitive thread on T0).
    ///
    /// # Panics
    ///
    /// Panics if the monitor policy thresholds are inconsistent.
    pub fn new(stretch: StretchConfig, monitor_cfg: MonitorConfig) -> ClosedLoopStretch {
        ClosedLoopStretch {
            monitor: SoftwareMonitor::new(stretch, monitor_cfg),
            stretch,
            ls_thread: ThreadId::T0,
        }
    }

    /// The currently engaged mode.
    pub fn mode(&self) -> StretchMode {
        self.monitor.mode()
    }

    /// The provisioned configuration set.
    pub fn stretch_config(&self) -> StretchConfig {
        self.stretch
    }

    /// Number of mode changes decided so far.
    pub fn mode_changes(&self) -> u64 {
        self.monitor.mode_changes()
    }

    /// Number of co-runner throttling escalations so far.
    pub fn throttle_events(&self) -> u64 {
        self.monitor.throttle_events()
    }
}

impl CanonicalKey for ClosedLoopStretch {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        // Identity covers the provisioning plus the currently engaged mode —
        // the setup depends on both, so cached cells must too.
        enc.str("policy/stretch-closed-loop")
            .field(&self.stretch.b_mode)
            .field(&self.stretch.q_mode)
            .field(&self.mode())
            .field(&self.ls_thread);
    }
}

impl ColocationPolicy for ClosedLoopStretch {
    fn name(&self) -> String {
        format!("Stretch closed loop ({})", self.mode())
    }

    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup {
        PinnedStretch { mode: self.mode(), ls_thread: self.ls_thread }.setup_for(cfg, topology)
    }

    fn on_sample(&mut self, obs: &QosObservation) -> PolicyAction {
        let action = match obs.queue_length {
            Some(depth) => self.monitor.observe_queue_length(depth),
            None => self.monitor.observe_tail_latency(obs.tail_latency_ms, obs.qos_target_ms),
        };
        match action {
            MonitorAction::Keep => PolicyAction::Keep,
            MonitorAction::SwitchTo(_) => PolicyAction::Reconfigure,
            MonitorAction::ThrottleCoRunner => PolicyAction::ThrottleCoRunner,
        }
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RobSkew;

    #[test]
    fn pinned_stretch_programs_the_skew() {
        let cfg = CoreConfig::default();
        let p = PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode()));
        let setup = p.setup(&cfg);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T0), 56);
        assert_eq!(setup.partition.rob_limit(&cfg, ThreadId::T1), 136);
        // Everything else stays at the baseline sharing.
        assert_eq!(setup.fetch_policy, CoreSetup::baseline(&cfg).fetch_policy);
    }

    #[test]
    fn pinned_modes_are_distinct_cache_cells() {
        let digest = |mode| {
            let mut enc = KeyEncoder::new();
            PinnedStretch::new(mode).encode_key(&mut enc);
            enc.digest()
        };
        let baseline = digest(StretchMode::Baseline);
        let b = digest(StretchMode::BatchBoost(RobSkew::recommended_b_mode()));
        let q = digest(StretchMode::QosBoost(RobSkew::recommended_q_mode()));
        assert_ne!(baseline, b);
        assert_ne!(b, q);
        // Same entries, different mode tag: must still be distinct.
        assert_ne!(
            digest(StretchMode::BatchBoost(RobSkew::new(56, 136))),
            digest(StretchMode::QosBoost(RobSkew::new(56, 136)))
        );
    }

    #[test]
    fn closed_loop_tracks_the_monitor_through_on_sample() {
        let mut p = ClosedLoopStretch::new(
            StretchConfig::recommended(),
            MonitorConfig { engage_after: 2, ..MonitorConfig::default() },
        );
        let cfg = CoreConfig::default();
        assert_eq!(p.mode(), StretchMode::Baseline);
        assert_eq!(p.setup(&cfg).partition.rob_limit(&cfg, ThreadId::T0), 96);

        // Sustained slack engages B-mode and asks for a reconfiguration.
        let slack = QosObservation::tail_latency(20.0, 100.0, 0.2);
        assert_eq!(p.on_sample(&slack), PolicyAction::Keep);
        assert_eq!(p.on_sample(&slack), PolicyAction::Reconfigure);
        assert!(p.mode().is_batch_boost());
        assert_eq!(p.setup(&cfg).partition.rob_limit(&cfg, ThreadId::T1), 136);

        // Pressure disengages B-mode (into Q-mode, since it is provisioned).
        let pressure = QosObservation::tail_latency(95.0, 100.0, 0.95);
        assert_eq!(p.on_sample(&pressure), PolicyAction::Reconfigure);
        assert!(p.mode().is_qos_boost());
        assert_eq!(p.mode_changes(), 2);
    }

    #[test]
    fn closed_loop_consumes_queue_length_signals_too() {
        let mut p = ClosedLoopStretch::new(
            StretchConfig::recommended(),
            MonitorConfig {
                policy: crate::monitor::QosPolicy::default_queue_length(),
                engage_after: 1,
                violations_before_throttle: 3,
            },
        );
        let obs = QosObservation {
            tail_latency_ms: 0.0,
            qos_target_ms: 100.0,
            queue_length: Some(0),
            load: 0.1,
        };
        assert_eq!(p.on_sample(&obs), PolicyAction::Reconfigure);
        assert!(p.mode().is_batch_boost());
    }

    #[test]
    fn closed_loop_key_changes_with_the_engaged_mode() {
        let digest = |p: &ClosedLoopStretch| {
            let mut enc = KeyEncoder::new();
            p.encode_key(&mut enc);
            enc.digest()
        };
        let mut p = ClosedLoopStretch::new(
            StretchConfig::recommended(),
            MonitorConfig { engage_after: 1, ..MonitorConfig::default() },
        );
        let before = digest(&p);
        let _ = p.on_sample(&QosObservation::tail_latency(10.0, 100.0, 0.1));
        assert!(p.mode().is_batch_boost());
        assert_ne!(before, digest(&p), "the engaged mode is part of the policy identity");
    }
}
