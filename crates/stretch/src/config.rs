//! Stretch partitioning configurations (§IV-A, §IV-B).
//!
//! A Stretch core provisions, at design time, one or more asymmetric ROB
//! partitionings in addition to the baseline equal split. At runtime system
//! software selects among them through the control register. The paper's
//! notation `N-M` assigns `N` ROB entries to the latency-sensitive thread and
//! `M` to the batch thread; the LSQ is partitioned proportionally.

use cpu_sim::PartitionPolicy;
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};
use std::fmt;

/// An asymmetric ROB split: entries for the latency-sensitive thread and for
/// the batch thread (the paper's `N-M` notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RobSkew {
    /// ROB entries assigned to the latency-sensitive thread.
    pub ls_entries: usize,
    /// ROB entries assigned to the batch thread.
    pub batch_entries: usize,
}

impl RobSkew {
    /// Creates a skew.
    pub const fn new(ls_entries: usize, batch_entries: usize) -> RobSkew {
        RobSkew { ls_entries, batch_entries }
    }

    /// The B-mode skews evaluated in Figure 9 (left): batch side grows from
    /// 128 to 160 entries in steps of 8.
    pub fn b_mode_sweep() -> Vec<RobSkew> {
        vec![
            RobSkew::new(64, 128),
            RobSkew::new(56, 136),
            RobSkew::new(48, 144),
            RobSkew::new(40, 152),
            RobSkew::new(32, 160),
        ]
    }

    /// The Q-mode skews evaluated in Figure 9 (right).
    pub fn q_mode_sweep() -> Vec<RobSkew> {
        vec![
            RobSkew::new(128, 64),
            RobSkew::new(136, 56),
            RobSkew::new(144, 48),
            RobSkew::new(152, 40),
            RobSkew::new(160, 32),
        ]
    }

    /// The paper's headline B-mode configuration (56 entries to the LS
    /// thread, 136 to the batch thread).
    pub const fn recommended_b_mode() -> RobSkew {
        RobSkew::new(56, 136)
    }

    /// The paper's headline Q-mode configuration.
    pub const fn recommended_q_mode() -> RobSkew {
        RobSkew::new(136, 56)
    }

    /// Total entries used by the skew.
    pub fn total(&self) -> usize {
        self.ls_entries + self.batch_entries
    }

    /// Validates the skew against a core's ROB capacity.
    ///
    /// # Errors
    ///
    /// Returns an error if either side has no entries or the skew exceeds the
    /// ROB capacity.
    pub fn validate(&self, cfg: &CoreConfig) -> Result<(), String> {
        if self.ls_entries == 0 || self.batch_entries == 0 {
            return Err(format!("skew {self} leaves one thread without ROB entries"));
        }
        if self.total() > cfg.rob_capacity {
            return Err(format!(
                "skew {self} needs {} entries but the ROB has {}",
                self.total(),
                cfg.rob_capacity
            ));
        }
        Ok(())
    }
}

impl CanonicalKey for RobSkew {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.ls_entries).usize(self.batch_entries);
    }
}

impl fmt::Display for RobSkew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.ls_entries, self.batch_entries)
    }
}

/// The partitioning mode currently engaged on the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StretchMode {
    /// Equal partitioning (Stretch disabled / S-bit clear).
    Baseline,
    /// Batch-boost mode: the latency-sensitive thread gets the small share.
    BatchBoost(RobSkew),
    /// QoS-boost mode: the latency-sensitive thread gets the large share.
    QosBoost(RobSkew),
}

impl StretchMode {
    /// Maps the mode onto the core's ROB/LSQ limit registers. `ls_thread`
    /// names the hardware thread running the latency-sensitive workload;
    /// Stretch explicitly supports either mapping (§IV-D).
    pub fn partition_policy(&self, cfg: &CoreConfig, ls_thread: ThreadId) -> PartitionPolicy {
        self.partition_policy_n(cfg, 2, ls_thread)
    }

    /// As [`StretchMode::partition_policy`], for an SMT-`threads` core: the
    /// skew's batch share is spread evenly over the `threads - 1` batch
    /// co-runners.
    pub fn partition_policy_n(
        &self,
        cfg: &CoreConfig,
        threads: usize,
        ls_thread: ThreadId,
    ) -> PartitionPolicy {
        match self {
            StretchMode::Baseline => PartitionPolicy::equal_n(cfg, threads),
            StretchMode::BatchBoost(skew) | StretchMode::QosBoost(skew) => {
                PartitionPolicy::ls_split(
                    cfg,
                    threads,
                    ls_thread,
                    skew.ls_entries,
                    skew.batch_entries,
                )
            }
        }
    }

    /// `true` when a batch-boost configuration is engaged.
    pub fn is_batch_boost(&self) -> bool {
        matches!(self, StretchMode::BatchBoost(_))
    }

    /// `true` when a QoS-boost configuration is engaged.
    pub fn is_qos_boost(&self) -> bool {
        matches!(self, StretchMode::QosBoost(_))
    }
}

impl CanonicalKey for StretchMode {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match self {
            StretchMode::Baseline => {
                enc.tag(0);
            }
            StretchMode::BatchBoost(skew) => {
                enc.tag(1).field(skew);
            }
            StretchMode::QosBoost(skew) => {
                enc.tag(2).field(skew);
            }
        }
    }
}

impl fmt::Display for StretchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StretchMode::Baseline => write!(f, "baseline"),
            StretchMode::BatchBoost(s) => write!(f, "B-mode {s}"),
            StretchMode::QosBoost(s) => write!(f, "Q-mode {s}"),
        }
    }
}

/// The set of configurations provisioned at processor design time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StretchConfig {
    /// The batch-boost skew.
    pub b_mode: RobSkew,
    /// The optional QoS-boost skew; when absent, the baseline partitioning is
    /// used at high load (§IV-B).
    pub q_mode: Option<RobSkew>,
}

impl StretchConfig {
    /// The paper's recommended provisioning: B-mode 56-136 and Q-mode 136-56.
    pub fn recommended() -> StretchConfig {
        StretchConfig {
            b_mode: RobSkew::recommended_b_mode(),
            q_mode: Some(RobSkew::recommended_q_mode()),
        }
    }

    /// A provisioning with only a B-mode (Q-mode omitted).
    pub fn b_mode_only(b_mode: RobSkew) -> StretchConfig {
        StretchConfig { b_mode, q_mode: None }
    }

    /// Validates both provisioned skews against the core.
    ///
    /// # Errors
    ///
    /// Propagates the first skew validation error.
    pub fn validate(&self, cfg: &CoreConfig) -> Result<(), String> {
        self.b_mode.validate(cfg)?;
        if let Some(q) = self.q_mode {
            q.validate(cfg)?;
        }
        Ok(())
    }

    /// The mode to engage when the QoS metric indicates high load: Q-mode if
    /// provisioned, otherwise the baseline.
    pub fn high_load_mode(&self) -> StretchMode {
        match self.q_mode {
            Some(q) => StretchMode::QosBoost(q),
            None => StretchMode::Baseline,
        }
    }

    /// The mode to engage when there is QoS slack.
    pub fn low_load_mode(&self) -> StretchMode {
        StretchMode::BatchBoost(self.b_mode)
    }
}

impl CanonicalKey for StretchConfig {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.field(&self.b_mode).field(&self.q_mode);
    }
}

impl Default for StretchConfig {
    fn default() -> StretchConfig {
        StretchConfig::recommended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_figure_9_labels() {
        let b: Vec<String> = RobSkew::b_mode_sweep().iter().map(|s| s.to_string()).collect();
        assert_eq!(b, vec!["64-128", "56-136", "48-144", "40-152", "32-160"]);
        let q: Vec<String> = RobSkew::q_mode_sweep().iter().map(|s| s.to_string()).collect();
        assert_eq!(q, vec!["128-64", "136-56", "144-48", "152-40", "160-32"]);
    }

    #[test]
    fn all_sweep_points_fit_the_table_ii_rob() {
        let cfg = CoreConfig::default();
        for s in RobSkew::b_mode_sweep().into_iter().chain(RobSkew::q_mode_sweep()) {
            s.validate(&cfg).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(s.total(), cfg.rob_capacity);
        }
    }

    #[test]
    fn skew_validation_rejects_nonsense() {
        let cfg = CoreConfig::default();
        assert!(RobSkew::new(0, 192).validate(&cfg).is_err());
        assert!(RobSkew::new(128, 128).validate(&cfg).is_err());
        assert!(RobSkew::new(56, 136).validate(&cfg).is_ok());
    }

    #[test]
    fn partition_policy_respects_ls_thread_mapping() {
        let cfg = CoreConfig::default();
        let mode = StretchMode::BatchBoost(RobSkew::new(56, 136));
        let p0 = mode.partition_policy(&cfg, ThreadId::T0);
        assert_eq!(p0.rob_limit(&cfg, ThreadId::T0), 56);
        assert_eq!(p0.rob_limit(&cfg, ThreadId::T1), 136);
        let p1 = mode.partition_policy(&cfg, ThreadId::T1);
        assert_eq!(p1.rob_limit(&cfg, ThreadId::T0), 136);
        assert_eq!(p1.rob_limit(&cfg, ThreadId::T1), 56);
    }

    #[test]
    fn baseline_mode_is_equal_partitioning() {
        let cfg = CoreConfig::default();
        let p = StretchMode::Baseline.partition_policy(&cfg, ThreadId::T0);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 96);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T1), 96);
    }

    #[test]
    fn config_modes() {
        let c = StretchConfig::recommended();
        assert!(c.low_load_mode().is_batch_boost());
        assert!(c.high_load_mode().is_qos_boost());
        let b_only = StretchConfig::b_mode_only(RobSkew::new(48, 144));
        assert_eq!(b_only.high_load_mode(), StretchMode::Baseline);
        assert!(b_only.validate(&CoreConfig::default()).is_ok());
    }

    #[test]
    fn mode_display_is_informative() {
        assert_eq!(StretchMode::Baseline.to_string(), "baseline");
        assert_eq!(StretchMode::BatchBoost(RobSkew::new(56, 136)).to_string(), "B-mode 56-136");
        assert_eq!(StretchMode::QosBoost(RobSkew::new(136, 56)).to_string(), "Q-mode 136-56");
    }
}
