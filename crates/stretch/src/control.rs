//! The hardware–software interface: the Stretch control register (§IV-C).
//!
//! System software maintains two fields in an architecturally exposed control
//! register:
//!
//! * **S-bit** — when set, one of the Stretch modes is engaged; when clear,
//!   the baseline equal partitioning is used.
//! * **B/Q-bit** — selects between the batch-boost and QoS-boost
//!   configurations when the S-bit is set.
//!
//! Writing the register reprograms the ROB/LSQ limit registers and flushes
//! both threads' pipelines.

use crate::config::{StretchConfig, StretchMode};
use cpu_sim::SmtCore;
use serde::{Deserialize, Serialize};
use sim_model::ThreadId;

/// The architecturally exposed Stretch control register.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlRegister {
    /// S-bit: Stretch engaged.
    pub s_bit: bool,
    /// B/Q-bit: `false` selects B-mode, `true` selects Q-mode.
    pub q_bit: bool,
}

impl ControlRegister {
    /// A cleared register (baseline partitioning).
    pub fn new() -> ControlRegister {
        ControlRegister::default()
    }

    /// Engages the batch-boost mode (S=1, B/Q=B).
    pub fn engage_b_mode(&mut self) {
        self.s_bit = true;
        self.q_bit = false;
    }

    /// Engages the QoS-boost mode (S=1, B/Q=Q).
    pub fn engage_q_mode(&mut self) {
        self.s_bit = true;
        self.q_bit = true;
    }

    /// Clears the S-bit, returning to the baseline partitioning.
    pub fn disengage(&mut self) {
        self.s_bit = false;
    }

    /// Resolves the register against the provisioned configurations.
    ///
    /// If the Q-mode is requested but not provisioned, the baseline is used
    /// (the paper makes Q-mode optional).
    pub fn mode(&self, config: &StretchConfig) -> StretchMode {
        if !self.s_bit {
            StretchMode::Baseline
        } else if self.q_bit {
            config.high_load_mode()
        } else {
            config.low_load_mode()
        }
    }

    /// Applies the register to a simulated core: loads the limit registers
    /// for the selected mode and flushes both pipelines. Returns the mode
    /// that was engaged.
    ///
    /// `ls_thread` identifies the hardware thread running the
    /// latency-sensitive workload.
    pub fn apply(
        &self,
        core: &mut SmtCore,
        config: &StretchConfig,
        ls_thread: ThreadId,
    ) -> StretchMode {
        let mode = self.mode(config);
        let policy = mode.partition_policy(core.config(), ls_thread);
        core.set_partition(policy, true);
        mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RobSkew;
    use sim_model::CoreConfig;

    #[test]
    fn register_encodes_the_three_modes() {
        let cfg = StretchConfig::recommended();
        let mut r = ControlRegister::new();
        assert_eq!(r.mode(&cfg), StretchMode::Baseline);
        r.engage_b_mode();
        assert_eq!(r.mode(&cfg), StretchMode::BatchBoost(RobSkew::new(56, 136)));
        r.engage_q_mode();
        assert_eq!(r.mode(&cfg), StretchMode::QosBoost(RobSkew::new(136, 56)));
        r.disengage();
        assert_eq!(r.mode(&cfg), StretchMode::Baseline);
    }

    #[test]
    fn missing_q_mode_falls_back_to_baseline() {
        let cfg = StretchConfig::b_mode_only(RobSkew::new(48, 144));
        let mut r = ControlRegister::new();
        r.engage_q_mode();
        assert_eq!(r.mode(&cfg), StretchMode::Baseline);
    }

    #[test]
    fn apply_reprograms_the_core_limits() {
        use cpu_sim::SmtCoreBuilder;
        use workloads::{batch, latency_sensitive};

        let core_cfg = CoreConfig::default();
        let mut core = SmtCoreBuilder::new(core_cfg)
            .thread(ThreadId::T0, latency_sensitive::web_search(1))
            .thread(ThreadId::T1, batch::zeusmp(1))
            .build();
        let stretch = StretchConfig::recommended();
        let mut reg = ControlRegister::new();
        reg.engage_b_mode();
        let mode = reg.apply(&mut core, &stretch, ThreadId::T0);
        assert!(mode.is_batch_boost());
        assert_eq!(core.partition().rob_limit(&core_cfg, ThreadId::T0), 56);
        assert_eq!(core.partition().rob_limit(&core_cfg, ThreadId::T1), 136);
        assert_eq!(core.thread_stats(ThreadId::T0).mode_change_flushes, 1);
    }
}
