//! The interface between workload models and the core simulator.

use crate::uop::MicroOp;
use crate::WorkloadClass;

/// A source of dynamic micro-ops for one hardware thread.
///
/// Workload generators (the `workloads` crate) implement this trait; the SMT
/// core model pulls micro-ops from it as the front-end fetches instructions.
/// Implementations must be deterministic given their construction seed so
/// that paired experiments observe identical instruction streams.
///
/// The stream is conceptually infinite: generators wrap around their synthetic
/// program rather than terminating, mirroring steady-state server execution.
pub trait TraceGenerator {
    /// Produces the next micro-op in program order.
    fn next_op(&mut self) -> MicroOp;

    /// Short human-readable workload name (e.g. `"web-search"`, `"zeusmp"`).
    fn name(&self) -> &str;

    /// Workload class (latency-sensitive or batch).
    fn class(&self) -> WorkloadClass;

    /// Restarts the stream from the beginning (same seed, same sequence).
    fn reset(&mut self);
}

/// A boxed trace generator, convenient for heterogeneous collections.
pub type BoxedTrace = Box<dyn TraceGenerator + Send>;

/// A reusable recipe for spawning [`TraceGenerator`]s.
///
/// Where [`TraceGenerator`] is one live instruction stream, a `TraceSource`
/// can mint arbitrarily many streams from different seeds — it is the
/// scenario-level handle for "the web-search workload" as opposed to "this
/// particular replay of web-search". The `workloads` crate implements it for
/// `WorkloadProfile`; the `cpu-sim` `Scenario` builder consumes it so that
/// seed derivation (paired experiments must see identical streams) lives in
/// one place instead of at every call site.
pub trait TraceSource {
    /// Stable workload name, used for seed derivation and result labelling.
    fn source_name(&self) -> &str;

    /// Spawns a fresh deterministic trace for `seed`.
    fn spawn_trace(&self, seed: u64) -> BoxedTrace;
}

impl TraceGenerator for BoxedTrace {
    fn next_op(&mut self) -> MicroOp {
        (**self).next_op()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn class(&self) -> WorkloadClass {
        (**self).class()
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::OpKind;

    /// A minimal generator used to check the trait is object-safe and usable
    /// through `BoxedTrace`.
    struct Counter {
        pc: u64,
    }

    impl TraceGenerator for Counter {
        fn next_op(&mut self) -> MicroOp {
            self.pc += 4;
            MicroOp::alu(self.pc, OpKind::IntAlu, [None, None], Some(1))
        }

        fn name(&self) -> &str {
            "counter"
        }

        fn class(&self) -> WorkloadClass {
            WorkloadClass::Batch
        }

        fn reset(&mut self) {
            self.pc = 0;
        }
    }

    #[test]
    fn boxed_trace_delegates() {
        let mut t: BoxedTrace = Box::new(Counter { pc: 0 });
        let a = t.next_op();
        let b = t.next_op();
        assert!(b.pc > a.pc);
        assert_eq!(t.name(), "counter");
        assert_eq!(t.class(), WorkloadClass::Batch);
        t.reset();
        assert_eq!(t.next_op().pc, 4);
    }
}
