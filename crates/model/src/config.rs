//! Processor configuration structures.
//!
//! The defaults reproduce Table II of the paper: a 6-wide dual-threaded SMT
//! out-of-order core at 2.5 GHz with a 192-entry ROB, 64-entry LSQ, 64 KB L1
//! caches, a hybrid branch predictor, a stride prefetcher, an 8 MB NUCA LLC
//! and 75 ns memory.

use crate::ThreadId;
use serde::{Deserialize, Serialize};

/// L1 cache geometry and behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line (block) size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Number of banks (each bank supplies one block per cycle).
    pub banks: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// 64 KB, 64 B lines, 8-way, 2 banks — the Table II L1 configuration.
    pub fn l1_default() -> CacheConfig {
        CacheConfig { capacity_bytes: 64 * 1024, line_bytes: 64, ways: 8, banks: 2, hit_latency: 2 }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `ways * line_bytes`).
    pub fn sets(&self) -> usize {
        let denom = self.ways * self.line_bytes;
        assert!(
            denom > 0 && self.capacity_bytes.is_multiple_of(denom),
            "inconsistent cache geometry {self:?}"
        );
        self.capacity_bytes / denom
    }
}

/// Branch prediction structures (Table II front-end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// gShare table entries (16 K in Table II).
    pub gshare_entries: usize,
    /// Bimodal table entries (4 K in Table II).
    pub bimodal_entries: usize,
    /// Chooser (meta-predictor) entries.
    pub chooser_entries: usize,
    /// Branch target buffer entries (2 K in Table II).
    pub btb_entries: usize,
    /// Return address stack depth per thread.
    pub ras_depth: usize,
    /// Global history length in bits.
    pub history_bits: usize,
}

impl Default for BranchPredictorConfig {
    fn default() -> BranchPredictorConfig {
        BranchPredictorConfig {
            gshare_entries: 16 * 1024,
            bimodal_entries: 4 * 1024,
            chooser_entries: 4 * 1024,
            btb_entries: 2 * 1024,
            ras_depth: 16,
            history_bits: 12,
        }
    }
}

/// Functional unit mix (Table II back-end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuConfig {
    /// Simple integer ALUs.
    pub int_alu: usize,
    /// Integer multipliers.
    pub int_mul: usize,
    /// Floating-point units.
    pub fpu: usize,
    /// Load/store units.
    pub lsu: usize,
}

impl Default for FuConfig {
    fn default() -> FuConfig {
        FuConfig { int_alu: 4, int_mul: 2, fpu: 3, lsu: 2 }
    }
}

/// Uncore (LLC + NoC + memory) timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncoreConfig {
    /// LLC capacity in bytes (8 MB NUCA in Table II). Partitioned equally
    /// between the two hardware threads to mirror the paper's use of cache
    /// partitioning (Intel CAT) to isolate LLC working sets.
    pub llc_capacity_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Average LLC access latency in cycles (28 in Table II, including NoC).
    pub llc_latency: u64,
    /// NoC hop latency in cycles (3 per hop in Table II).
    pub noc_hop_latency: u64,
    /// Memory access latency in nanoseconds (75 ns in Table II).
    pub mem_latency_ns: f64,
    /// Core clock frequency in GHz (2.5 in Table II).
    pub freq_ghz: f64,
}

impl Default for UncoreConfig {
    fn default() -> UncoreConfig {
        UncoreConfig {
            llc_capacity_bytes: 8 * 1024 * 1024,
            llc_ways: 16,
            llc_latency: 28,
            noc_hop_latency: 3,
            mem_latency_ns: 75.0,
            freq_ghz: 2.5,
        }
    }
}

impl UncoreConfig {
    /// Memory access latency converted to core cycles.
    pub fn mem_latency_cycles(&self) -> u64 {
        (self.mem_latency_ns * self.freq_ghz).round() as u64
    }
}

/// Full core configuration. Defaults reproduce Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions fetched per cycle (6 in Table II).
    pub fetch_width: usize,
    /// Cache blocks that can be fetched per cycle (2 in Table II).
    pub fetch_blocks_per_cycle: usize,
    /// Branches that can be fetched per cycle (1 in Table II).
    pub fetch_branches_per_cycle: usize,
    /// Decode/dispatch width (6 in Table II).
    pub dispatch_width: usize,
    /// Issue width (bounded by functional units as well).
    pub issue_width: usize,
    /// Commit width (6 in Table II).
    pub commit_width: usize,
    /// Total ROB capacity across both threads (192 in Table II).
    pub rob_capacity: usize,
    /// Total LSQ capacity across both threads (64 in Table II).
    pub lsq_capacity: usize,
    /// Pipeline flush / redirect penalty in cycles (12 in Table II).
    pub pipeline_flush_cycles: u64,
    /// MSHRs per thread in the L1-D (5 per thread in Table II).
    pub mshrs_per_thread: usize,
    /// Maximum load/store PCs tracked by the stride prefetcher (32 in Table II).
    pub prefetcher_pc_slots: usize,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Branch prediction structures.
    pub branch: BranchPredictorConfig,
    /// Functional unit mix.
    pub fus: FuConfig,
    /// Uncore timing.
    pub uncore: UncoreConfig,
    /// Per-thread fetch/decode buffer capacity.
    pub fetch_buffer_entries: usize,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            fetch_width: 6,
            fetch_blocks_per_cycle: 2,
            fetch_branches_per_cycle: 1,
            dispatch_width: 6,
            issue_width: 8,
            commit_width: 6,
            rob_capacity: 192,
            lsq_capacity: 64,
            pipeline_flush_cycles: 12,
            mshrs_per_thread: 5,
            prefetcher_pc_slots: 32,
            l1i: CacheConfig::l1_default(),
            l1d: CacheConfig::l1_default(),
            branch: BranchPredictorConfig::default(),
            fus: FuConfig::default(),
            uncore: UncoreConfig::default(),
            fetch_buffer_entries: 24,
        }
    }
}

impl CoreConfig {
    /// Default (equal) ROB partition size for one thread: half the capacity.
    pub fn default_rob_partition(&self, _thread: ThreadId) -> usize {
        self.rob_capacity / 2
    }

    /// Default (equal) LSQ partition size for one thread: half the capacity.
    pub fn default_lsq_partition(&self, _thread: ThreadId) -> usize {
        self.lsq_capacity / 2
    }

    /// Scales the LSQ partition in proportion to a ROB partition, as the
    /// paper does ("we also manage the LSQ in proportion to the ROB", §IV).
    ///
    /// The result is clamped to at least 4 entries so a thread can always
    /// make forward progress on memory operations.
    pub fn lsq_entries_for_rob(&self, rob_entries: usize) -> usize {
        if self.rob_capacity == 0 {
            return 0;
        }
        let scaled = rob_entries * self.lsq_capacity / self.rob_capacity;
        scaled.max(4).min(self.lsq_capacity)
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency found
    /// (zero widths, ROB smaller than two entries, cache geometry mismatch).
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.dispatch_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be non-zero".to_string());
        }
        if self.rob_capacity < 2 {
            return Err(format!("ROB capacity {} too small for two threads", self.rob_capacity));
        }
        if self.lsq_capacity < 2 {
            return Err(format!("LSQ capacity {} too small for two threads", self.lsq_capacity));
        }
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d)] {
            let denom = c.ways * c.line_bytes;
            if denom == 0 || c.capacity_bytes % denom != 0 {
                return Err(format!("{name} geometry inconsistent: {c:?}"));
            }
        }
        if self.fus.int_alu == 0 || self.fus.lsu == 0 {
            return Err("need at least one integer ALU and one LSU".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.rob_capacity, 192);
        assert_eq!(c.lsq_capacity, 64);
        assert_eq!(c.pipeline_flush_cycles, 12);
        assert_eq!(c.mshrs_per_thread, 5);
        assert_eq!(c.l1i.capacity_bytes, 64 * 1024);
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.branch.gshare_entries, 16 * 1024);
        assert_eq!(c.branch.btb_entries, 2 * 1024);
        assert_eq!(c.fus.int_alu, 4);
        assert_eq!(c.fus.fpu, 3);
        assert_eq!(c.uncore.llc_capacity_bytes, 8 * 1024 * 1024);
        assert_eq!(c.uncore.llc_latency, 28);
        assert!((c.uncore.mem_latency_ns - 75.0).abs() < f64::EPSILON);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn equal_partitions_are_half() {
        let c = CoreConfig::default();
        assert_eq!(c.default_rob_partition(ThreadId::T0), 96);
        assert_eq!(c.default_lsq_partition(ThreadId::T1), 32);
    }

    #[test]
    fn memory_latency_in_cycles() {
        let u = UncoreConfig::default();
        // 75 ns at 2.5 GHz = 187.5 -> 188 cycles.
        assert_eq!(u.mem_latency_cycles(), 188);
    }

    #[test]
    fn lsq_scales_with_rob() {
        let c = CoreConfig::default();
        assert_eq!(c.lsq_entries_for_rob(96), 32);
        assert_eq!(c.lsq_entries_for_rob(192), 64);
        assert_eq!(c.lsq_entries_for_rob(48), 16);
        // Clamped to a useful minimum.
        assert!(c.lsq_entries_for_rob(4) >= 4);
    }

    #[test]
    fn validation_rejects_broken_configs() {
        let c = CoreConfig { rob_capacity: 1, ..CoreConfig::default() };
        assert!(c.validate().is_err());

        let mut c = CoreConfig::default();
        c.l1d.capacity_bytes = 1000; // not divisible by ways*line
        assert!(c.validate().is_err());

        let mut c = CoreConfig::default();
        c.fus.lsu = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cache_sets_computed() {
        let c = CacheConfig::l1_default();
        assert_eq!(c.sets(), 64 * 1024 / (8 * 64));
    }
}
