//! Micro-op representation shared between workload generators and the core.
//!
//! The reproduction is trace-driven: workload models emit a deterministic
//! stream of [`MicroOp`]s carrying explicit register dependencies, memory
//! addresses and branch outcomes. The SMT core model consumes them, applying
//! the structural and timing constraints of Table II (ROB/LSQ occupancy,
//! functional-unit mix, cache/MSHR behaviour, branch prediction).

use crate::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Functional class of a micro-op. Determines which functional unit executes
/// it and its execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Simple integer ALU operation (1-cycle latency, 4 units in Table II).
    IntAlu,
    /// Integer multiply/divide (3-cycle latency, 2 units).
    IntMul,
    /// Floating-point operation (4-cycle latency, 3 units).
    Fp,
    /// Memory load (issues to an LSU, completes when data returns).
    Load,
    /// Memory store (issues to an LSU, commits to memory at retirement).
    Store,
    /// Conditional or unconditional branch (1-cycle ALU latency; mispredicts
    /// flush the pipeline).
    Branch,
}

impl OpKind {
    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// `true` for branches.
    pub fn is_branch(self) -> bool {
        matches!(self, OpKind::Branch)
    }

    /// Fixed execution latency in cycles, excluding memory access time.
    pub fn exec_latency(self) -> u64 {
        match self {
            OpKind::IntAlu | OpKind::Branch => 1,
            OpKind::IntMul => 3,
            OpKind::Fp => 4,
            OpKind::Load | OpKind::Store => 1, // address generation; memory time added separately
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::IntAlu => "int",
            OpKind::IntMul => "mul",
            OpKind::Fp => "fp",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// Kind of memory access carried by a load or store micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemKind {
    /// Read.
    Read,
    /// Write.
    Write,
}

/// A memory access: byte address plus access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Virtual byte address accessed.
    pub addr: u64,
    /// Read or write.
    pub kind: MemKind,
}

impl MemAccess {
    /// Cache-block address (64-byte blocks).
    pub fn block(&self) -> u64 {
        self.addr >> 6
    }
}

/// Branch metadata attached to [`OpKind::Branch`] micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Actual outcome of the branch (taken or not).
    pub taken: bool,
    /// Target program counter when taken.
    pub target: u64,
    /// `true` for call-like branches that push the return address stack.
    pub is_call: bool,
    /// `true` for return-like branches that pop the return address stack.
    pub is_return: bool,
}

/// One micro-op of a workload's dynamic instruction stream.
///
/// Register dependencies are expressed over a small per-thread logical
/// register file ([`crate::NUM_LOGICAL_REGS`]); the core resolves them to
/// producing in-flight instructions at dispatch time, which captures true
/// data dependencies (and hence ILP/MLP) without modelling a full renamer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Program counter of the instruction (used for I-cache and branch
    /// predictor indexing).
    pub pc: u64,
    /// Functional class.
    pub kind: OpKind,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// Memory access performed, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Branch metadata, for branches.
    pub branch: Option<BranchInfo>,
}

impl MicroOp {
    /// Constructs a register-to-register ALU micro-op.
    pub fn alu(pc: u64, kind: OpKind, srcs: [Option<Reg>; 2], dst: Option<Reg>) -> MicroOp {
        debug_assert!(!kind.is_mem() && !kind.is_branch());
        MicroOp { pc, kind, srcs, dst, mem: None, branch: None }
    }

    /// Constructs a load micro-op reading `addr` into `dst`.
    pub fn load(pc: u64, addr: u64, srcs: [Option<Reg>; 2], dst: Option<Reg>) -> MicroOp {
        MicroOp {
            pc,
            kind: OpKind::Load,
            srcs,
            dst,
            mem: Some(MemAccess { addr, kind: MemKind::Read }),
            branch: None,
        }
    }

    /// Constructs a store micro-op writing `addr`.
    pub fn store(pc: u64, addr: u64, srcs: [Option<Reg>; 2]) -> MicroOp {
        MicroOp {
            pc,
            kind: OpKind::Store,
            srcs,
            dst: None,
            mem: Some(MemAccess { addr, kind: MemKind::Write }),
            branch: None,
        }
    }

    /// Constructs a branch micro-op.
    pub fn branch(pc: u64, info: BranchInfo, srcs: [Option<Reg>; 2]) -> MicroOp {
        MicroOp { pc, kind: OpKind::Branch, srcs, dst: None, mem: None, branch: Some(info) }
    }

    /// `true` if this micro-op reads or writes memory.
    pub fn is_mem(&self) -> bool {
        self.kind.is_mem()
    }

    /// `true` if this micro-op is a branch.
    pub fn is_branch(&self) -> bool {
        self.kind.is_branch()
    }

    /// Checks internal consistency: memory ops carry an address, branches
    /// carry branch info, and nothing else does.
    pub fn is_well_formed(&self) -> bool {
        let mem_ok = self.kind.is_mem() == self.mem.is_some();
        let br_ok = self.kind.is_branch() == self.branch.is_some();
        let store_dst_ok = self.kind != OpKind::Store || self.dst.is_none();
        mem_ok && br_ok && store_dst_ok
    }
}

pub use self::BranchInfo as Branch;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_well_formed_ops() {
        let a = MicroOp::alu(0x100, OpKind::IntAlu, [Some(1), Some(2)], Some(3));
        let l = MicroOp::load(0x104, 0xdead_beef, [Some(3), None], Some(4));
        let s = MicroOp::store(0x108, 0xdead_bee0, [Some(4), Some(1)]);
        let b = MicroOp::branch(
            0x10c,
            BranchInfo { taken: true, target: 0x200, is_call: false, is_return: false },
            [Some(4), None],
        );
        for op in [a, l, s, b] {
            assert!(op.is_well_formed(), "{op:?} should be well-formed");
        }
    }

    #[test]
    fn block_address_strips_offset() {
        let m = MemAccess { addr: 0x1240, kind: MemKind::Read };
        assert_eq!(m.block(), 0x1240 >> 6);
        let m2 = MemAccess { addr: 0x1240 + 63, kind: MemKind::Read };
        assert_eq!(m.block(), m2.block());
        let m3 = MemAccess { addr: 0x1240 + 64, kind: MemKind::Read };
        assert_ne!(m.block(), m3.block());
    }

    #[test]
    fn latency_by_kind() {
        assert_eq!(OpKind::IntAlu.exec_latency(), 1);
        assert_eq!(OpKind::IntMul.exec_latency(), 3);
        assert_eq!(OpKind::Fp.exec_latency(), 4);
    }

    #[test]
    fn malformed_op_detected() {
        let bad = MicroOp {
            pc: 0,
            kind: OpKind::Load,
            srcs: [None, None],
            dst: None,
            mem: None, // load without address
            branch: None,
        };
        assert!(!bad.is_well_formed());
    }
}
