//! Shared simulation types for the Stretch (HPCA'19) reproduction.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! This crate holds everything that more than one simulator crate needs:
//!
//! * [`uop`] — the micro-op representation emitted by workload generators and
//!   consumed by the core model ([`MicroOp`], [`OpKind`], [`MemAccess`]).
//! * [`config`] — processor configuration structures whose defaults reproduce
//!   Table II of the paper ([`CoreConfig`], [`CacheConfig`], [`UncoreConfig`]).
//! * [`rng`] — a small deterministic PRNG ([`SimRng`]) plus samplers
//!   (exponential, Zipf, log-normal) used for reproducible workload generation.
//! * [`parallel`] — the order-preserving worker pool ([`parallel_map`]) the
//!   fleet simulator and the experiment engine fan work out through.
//! * [`ids`] — strongly-typed identifiers ([`ThreadId`], [`WorkloadClass`]).
//! * [`trace`] — the [`TraceGenerator`] trait implemented by workload models,
//!   and the [`TraceSource`] recipe trait the scenario layer spawns from.
//!
//! # Example
//!
//! ```
//! use sim_model::{CoreConfig, ThreadId};
//!
//! let cfg = CoreConfig::default();
//! assert_eq!(cfg.rob_capacity, 192);
//! assert_eq!(cfg.rob_capacity / 2, cfg.default_rob_partition(ThreadId::T0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod config;
pub mod ids;
pub mod parallel;
pub mod rng;
pub mod trace;
pub mod uop;

pub use canon::{CanonicalKey, KeyEncoder};
pub use config::{BranchPredictorConfig, CacheConfig, CoreConfig, FuConfig, UncoreConfig};
pub use ids::{ThreadId, WorkloadClass};
pub use parallel::parallel_map;
pub use rng::SimRng;
pub use trace::{BoxedTrace, TraceGenerator, TraceSource};
pub use uop::{MemAccess, MemKind, MicroOp, OpKind};

/// A cycle count. All simulator timestamps use this type.
pub type Cycle = u64;

/// A logical (architectural) register index inside a thread.
///
/// Workload generators emit dependencies over a small logical register file;
/// the core model maps them to producing ROB entries at dispatch time.
pub type Reg = u8;

/// Number of logical registers visible to workload generators.
pub const NUM_LOGICAL_REGS: usize = 64;
