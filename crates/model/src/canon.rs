//! Canonical byte encoding for experiment identity.
//!
//! The result store in `stretch-bench` memoises simulation runs on disk,
//! keyed by *what was simulated*: core configuration, core setup, workload
//! pairing, seed and simulation length. For that key to be collision-free the
//! encoding must be unambiguous — concatenating variable-length fields bare
//! (as the original `pair_seed` did with workload names) lets distinct inputs
//! produce identical byte streams (`("ab", "c")` vs `("a", "bc")`).
//!
//! [`KeyEncoder`] therefore length-prefixes every variable-length field and
//! tags every enum variant, so the byte stream parses back uniquely (it is a
//! prefix code). [`CanonicalKey`] is implemented by every type that
//! participates in a cache key; crates higher in the stack (`mem_sim`,
//! `cpu_sim`, `qos`) implement it for their own configuration types.
//!
//! The digest over the canonical bytes is 128-bit FNV-1a: not cryptographic,
//! but with an unambiguous input encoding and a 128-bit state, accidental
//! collisions across the few thousand distinct runs of a full reproduction
//! are vanishingly unlikely.

/// Appends an unambiguous (prefix-free) byte encoding of `self` to a
/// [`KeyEncoder`]. Implementations must be *stable*: the same logical value
/// always encodes to the same bytes, across processes and releases (bump the
/// store's version tag when an encoding must change).
pub trait CanonicalKey {
    /// Encodes `self` into `enc`.
    fn encode_key(&self, enc: &mut KeyEncoder);
}

/// Builder for canonical key bytes. Every variable-length field is
/// length-prefixed and every scalar is fixed-width little-endian, so no two
/// distinct field sequences can share an encoding.
#[derive(Debug, Default, Clone)]
pub struct KeyEncoder {
    buf: Vec<u8>,
}

impl KeyEncoder {
    /// Creates an empty encoder.
    pub fn new() -> KeyEncoder {
        KeyEncoder::default()
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends a fixed-width `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `usize` as a fixed-width `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Appends an `f64` by its IEEE-754 bit pattern (so `-0.0` and `0.0`
    /// stay distinct and NaN payloads are preserved).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.buf.push(u8::from(v));
        self
    }

    /// Appends an enum variant tag. Tags only need to be unique within one
    /// type's `encode_key`, because every encoding site is reached through an
    /// unambiguous path from the key root.
    pub fn tag(&mut self, t: u8) -> &mut Self {
        self.buf.push(t);
        self
    }

    /// Appends a nested [`CanonicalKey`] value.
    pub fn field(&mut self, v: &impl CanonicalKey) -> &mut Self {
        v.encode_key(self);
        self
    }

    /// Appends a length-prefixed list of [`CanonicalKey`] values.
    pub fn list<T: CanonicalKey>(&mut self, items: &[T]) -> &mut Self {
        self.usize(items.len());
        for item in items {
            item.encode_key(self);
        }
        self
    }

    /// The canonical bytes accumulated so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder and returns the 128-bit FNV-1a digest of its
    /// bytes as a 32-character lowercase hex string (the result store's
    /// content address).
    pub fn digest(&self) -> String {
        format!("{:032x}", fnv1a_128(&self.buf))
    }
}

/// 128-bit FNV-1a over a byte slice.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

impl<T: CanonicalKey> CanonicalKey for Option<T> {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match self {
            None => {
                enc.tag(0);
            }
            Some(v) => {
                enc.tag(1).field(v);
            }
        }
    }
}

impl CanonicalKey for bool {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.bool(*self);
    }
}

impl CanonicalKey for u32 {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.u64(u64::from(*self));
    }
}

impl CanonicalKey for f64 {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.f64(*self);
    }
}

impl CanonicalKey for u64 {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.u64(*self);
    }
}

impl CanonicalKey for usize {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(*self);
    }
}

impl CanonicalKey for String {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str(self);
    }
}

impl<T: CanonicalKey> CanonicalKey for Vec<T> {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.list(self);
    }
}

impl<T: CanonicalKey> CanonicalKey for [T] {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.list(self);
    }
}

impl CanonicalKey for crate::ThreadId {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.tag(self.index() as u8);
    }
}

impl CanonicalKey for crate::config::CacheConfig {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.capacity_bytes)
            .usize(self.line_bytes)
            .usize(self.ways)
            .usize(self.banks)
            .u64(self.hit_latency);
    }
}

impl CanonicalKey for crate::config::BranchPredictorConfig {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.gshare_entries)
            .usize(self.bimodal_entries)
            .usize(self.chooser_entries)
            .usize(self.btb_entries)
            .usize(self.ras_depth)
            .usize(self.history_bits);
    }
}

impl CanonicalKey for crate::config::FuConfig {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.int_alu).usize(self.int_mul).usize(self.fpu).usize(self.lsu);
    }
}

impl CanonicalKey for crate::config::UncoreConfig {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.llc_capacity_bytes)
            .usize(self.llc_ways)
            .u64(self.llc_latency)
            .u64(self.noc_hop_latency)
            .f64(self.mem_latency_ns)
            .f64(self.freq_ghz);
    }
}

impl CanonicalKey for crate::config::CoreConfig {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.fetch_width)
            .usize(self.fetch_blocks_per_cycle)
            .usize(self.fetch_branches_per_cycle)
            .usize(self.dispatch_width)
            .usize(self.issue_width)
            .usize(self.commit_width)
            .usize(self.rob_capacity)
            .usize(self.lsq_capacity)
            .u64(self.pipeline_flush_cycles)
            .usize(self.mshrs_per_thread)
            .usize(self.prefetcher_pc_slots)
            .field(&self.l1i)
            .field(&self.l1d)
            .field(&self.branch)
            .field(&self.fus)
            .field(&self.uncore)
            .usize(self.fetch_buffer_entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreConfig;

    #[test]
    fn string_fields_are_length_prefixed() {
        let mut a = KeyEncoder::new();
        a.str("ab").str("c");
        let mut b = KeyEncoder::new();
        b.str("a").str("bc");
        assert_ne!(a.bytes(), b.bytes(), "length prefixes must disambiguate field boundaries");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn empty_strings_still_occupy_space() {
        let mut a = KeyEncoder::new();
        a.str("").str("x");
        let mut b = KeyEncoder::new();
        b.str("x").str("");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = KeyEncoder::new();
        a.field(&CoreConfig::default()).u64(42);
        let mut b = KeyEncoder::new();
        b.field(&CoreConfig::default()).u64(42);
        assert_eq!(a.digest(), b.digest());

        let mut c = KeyEncoder::new();
        let cfg = CoreConfig { rob_capacity: 190, ..CoreConfig::default() };
        c.field(&cfg).u64(42);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn option_encoding_is_prefix_free() {
        // None must not collide with Some(anything), and nested Options must
        // keep their structure (policies use Option-bearing keys).
        let mut none = KeyEncoder::new();
        none.field(&Option::<u64>::None);
        let mut some_zero = KeyEncoder::new();
        some_zero.field(&Some(0u64));
        assert_ne!(none.digest(), some_zero.digest());

        let mut a = KeyEncoder::new();
        a.field(&Some(Option::<u64>::None));
        let mut b = KeyEncoder::new();
        b.field(&Option::<Option<u64>>::None);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn fnv_vector() {
        // FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(fnv1a_128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        // One byte mixes the prime in.
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
    }

    #[test]
    fn vec_encoding_is_length_prefixed() {
        // A per-thread share vector of a different SMT width must never
        // collide, even when the flattened scalar stream would be identical.
        let mut smt2 = KeyEncoder::new();
        smt2.field(&vec![96usize, 96]);
        let mut smt4 = KeyEncoder::new();
        smt4.field(&vec![96usize, 96, 0, 0]);
        assert_ne!(smt2.digest(), smt4.digest());

        let mut split_a = KeyEncoder::new();
        split_a.field(&vec![1u64, 2]).field(&vec![3u64]);
        let mut split_b = KeyEncoder::new();
        split_b.field(&vec![1u64]).field(&vec![2u64, 3]);
        assert_ne!(split_a.digest(), split_b.digest());
    }

    #[test]
    fn f64_encoding_distinguishes_signed_zero() {
        let mut a = KeyEncoder::new();
        a.f64(0.0);
        let mut b = KeyEncoder::new();
        b.f64(-0.0);
        assert_ne!(a.digest(), b.digest());
    }
}
