//! Strongly-typed identifiers used across the simulator crates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a hardware thread (SMT context) on the simulated core.
///
/// The modelled core is dual-threaded (like the Intel-style core of Table II),
/// so only two values exist. Using an enum rather than a bare `usize` prevents
/// indexing mistakes between "per-thread" arrays and other arrays.
///
/// ```
/// use sim_model::ThreadId;
/// assert_eq!(ThreadId::T0.other(), ThreadId::T1);
/// assert_eq!(ThreadId::T1.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ThreadId {
    /// Hardware thread 0. By convention the latency-sensitive thread in
    /// colocation experiments, though nothing in the simulator requires it
    /// (the paper explicitly allows either mapping, §IV-D).
    T0,
    /// Hardware thread 1. By convention the batch thread.
    T1,
}

impl ThreadId {
    /// Both hardware threads, in index order.
    pub const ALL: [ThreadId; 2] = [ThreadId::T0, ThreadId::T1];

    /// Returns the array index (0 or 1) for per-thread state vectors.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ThreadId::T0 => 0,
            ThreadId::T1 => 1,
        }
    }

    /// Returns the other hardware thread of the pair.
    #[inline]
    pub fn other(self) -> ThreadId {
        match self {
            ThreadId::T0 => ThreadId::T1,
            ThreadId::T1 => ThreadId::T0,
        }
    }

    /// Builds a `ThreadId` from an array index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 1`.
    #[inline]
    pub fn from_index(index: usize) -> ThreadId {
        match index {
            0 => ThreadId::T0,
            1 => ThreadId::T1,
            _ => panic!("ThreadId::from_index: index {index} out of range (must be 0 or 1)"),
        }
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.index())
    }
}

/// Broad class of a workload, mirroring the paper's terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Interactive services with a tail-latency QoS target
    /// (Data Serving, Web Serving, Web Search, Media Streaming).
    LatencySensitive,
    /// Throughput-oriented batch jobs (the SPEC CPU2006-like suite).
    Batch,
}

impl WorkloadClass {
    /// `true` for latency-sensitive workloads.
    pub fn is_latency_sensitive(self) -> bool {
        matches!(self, WorkloadClass::LatencySensitive)
    }

    /// `true` for batch workloads.
    pub fn is_batch(self) -> bool {
        matches!(self, WorkloadClass::Batch)
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::LatencySensitive => write!(f, "latency-sensitive"),
            WorkloadClass::Batch => write!(f, "batch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_round_trips_through_index() {
        for t in ThreadId::ALL {
            assert_eq!(ThreadId::from_index(t.index()), t);
        }
    }

    #[test]
    fn other_is_an_involution() {
        for t in ThreadId::ALL {
            assert_eq!(t.other().other(), t);
            assert_ne!(t.other(), t);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_large_indices() {
        let _ = ThreadId::from_index(2);
    }

    #[test]
    fn workload_class_predicates() {
        assert!(WorkloadClass::LatencySensitive.is_latency_sensitive());
        assert!(!WorkloadClass::LatencySensitive.is_batch());
        assert!(WorkloadClass::Batch.is_batch());
        assert!(!WorkloadClass::Batch.is_latency_sensitive());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ThreadId::T0.to_string(), "T0");
        assert_eq!(WorkloadClass::Batch.to_string(), "batch");
    }
}
