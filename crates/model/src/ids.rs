//! Strongly-typed identifiers used across the simulator crates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a hardware thread (SMT context) on the simulated core.
///
/// The identifier is an index newtype: a core may host any number of SMT
/// contexts (`T >= 1`), and a `ThreadId` names one of them. Using a newtype
/// rather than a bare `usize` prevents indexing mistakes between "per-thread"
/// arrays and other arrays. The constants [`ThreadId::T0`] / [`ThreadId::T1`]
/// keep the historical dual-threaded call sites readable.
///
/// ```
/// use sim_model::ThreadId;
/// assert_eq!(ThreadId::T0.other(), ThreadId::T1);
/// assert_eq!(ThreadId::T1.index(), 1);
/// assert_eq!(ThreadId::from_index(3).index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(u8);

impl ThreadId {
    /// Hardware thread 0. By convention the latency-sensitive thread in
    /// colocation experiments, though nothing in the simulator requires it
    /// (the paper explicitly allows either mapping, §IV-D).
    pub const T0: ThreadId = ThreadId(0);
    /// Hardware thread 1. By convention the batch thread of the classic pair.
    pub const T1: ThreadId = ThreadId(1);

    /// The two threads of the classic SMT pair, in index order. Wider cores
    /// enumerate their contexts with [`ThreadId::first_n`] instead.
    pub const ALL: [ThreadId; 2] = [ThreadId::T0, ThreadId::T1];

    /// The largest representable thread index + 1.
    pub const MAX_THREADS: usize = 256;

    /// Returns the array index for per-thread state vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the other hardware thread of a *dual-threaded* core.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not part of the classic pair — on a wider core
    /// "the other thread" is not well defined.
    #[inline]
    pub fn other(self) -> ThreadId {
        match self {
            ThreadId::T0 => ThreadId::T1,
            ThreadId::T1 => ThreadId::T0,
            _ => panic!("ThreadId::other: {self} is not part of an SMT pair"),
        }
    }

    /// Builds a `ThreadId` from an array index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ThreadId::MAX_THREADS`.
    #[inline]
    pub fn from_index(index: usize) -> ThreadId {
        assert!(
            index < ThreadId::MAX_THREADS,
            "ThreadId::from_index: index {index} out of range (must be below {})",
            ThreadId::MAX_THREADS
        );
        ThreadId(index as u8)
    }

    /// The first `n` hardware threads, in index order — the contexts of an
    /// SMT-`n` core.
    ///
    /// # Panics
    ///
    /// Panics if `n > ThreadId::MAX_THREADS`.
    pub fn first_n(n: usize) -> impl Iterator<Item = ThreadId> {
        assert!(n <= ThreadId::MAX_THREADS, "SMT width {n} exceeds {}", ThreadId::MAX_THREADS);
        (0..n).map(ThreadId::from_index)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.index())
    }
}

/// Broad class of a workload, mirroring the paper's terminology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Interactive services with a tail-latency QoS target
    /// (Data Serving, Web Serving, Web Search, Media Streaming).
    LatencySensitive,
    /// Throughput-oriented batch jobs (the SPEC CPU2006-like suite).
    Batch,
}

impl WorkloadClass {
    /// `true` for latency-sensitive workloads.
    pub fn is_latency_sensitive(self) -> bool {
        matches!(self, WorkloadClass::LatencySensitive)
    }

    /// `true` for batch workloads.
    pub fn is_batch(self) -> bool {
        matches!(self, WorkloadClass::Batch)
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadClass::LatencySensitive => write!(f, "latency-sensitive"),
            WorkloadClass::Batch => write!(f, "batch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_round_trips_through_index() {
        for t in ThreadId::first_n(16) {
            assert_eq!(ThreadId::from_index(t.index()), t);
        }
    }

    #[test]
    fn other_is_an_involution_on_the_pair() {
        for t in ThreadId::ALL {
            assert_eq!(t.other().other(), t);
            assert_ne!(t.other(), t);
        }
    }

    #[test]
    #[should_panic(expected = "not part of an SMT pair")]
    fn other_rejects_wide_threads() {
        let _ = ThreadId::from_index(2).other();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_large_indices() {
        let _ = ThreadId::from_index(ThreadId::MAX_THREADS);
    }

    #[test]
    fn first_n_enumerates_an_smt4_core() {
        let ids: Vec<usize> = ThreadId::first_n(4).map(ThreadId::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn workload_class_predicates() {
        assert!(WorkloadClass::LatencySensitive.is_latency_sensitive());
        assert!(!WorkloadClass::LatencySensitive.is_batch());
        assert!(WorkloadClass::Batch.is_batch());
        assert!(!WorkloadClass::Batch.is_latency_sensitive());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ThreadId::T0.to_string(), "T0");
        assert_eq!(WorkloadClass::Batch.to_string(), "batch");
    }
}
