//! Deterministic pseudo-random number generation for the simulators.
//!
//! Every stochastic decision in the reproduction (workload address streams,
//! request inter-arrival times, service times, ...) is drawn from a [`SimRng`]
//! seeded explicitly by the experiment harness. This keeps every experiment
//! bit-reproducible and, crucially, lets paired comparisons (e.g. the same
//! colocation under two ROB configurations) observe the *same* instruction
//! stream — the simulator-side analogue of the paper's fixed sampling points
//! (§V-C).
//!
//! The generator is `splitmix64` for seeding plus `xoshiro256++` for the
//! stream; both are tiny, fast and well-studied. We intentionally avoid a
//! dependency on the `rand` crate here so that the core simulation crates
//! carry no external dependencies besides `serde`.

use serde::{Deserialize, Serialize};

/// A small, fast, deterministic PRNG (xoshiro256++) with convenience samplers.
///
/// ```
/// use sim_model::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.uniform_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut s = seed;
        let state =
            [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)];
        SimRng { state }
    }

    /// Derives an independent stream for a sub-component.
    ///
    /// Used to hand each workload / each thread its own stream from a single
    /// experiment seed without correlation between the streams.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F)) // simlint: allow(rng-discipline, "fork derives the child stream from self, whose own seed provenance was checked at construction")
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below called with bound 0");
        // Lemire-style multiply-shift; bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range requires lo < hi (got {lo}..{hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times in the queueing simulator.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.uniform_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Log-normally distributed value with the given median and sigma
    /// (sigma is the standard deviation of the underlying normal).
    ///
    /// Used for per-request service-time distributions, which are heavy-tailed
    /// for real services.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0);
        let n = self.standard_normal();
        median * (sigma * n).exp()
    }

    /// Standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform_f64();
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s` (popularity skew).
    ///
    /// Uses a simple rejection-free inverse-CDF approximation adequate for
    /// modelling request popularity (the paper's clients follow a Zipfian
    /// distribution, §V-B). Complexity is O(1) amortised after an O(n) setup
    /// performed by [`ZipfSampler`].
    pub fn zipf(&mut self, sampler: &ZipfSampler) -> usize {
        sampler.sample(self)
    }

    /// Geometric number of trials until first success with probability `p`
    /// (always at least 1).
    pub fn geometric(&mut self, p: f64) -> u64 {
        let p = p.clamp(1e-12, 1.0);
        let u = 1.0 - self.uniform_f64();
        (u.ln() / (1.0 - p).ln()).floor() as u64 + 1
    }
}

/// Pre-computed cumulative distribution for Zipf sampling over `n` items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with exponent `s` (typically ~0.99 for
    /// web-style popularity).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "ZipfSampler requires at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the sampler covers no items (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform_f64();
        match self.cdf.binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf contains NaN")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should differ");
    }

    #[test]
    fn forked_streams_are_independent_of_order() {
        let mut root1 = SimRng::new(99);
        let fork_a = root1.fork(1);
        let mut root2 = SimRng::new(99);
        let fork_b = root2.fork(1);
        assert_eq!(fork_a, fork_b);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(21);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!((sample_mean - mean).abs() < 0.15, "sample mean {sample_mean} too far from {mean}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let sampler = ZipfSampler::new(100, 0.99);
        let mut rng = SimRng::new(8);
        let mut rank0 = 0usize;
        let mut rank_tail = 0usize;
        for _ in 0..10_000 {
            let r = sampler.sample(&mut rng);
            assert!(r < 100);
            if r == 0 {
                rank0 += 1;
            }
            if r >= 90 {
                rank_tail += 1;
            }
        }
        assert!(rank0 > rank_tail, "rank 0 ({rank0}) should dominate the tail ({rank_tail})");
    }

    #[test]
    fn geometric_is_at_least_one() {
        let mut rng = SimRng::new(12);
        for _ in 0..100 {
            assert!(rng.geometric(0.3) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "bound 0")]
    fn below_zero_bound_panics() {
        SimRng::new(1).below(0);
    }
}
