//! A minimal deterministic worker pool shared by every layer that fans
//! simulation work out over OS threads.
//!
//! [`parallel_map`] preserves input order regardless of scheduling, so a
//! caller that merges its results *in index order* (through the canonical
//! reducers in `sim_stats::reduce`) produces bit-identical output for every
//! worker count. The fleet simulator shards racks through this pool, and the
//! experiment engine runs matrix cells through it; both are checked by the
//! `reduction-order` simlint rule, which treats every `parallel_map` caller
//! as a merge function.
//!
//! This lives in `sim_model` (rather than the bench harness, where it
//! originated) because the cluster simulator — a *dependency* of the bench
//! crate — shards through the same pool.

use std::sync::Mutex;

/// Runs `f` over `items` on a pool of OS threads, preserving input order.
///
/// Work is distributed by an atomic work-stealing index; each worker
/// accumulates `(index, result)` pairs in a thread-local buffer and merges
/// them into the shared output exactly once when it runs out of work, so
/// result writes never contend per item.
///
/// # Examples
///
/// Results always come back in input order, whatever the worker count —
/// which is exactly why an index-order merge over them is deterministic:
///
/// ```
/// use sim_model::parallel_map;
///
/// let squares = parallel_map(vec![1u64, 2, 3, 4], 8, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
///
/// // One worker gives byte-for-byte the same result as eight.
/// assert_eq!(parallel_map(vec![1u64, 2, 3, 4], 1, |&x| x * x), squares);
/// ```
///
/// # Panics
///
/// Panics if `workers == 0`.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let n = items.len();
    let collected: Mutex<Vec<Vec<(usize, R)>>> = Mutex::new(Vec::with_capacity(workers));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let items_ref = &items;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f_ref(&items_ref[i])));
                }
                if !local.is_empty() {
                    collected.lock().expect("no panics while holding the lock").push(local);
                }
            });
        }
    });
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    for chunk in collected.into_inner().expect("scope joined all workers") {
        for (i, r) in chunk {
            results[i] = Some(r);
        }
    }
    results.into_iter().map(|r| r.expect("every index was processed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items, 7, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<u64> = (0..57).collect();
        let one = parallel_map(items.clone(), 1, |&i| i.wrapping_mul(0x9E37_79B9));
        let eight = parallel_map(items, 8, |&i| i.wrapping_mul(0x9E37_79B9));
        assert_eq!(one, eight);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        parallel_map(vec![1], 0, |&x: &i32| x);
    }
}
