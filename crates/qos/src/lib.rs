//! Request-level queueing simulation and QoS slack analysis.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! Section II of the paper establishes two facts on real hardware:
//!
//! 1. tail latency stays far below the QoS target until the load approaches
//!    the sustainable peak (Figure 1), because queueing — not processing
//!    time — dominates latency near saturation;
//! 2. consequently there is *slack*: at low to moderate load, a large
//!    fraction of single-thread performance can be sacrificed without
//!    violating the QoS target (Figure 2).
//!
//! This crate reproduces both studies with a discrete-event queueing
//! simulator whose per-request service times scale inversely with the
//! "performance fraction" delivered by the core — the quantity Stretch's
//! B-mode trades away.
//!
//! * [`service::ServiceSpec`] — the four latency-sensitive services of
//!   Table I (QoS target, tail metric, service-time distribution, and the
//!   [`service::ServiceSpec::slowdown`] mapping from delivered performance
//!   to service-time stretch shared with the fleet simulation).
//! * [`arrival`] — Poisson and bursty (two-state MMPP) open-loop arrivals,
//!   validated at construction ([`arrival::ArrivalProcess::validate`]).
//! * [`server::ServerSim`] — FCFS multi-worker queue, percentile collection.
//! * [`sweep`] — latency-versus-load curves (Figure 1).
//! * [`slack`] — minimum performance meeting QoS per load level (Figure 2).
//!
//! The `cluster_sim` crate scales this single-server model to a datacenter:
//! its fleet simulation dispatches one arrival stream over N servers whose
//! per-request queueing follows the same FCFS/worker mechanics modelled
//! here, and calibrates Stretch's engagement thresholds from the tails the
//! queueing model produces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod server;
pub mod service;
pub mod slack;
pub mod sweep;

pub use arrival::{ArrivalGenerator, ArrivalProcess};
pub use server::{LatencySummary, ServerSim, SimParams};
pub use service::{ServiceSpec, TailMetric};
pub use slack::{slack_curve, SlackPoint};
pub use sweep::{latency_vs_load, LoadPoint};
