//! Open-loop request arrival processes.
//!
//! Request arrivals to real services are bursty: even at a low *average* rate
//! there are short intervals in which requests queue behind one another —
//! the reason latency targets are set at a multiple of the per-request
//! service time (§II). The default process is therefore a two-state MMPP
//! (Markov-modulated Poisson process) that alternates between a calm and a
//! bursty state; a plain Poisson process is also available.

use serde::{Deserialize, Serialize};
use sim_model::SimRng;

/// An open-loop arrival process generating inter-arrival gaps (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at the given average rate (requests per second).
    Poisson {
        /// Average arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Two-state bursty arrivals: most of the time a calm Poisson stream at
    /// `rate_rps`, but with probability `burst_prob` a request initiates a
    /// burst during which arrivals are `burst_factor`× faster for a few
    /// requests.
    Bursty {
        /// Average arrival rate in requests per second.
        rate_rps: f64,
        /// Probability that a request starts a burst.
        burst_prob: f64,
        /// Rate multiplier during a burst.
        burst_factor: f64,
        /// Mean number of requests per burst.
        burst_length: f64,
    },
}

impl ArrivalProcess {
    /// A bursty process with the default burstiness used throughout the
    /// reproduction (bursts of ~12 requests arriving 8× faster, starting on
    /// 8% of requests).
    pub fn bursty(rate_rps: f64) -> ArrivalProcess {
        ArrivalProcess::Bursty { rate_rps, burst_prob: 0.08, burst_factor: 8.0, burst_length: 12.0 }
    }

    /// Average arrival rate in requests per second.
    pub fn rate_rps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_rps } | ArrivalProcess::Bursty { rate_rps, .. } => {
                *rate_rps
            }
        }
    }

    /// Returns the same process at a different average rate.
    pub fn with_rate(&self, rate_rps: f64) -> ArrivalProcess {
        match *self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate_rps },
            ArrivalProcess::Bursty { burst_prob, burst_factor, burst_length, .. } => {
                ArrivalProcess::Bursty { rate_rps, burst_prob, burst_factor, burst_length }
            }
        }
    }
}

/// Stateful generator of arrival timestamps for an [`ArrivalProcess`].
#[derive(Debug, Clone)]
pub struct ArrivalGenerator {
    process: ArrivalProcess,
    rng: SimRng,
    now_ms: f64,
    burst_remaining: u64,
}

impl ArrivalGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the average rate is not positive.
    pub fn new(process: ArrivalProcess, rng: SimRng) -> ArrivalGenerator {
        assert!(process.rate_rps() > 0.0, "arrival rate must be positive");
        ArrivalGenerator { process, rng, now_ms: 0.0, burst_remaining: 0 }
    }

    /// Timestamp (ms) of the next request arrival.
    pub fn next_arrival_ms(&mut self) -> f64 {
        let mean_gap_ms = 1000.0 / self.process.rate_rps();
        let gap = match self.process {
            ArrivalProcess::Poisson { .. } => self.rng.exponential(mean_gap_ms),
            ArrivalProcess::Bursty { burst_prob, burst_factor, burst_length, .. } => {
                // Scale the calm-period gap so the *average* rate stays at the
                // nominal value despite the extra burst requests: each calm
                // request spawns `burst_prob * burst_length` burst requests
                // that each take `1/burst_factor` of a gap.
                let extra = burst_prob * burst_length;
                let correction = (1.0 + extra) / (1.0 + extra / burst_factor);
                let calm_gap = mean_gap_ms * correction;
                if self.burst_remaining > 0 {
                    self.burst_remaining -= 1;
                    self.rng.exponential(calm_gap / burst_factor)
                } else {
                    if self.rng.chance(burst_prob) {
                        self.burst_remaining =
                            self.rng.geometric(1.0 / burst_length.max(1.0)).min(64);
                    }
                    self.rng.exponential(calm_gap)
                }
            }
        };
        self.now_ms += gap;
        self.now_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut g =
            ArrivalGenerator::new(ArrivalProcess::Poisson { rate_rps: 200.0 }, SimRng::new(1));
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = g.next_arrival_ms();
        }
        let measured_rate = n as f64 / (last / 1000.0);
        assert!((measured_rate - 200.0).abs() / 200.0 < 0.05, "rate {measured_rate}");
    }

    #[test]
    fn bursty_mean_rate_is_close_to_nominal() {
        let mut g = ArrivalGenerator::new(ArrivalProcess::bursty(100.0), SimRng::new(2));
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = g.next_arrival_ms();
        }
        let measured_rate = n as f64 / (last / 1000.0);
        // The calm-gap correction keeps the average rate at the nominal value.
        assert!(measured_rate > 88.0 && measured_rate < 115.0, "rate {measured_rate}");
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut g = ArrivalGenerator::new(ArrivalProcess::bursty(50.0), SimRng::new(3));
        let mut prev = 0.0;
        for _ in 0..1000 {
            let t = g.next_arrival_ms();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn with_rate_preserves_shape() {
        let p = ArrivalProcess::bursty(10.0).with_rate(99.0);
        assert_eq!(p.rate_rps(), 99.0);
        match p {
            ArrivalProcess::Bursty { burst_factor, .. } => assert_eq!(burst_factor, 8.0),
            _ => panic!("shape changed"),
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalGenerator::new(ArrivalProcess::Poisson { rate_rps: 0.0 }, SimRng::new(1));
    }
}
