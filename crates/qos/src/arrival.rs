//! Open-loop request arrival processes.
//!
//! Request arrivals to real services are bursty: even at a low *average* rate
//! there are short intervals in which requests queue behind one another —
//! the reason latency targets are set at a multiple of the per-request
//! service time (§II). The default process is therefore a two-state MMPP
//! (Markov-modulated Poisson process) that alternates between a calm and a
//! bursty state; a plain Poisson process is also available.

use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder, SimRng};

/// An open-loop arrival process generating inter-arrival gaps (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at the given average rate (requests per second).
    Poisson {
        /// Average arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Two-state bursty arrivals: most of the time a calm Poisson stream at
    /// `rate_rps`, but with probability `burst_prob` a request initiates a
    /// burst during which arrivals are `burst_factor`× faster for a few
    /// requests.
    Bursty {
        /// Average arrival rate in requests per second.
        rate_rps: f64,
        /// Probability that a request starts a burst.
        burst_prob: f64,
        /// Rate multiplier during a burst.
        burst_factor: f64,
        /// Mean number of requests per burst.
        burst_length: f64,
    },
}

impl ArrivalProcess {
    /// A bursty process with the default burstiness used throughout the
    /// reproduction (bursts of ~12 requests arriving 8× faster, starting on
    /// 8% of requests).
    pub fn bursty(rate_rps: f64) -> ArrivalProcess {
        ArrivalProcess::Bursty { rate_rps, burst_prob: 0.08, burst_factor: 8.0, burst_length: 12.0 }
    }

    /// Validates the process parameters.
    ///
    /// A non-positive (or non-finite) rate would hang the generator's clock;
    /// a `burst_factor` below 1 would make "bursts" *slower* than the calm
    /// stream and push the rate correction negative; a burst probability
    /// outside `[0, 1]` or a burst length below 1 silently degenerates.
    /// These used to surface as NaN timestamps or an unbounded simulation —
    /// now they are rejected at construction time.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent parameter.
    pub fn validate(&self) -> Result<(), String> {
        let rate = self.rate_rps();
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(format!("arrival rate {rate} must be positive and finite"));
        }
        if let ArrivalProcess::Bursty { burst_prob, burst_factor, burst_length, .. } = *self {
            if !(0.0..=1.0).contains(&burst_prob) {
                return Err(format!("burst probability {burst_prob} must be in [0, 1]"));
            }
            if !(burst_factor >= 1.0 && burst_factor.is_finite()) {
                return Err(format!("burst factor {burst_factor} must be >= 1 and finite"));
            }
            if !(burst_length >= 1.0 && burst_length.is_finite()) {
                return Err(format!("burst length {burst_length} must be >= 1 and finite"));
            }
        }
        Ok(())
    }

    /// Average arrival rate in requests per second.
    pub fn rate_rps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_rps } | ArrivalProcess::Bursty { rate_rps, .. } => {
                *rate_rps
            }
        }
    }

    /// Returns the same process at a different average rate.
    pub fn with_rate(&self, rate_rps: f64) -> ArrivalProcess {
        match *self {
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { rate_rps },
            ArrivalProcess::Bursty { burst_prob, burst_factor, burst_length, .. } => {
                ArrivalProcess::Bursty { rate_rps, burst_prob, burst_factor, burst_length }
            }
        }
    }
}

/// Hard cap on the number of requests in one burst (draws above it are
/// truncated). The calm-gap rate correction accounts for this cap through
/// the truncated-geometric mean — see [`truncated_burst_mean`].
const BURST_CAP: u64 = 64;

/// Mean of `min(G, BURST_CAP)` where `G` is the geometric burst-length draw
/// with mean `burst_length` (at least 1): `L · (1 − (1 − 1/L)^cap)`.
///
/// The cap keeps actual bursts far shorter than the nominal mean for large
/// `burst_length` (e.g. ~57 expected requests at `burst_length = 256`), so
/// a correction computed from the *untruncated* mean overestimates the
/// burst traffic, stretches the calm gaps too far, and drags the realised
/// average rate well below nominal. The power is computed by explicit
/// repeated multiplication so the value is platform-identical (`powi` may
/// contract differently across targets).
fn truncated_burst_mean(burst_length: f64) -> f64 {
    let len = burst_length.max(1.0);
    let q = 1.0 - 1.0 / len;
    let mut q_cap = 1.0;
    for _ in 0..BURST_CAP {
        q_cap *= q;
    }
    len * (1.0 - q_cap)
}

/// Stateful generator of arrival timestamps for an [`ArrivalProcess`].
#[derive(Debug, Clone)]
pub struct ArrivalGenerator {
    process: ArrivalProcess,
    rng: SimRng,
    now_ms: f64,
    burst_remaining: u64,
    /// Calm-gap scale keeping the average rate at nominal despite burst
    /// requests; a pure function of the (immutable) process parameters,
    /// precomputed here because the generator sits on the dispatch hot
    /// path.
    calm_correction: f64,
}

impl CanonicalKey for ArrivalProcess {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => {
                enc.tag(0).f64(rate_rps);
            }
            ArrivalProcess::Bursty { rate_rps, burst_prob, burst_factor, burst_length } => {
                enc.tag(1).f64(rate_rps).f64(burst_prob).f64(burst_factor).f64(burst_length);
            }
        }
    }
}

impl ArrivalGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if [`ArrivalProcess::validate`] rejects the process.
    pub fn new(process: ArrivalProcess, rng: SimRng) -> ArrivalGenerator {
        process.validate().expect("invalid arrival process");
        // Scale the calm-period gap so the *average* rate stays at the
        // nominal value despite the extra burst requests: each calm request
        // spawns `burst_prob * E[min(G, BURST_CAP)]` burst requests that each
        // take `1/burst_factor` of a gap. The expectation must be the
        // *truncated*-geometric mean — using the nominal `burst_length`
        // ignores the cap and over-corrects, biasing the realised rate low
        // (fractions of a percent at the default length of 12, ~40% at 256).
        let calm_correction = match process {
            ArrivalProcess::Poisson { .. } => 1.0,
            ArrivalProcess::Bursty { burst_prob, burst_factor, burst_length, .. } => {
                let extra = burst_prob * truncated_burst_mean(burst_length);
                (1.0 + extra) / (1.0 + extra / burst_factor)
            }
        };
        ArrivalGenerator { process, rng, now_ms: 0.0, burst_remaining: 0, calm_correction }
    }

    /// Timestamp (ms) of the next request arrival.
    pub fn next_arrival_ms(&mut self) -> f64 {
        let mean_gap_ms = 1000.0 / self.process.rate_rps();
        let gap = match self.process {
            ArrivalProcess::Poisson { .. } => self.rng.exponential(mean_gap_ms),
            ArrivalProcess::Bursty { burst_prob, burst_factor, burst_length, .. } => {
                let calm_gap = mean_gap_ms * self.calm_correction;
                if self.burst_remaining > 0 {
                    self.burst_remaining -= 1;
                    self.rng.exponential(calm_gap / burst_factor)
                } else {
                    if self.rng.chance(burst_prob) {
                        self.burst_remaining =
                            self.rng.geometric(1.0 / burst_length.max(1.0)).min(BURST_CAP);
                    }
                    self.rng.exponential(calm_gap)
                }
            }
        };
        self.now_ms += gap;
        self.now_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_rate_is_respected() {
        let mut g =
            ArrivalGenerator::new(ArrivalProcess::Poisson { rate_rps: 200.0 }, SimRng::new(1));
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = g.next_arrival_ms();
        }
        let measured_rate = n as f64 / (last / 1000.0);
        assert!((measured_rate - 200.0).abs() / 200.0 < 0.05, "rate {measured_rate}");
    }

    #[test]
    fn bursty_mean_rate_is_close_to_nominal() {
        let mut g = ArrivalGenerator::new(ArrivalProcess::bursty(100.0), SimRng::new(2));
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = g.next_arrival_ms();
        }
        let measured_rate = n as f64 / (last / 1000.0);
        // The calm-gap correction keeps the average rate at the nominal value.
        assert!(measured_rate > 88.0 && measured_rate < 115.0, "rate {measured_rate}");
    }

    #[test]
    fn bursty_rate_is_unbiased_across_burst_lengths() {
        // Regression for the burst-cap rate bias: the calm-gap correction
        // used the untruncated geometric mean while draws are capped at
        // BURST_CAP, so long nominal bursts (>> the cap) dragged the
        // realised rate tens of percent below nominal. The truncated-mean
        // correction keeps it within ~2% at every burst length.
        for (i, burst_length) in [4.0, 32.0, 256.0].into_iter().enumerate() {
            let p = ArrivalProcess::Bursty {
                rate_rps: 100.0,
                burst_prob: 0.08,
                burst_factor: 8.0,
                burst_length,
            };
            let mut g = ArrivalGenerator::new(p, SimRng::new(40 + i as u64));
            let n = 200_000;
            let mut last = 0.0;
            for _ in 0..n {
                last = g.next_arrival_ms();
            }
            let measured_rate = n as f64 / (last / 1000.0);
            assert!(
                (measured_rate - 100.0).abs() / 100.0 < 0.02,
                "burst_length {burst_length}: rate {measured_rate} drifted beyond 2%"
            );
        }
    }

    #[test]
    fn truncated_burst_mean_matches_closed_form_limits() {
        // Degenerate one-request bursts: the truncated mean is exactly 1.
        assert_eq!(truncated_burst_mean(1.0), 1.0);
        // Short bursts are barely truncated: mean stays within 1% of nominal.
        assert!((truncated_burst_mean(12.0) - 12.0).abs() / 12.0 < 0.01);
        // Nominal lengths far beyond the cap saturate near the cap itself.
        let long = truncated_burst_mean(1e9);
        assert!(long < BURST_CAP as f64 && long > BURST_CAP as f64 * 0.99, "mean {long}");
        // Monotone in the nominal length.
        assert!(truncated_burst_mean(32.0) < truncated_burst_mean(256.0));
        assert!(truncated_burst_mean(256.0) < BURST_CAP as f64);
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut g = ArrivalGenerator::new(ArrivalProcess::bursty(50.0), SimRng::new(3));
        let mut prev = 0.0;
        for _ in 0..1000 {
            let t = g.next_arrival_ms();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn with_rate_preserves_shape() {
        let p = ArrivalProcess::bursty(10.0).with_rate(99.0);
        assert_eq!(p.rate_rps(), 99.0);
        match p {
            ArrivalProcess::Bursty { burst_factor, .. } => assert_eq!(burst_factor, 8.0),
            _ => panic!("shape changed"),
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalGenerator::new(ArrivalProcess::Poisson { rate_rps: 0.0 }, SimRng::new(1));
    }

    #[test]
    #[should_panic(expected = "burst factor")]
    fn sub_unit_burst_factor_rejected() {
        // A burst factor below 1 would make the calm-gap correction negative
        // (silent NaN timestamps before validation existed).
        let p = ArrivalProcess::Bursty {
            rate_rps: 100.0,
            burst_prob: 0.1,
            burst_factor: 0.5,
            burst_length: 8.0,
        };
        let _ = ArrivalGenerator::new(p, SimRng::new(1));
    }

    #[test]
    #[should_panic(expected = "burst probability")]
    fn out_of_range_burst_probability_rejected() {
        let p = ArrivalProcess::Bursty {
            rate_rps: 100.0,
            burst_prob: 1.5,
            burst_factor: 8.0,
            burst_length: 8.0,
        };
        let _ = ArrivalGenerator::new(p, SimRng::new(1));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rate_rejected() {
        let _ =
            ArrivalGenerator::new(ArrivalProcess::Poisson { rate_rps: f64::NAN }, SimRng::new(1));
    }

    #[test]
    fn default_processes_validate() {
        assert!(ArrivalProcess::bursty(100.0).validate().is_ok());
        assert!(ArrivalProcess::Poisson { rate_rps: 1.0 }.validate().is_ok());
        assert!(
            ArrivalProcess::Bursty {
                rate_rps: 100.0,
                burst_prob: 0.1,
                burst_factor: 8.0,
                burst_length: 0.5,
            }
            .validate()
            .is_err(),
            "burst length below one request must be rejected"
        );
    }

    #[test]
    fn canonical_keys_distinguish_shape_and_rate() {
        use sim_model::KeyEncoder;
        let digest = |p: &ArrivalProcess| {
            let mut enc = KeyEncoder::new();
            p.encode_key(&mut enc);
            enc.digest()
        };
        let poisson = ArrivalProcess::Poisson { rate_rps: 100.0 };
        let bursty = ArrivalProcess::bursty(100.0);
        assert_ne!(digest(&poisson), digest(&bursty));
        assert_ne!(digest(&bursty), digest(&ArrivalProcess::bursty(200.0)));
        assert_eq!(digest(&bursty), digest(&ArrivalProcess::bursty(100.0)));
    }
}
