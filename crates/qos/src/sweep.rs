//! Latency-versus-load sweeps (Figure 1).

use crate::arrival::ArrivalProcess;
use crate::server::{LatencySummary, ServerSim, SimParams};
use crate::service::ServiceSpec;
use serde::{Deserialize, Serialize};

/// One point of a latency-versus-load curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Load as a fraction of the peak sustainable load (0–1].
    pub load: f64,
    /// Latency summary at that load.
    pub latency: LatencySummary,
}

/// Sweeps load from `min_load` to 1.0 in `steps` equal steps and reports the
/// latency summary at each point, as in Figure 1.
///
/// The peak sustainable load is determined first at full performance; all
/// points are expressed relative to it.
///
/// # Panics
///
/// Panics if `steps == 0` or `min_load` is not in `(0, 1)`.
pub fn latency_vs_load(
    spec: &ServiceSpec,
    params: SimParams,
    min_load: f64,
    steps: usize,
) -> Vec<LoadPoint> {
    assert!(steps > 0, "need at least one load step");
    assert!(min_load > 0.0 && min_load < 1.0, "min_load must be in (0, 1)");
    let sim = ServerSim::new(spec.clone(), ArrivalProcess::bursty(100.0));
    let peak = sim.find_peak_load_rps(params);
    let mut points = Vec::with_capacity(steps);
    for i in 0..steps {
        let load = if steps == 1 {
            1.0
        } else {
            min_load + (1.0 - min_load) * i as f64 / (steps - 1) as f64
        };
        let latency = sim.run_at_load(load, peak, params);
        points.push(LoadPoint { load, latency });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_monotone_loads_and_growing_tail() {
        let points = latency_vs_load(&ServiceSpec::web_search(), SimParams::quick(13), 0.1, 6);
        assert_eq!(points.len(), 6);
        for pair in points.windows(2) {
            assert!(pair[1].load > pair[0].load);
        }
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!((last.load - 1.0).abs() < 1e-9);
        assert!(last.latency.p99_ms > first.latency.p99_ms);
    }

    #[test]
    fn qos_met_at_every_subpeak_point_at_full_performance() {
        let spec = ServiceSpec::web_search();
        let points = latency_vs_load(&spec, SimParams::quick(17), 0.1, 5);
        for p in &points[..points.len() - 1] {
            assert!(
                p.latency.p99_ms <= spec.qos_target_ms * 1.1,
                "sub-peak load {} should be near or under the target (p99 {:.1} ms)",
                p.load,
                p.latency.p99_ms
            );
        }
    }

    #[test]
    #[should_panic(expected = "min_load")]
    fn invalid_min_load_rejected() {
        let _ = latency_vs_load(&ServiceSpec::web_search(), SimParams::quick(1), 1.5, 3);
    }
}
