//! Discrete-event simulation of one latency-sensitive server.
//!
//! Requests arrive open-loop, wait in a FCFS queue for one of the service's
//! worker threads, and are processed for a log-normally distributed service
//! time whose median is scaled by `1 / performance_fraction` — degrading the
//! core's single-thread performance stretches every request proportionally.
//! Sojourn (queueing + service) times are collected and summarised.

use crate::arrival::{ArrivalGenerator, ArrivalProcess};
use crate::service::ServiceSpec;
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder, SimRng};
use sim_stats::Percentiles;

/// Parameters of one server simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Number of requests to simulate (after warm-up).
    pub requests: usize,
    /// Requests discarded as warm-up.
    pub warmup_requests: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of full single-thread performance delivered to the service
    /// (1.0 = full core; 0.25 = request processing takes 4× as long).
    pub performance_fraction: f64,
}

impl SimParams {
    /// Default run: 20 000 measured requests after 2 000 warm-up requests at
    /// full performance.
    pub fn standard(seed: u64) -> SimParams {
        SimParams { requests: 20_000, warmup_requests: 2_000, seed, performance_fraction: 1.0 }
    }

    /// A smaller run for tests.
    pub fn quick(seed: u64) -> SimParams {
        SimParams { requests: 4_000, warmup_requests: 400, seed, performance_fraction: 1.0 }
    }

    /// Returns a copy with a different performance fraction.
    pub fn with_performance(mut self, fraction: f64) -> SimParams {
        self.performance_fraction = fraction;
        self
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns an error when the run would measure nothing or the
    /// performance fraction is not in `(0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("need at least one measured request".into());
        }
        if !(self.performance_fraction > 0.0 && self.performance_fraction <= 1.0) {
            return Err(format!(
                "performance fraction {} must be in (0, 1]",
                self.performance_fraction
            ));
        }
        Ok(())
    }
}

impl CanonicalKey for SimParams {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.requests)
            .usize(self.warmup_requests)
            .u64(self.seed)
            .f64(self.performance_fraction);
    }
}

/// Latency summary of a run (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean sojourn time.
    pub mean_ms: f64,
    /// 95th percentile sojourn time.
    pub p95_ms: f64,
    /// 99th percentile sojourn time.
    pub p99_ms: f64,
    /// 99.5th percentile sojourn time (the "timeout" metric).
    pub p995_ms: f64,
    /// Maximum observed sojourn time.
    pub max_ms: f64,
    /// Number of measured requests.
    pub requests: usize,
}

impl LatencySummary {
    /// The latency value corresponding to a service's tail metric.
    pub fn tail(&self, metric: crate::service::TailMetric) -> f64 {
        match metric {
            crate::service::TailMetric::P95 => self.p95_ms,
            crate::service::TailMetric::P99 => self.p99_ms,
            crate::service::TailMetric::Timeout => self.p995_ms,
        }
    }
}

/// The discrete-event server simulator.
#[derive(Debug, Clone)]
pub struct ServerSim {
    spec: ServiceSpec,
    arrivals: ArrivalProcess,
}

impl ServerSim {
    /// Creates a simulator for `spec` with the given arrival process.
    ///
    /// # Panics
    ///
    /// Panics if the service specification or the arrival process is invalid.
    pub fn new(spec: ServiceSpec, arrivals: ArrivalProcess) -> ServerSim {
        spec.validate().expect("invalid service spec");
        arrivals.validate().expect("invalid arrival process");
        ServerSim { spec, arrivals }
    }

    /// The service being simulated.
    pub fn spec(&self) -> &ServiceSpec {
        &self.spec
    }

    /// The peak sustainable arrival rate (requests/second) at full
    /// performance: the highest rate at which the tail-latency target is
    /// still met. Determined by bisection over simulation runs, mirroring
    /// how the paper establishes each service's peak load empirically.
    pub fn find_peak_load_rps(&self, params: SimParams) -> f64 {
        // Upper bound: the no-queueing throughput of all workers.
        let mean_service_ms = self.spec.mean_service_ms(params.performance_fraction);
        let capacity_rps = self.spec.workers as f64 * 1000.0 / mean_service_ms;
        let mut lo = capacity_rps * 0.05;
        let mut hi = capacity_rps;
        // If even 5% of capacity violates QoS the configuration is hopeless.
        if !self.meets_qos(lo, params) {
            return 0.0;
        }
        for _ in 0..12 {
            let mid = 0.5 * (lo + hi);
            if self.meets_qos(mid, params) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Whether the QoS target is met at the given arrival rate.
    pub fn meets_qos(&self, rate_rps: f64, params: SimParams) -> bool {
        let summary = self.run_at_rate(rate_rps, params);
        summary.tail(self.spec.tail_metric) <= self.spec.qos_target_ms
    }

    /// Runs the simulation at an absolute arrival rate.
    pub fn run_at_rate(&self, rate_rps: f64, params: SimParams) -> LatencySummary {
        params.validate().expect("invalid simulation parameters");
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        let mut rng = SimRng::new(params.seed);
        let arrival_rng = rng.fork(1);
        let service_rng = rng.fork(2);
        let mut arrivals = ArrivalGenerator::new(self.arrivals.with_rate(rate_rps), arrival_rng);
        // Only the CPU-bound portion of the service time stretches when the
        // core delivers less single-thread performance.
        let slowdown = self.spec.slowdown(params.performance_fraction);
        let mut service = ServiceTimes {
            rng: service_rng,
            median_ms: self.spec.service_median_ms * slowdown,
            sigma: self.spec.service_sigma,
        };

        // Worker availability times (ms). A request starts on the earliest
        // available worker, no earlier than its arrival.
        let mut workers = vec![0.0f64; self.spec.workers];
        let mut sojourn = Percentiles::new();
        let total = params.warmup_requests + params.requests;
        for i in 0..total {
            let arrival = arrivals.next_arrival_ms();
            // Earliest-available worker (FCFS with greedy assignment).
            let (widx, &avail) = workers
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN worker times"))
                .expect("at least one worker");
            let start = arrival.max(avail);
            let service_time = service.draw();
            let finish = start + service_time;
            workers[widx] = finish;
            if i >= params.warmup_requests {
                sojourn.record(finish - arrival);
            }
        }

        LatencySummary {
            mean_ms: sojourn.mean().unwrap_or(0.0),
            p95_ms: sojourn.percentile(95.0).unwrap_or(0.0),
            p99_ms: sojourn.percentile(99.0).unwrap_or(0.0),
            p995_ms: sojourn.percentile(99.5).unwrap_or(0.0),
            max_ms: sojourn.max().unwrap_or(0.0),
            requests: sojourn.len(),
        }
    }

    /// Runs the simulation at a load expressed as a fraction of the peak
    /// sustainable load (`load` in `(0, 1]`), where the peak was measured at
    /// *full* performance. This matches the paper's methodology: the X axes
    /// of Figures 1 and 2 are percentages of each service's maximum
    /// QoS-compliant load.
    pub fn run_at_load(&self, load: f64, peak_rps: f64, params: SimParams) -> LatencySummary {
        assert!(load > 0.0 && load <= 1.001, "load must be a fraction of peak (got {load})");
        self.run_at_rate(load * peak_rps, params)
    }
}

#[derive(Debug, Clone)]
struct ServiceTimes {
    rng: SimRng,
    median_ms: f64,
    sigma: f64,
}

impl ServiceTimes {
    fn draw(&mut self) -> f64 {
        self.rng.log_normal(self.median_ms, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::TailMetric;

    fn web_search_sim() -> ServerSim {
        ServerSim::new(ServiceSpec::web_search(), ArrivalProcess::bursty(100.0))
    }

    #[test]
    fn tail_latency_grows_with_load() {
        let sim = web_search_sim();
        let params = SimParams::quick(7);
        let peak = sim.find_peak_load_rps(params);
        assert!(peak > 0.0);
        let low = sim.run_at_load(0.2, peak, params);
        let high = sim.run_at_load(0.95, peak, params);
        assert!(
            high.p99_ms > low.p99_ms * 1.5,
            "p99 must grow sharply near saturation (low={:.1}, high={:.1})",
            low.p99_ms,
            high.p99_ms
        );
        assert!(high.mean_ms > low.mean_ms);
    }

    #[test]
    fn p99_grows_faster_than_mean() {
        // Figure 1's observation: the mean climbs slowly, the tail explodes.
        let sim = web_search_sim();
        let params = SimParams::quick(11);
        let peak = sim.find_peak_load_rps(params);
        let low = sim.run_at_load(0.1, peak, params);
        let high = sim.run_at_load(1.0, peak, params);
        let mean_growth = high.mean_ms / low.mean_ms;
        let p99_growth = high.p99_ms / low.p99_ms;
        assert!(
            p99_growth > mean_growth,
            "tail should grow faster than the mean (mean×{mean_growth:.2}, p99×{p99_growth:.2})"
        );
    }

    #[test]
    fn peak_load_meets_qos_and_above_peak_violates() {
        let sim = web_search_sim();
        let params = SimParams::quick(3);
        let peak = sim.find_peak_load_rps(params);
        assert!(sim.meets_qos(peak * 0.9, params));
        assert!(!sim.meets_qos(peak * 1.5, params));
    }

    #[test]
    fn degraded_performance_inflates_latency() {
        let sim = web_search_sim();
        let params = SimParams::quick(5);
        let peak = sim.find_peak_load_rps(params);
        let full = sim.run_at_load(0.3, peak, params);
        let degraded = sim.run_at_load(0.3, peak, params.with_performance(0.25));
        assert!(
            degraded.p99_ms > full.p99_ms * 1.5,
            "quartering performance should sharply inflate the tail at moderate load \
             (full={:.1} ms, degraded={:.1} ms)",
            full.p99_ms,
            degraded.p99_ms
        );
    }

    #[test]
    fn slack_exists_at_low_load() {
        // At 20% of peak load, Web Search should still meet QoS with a badly
        // degraded core — the crux of the paper's Section II.
        let sim = web_search_sim();
        let params = SimParams::quick(9);
        let peak = sim.find_peak_load_rps(params);
        let degraded = sim.run_at_load(0.2, peak, params.with_performance(0.35));
        assert!(
            degraded.p99_ms <= sim.spec().qos_target_ms,
            "at 20% load, 35% of full performance should still meet the 100 ms target \
             (got {:.1} ms)",
            degraded.p99_ms
        );
    }

    #[test]
    fn summary_tail_selector() {
        let s = LatencySummary {
            mean_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            p995_ms: 4.0,
            max_ms: 5.0,
            requests: 10,
        };
        assert_eq!(s.tail(TailMetric::P95), 2.0);
        assert_eq!(s.tail(TailMetric::P99), 3.0);
        assert_eq!(s.tail(TailMetric::Timeout), 4.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let sim = web_search_sim();
        let a = sim.run_at_rate(300.0, SimParams::quick(42));
        let b = sim.run_at_rate(300.0, SimParams::quick(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "performance fraction")]
    fn invalid_performance_fraction_rejected() {
        let sim = web_search_sim();
        let _ = sim.run_at_rate(100.0, SimParams::quick(1).with_performance(0.0));
    }
}
