//! Latency-sensitive service specifications (Table I).

use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder};

/// Which statistic of the latency distribution the QoS target constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TailMetric {
    /// 95th percentile latency.
    P95,
    /// 99th percentile latency.
    P99,
    /// A hard timeout: modelled as the 99.5th percentile staying below the
    /// target (Media Streaming's "2 s timeout" criterion).
    Timeout,
}

impl TailMetric {
    /// The percentile (0–100) evaluated for this metric.
    pub fn percentile(self) -> f64 {
        match self {
            TailMetric::P95 => 95.0,
            TailMetric::P99 => 99.0,
            TailMetric::Timeout => 99.5,
        }
    }
}

impl CanonicalKey for TailMetric {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.tag(match self {
            TailMetric::P95 => 0,
            TailMetric::P99 => 1,
            TailMetric::Timeout => 2,
        });
    }
}

/// A latency-sensitive service: its QoS target and service-time distribution.
///
/// Service times are log-normal (heavy-tailed, as observed for interactive
/// services); the median scales inversely with the performance fraction the
/// core delivers to the service's thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Service name (matches the `workloads` crate naming).
    pub name: String,
    /// QoS latency target in milliseconds.
    pub qos_target_ms: f64,
    /// Which tail statistic the target constrains.
    pub tail_metric: TailMetric,
    /// Median per-request service time in milliseconds at full single-thread
    /// performance.
    pub service_median_ms: f64,
    /// Sigma of the underlying normal (controls the service-time tail).
    pub service_sigma: f64,
    /// Fraction of the service time that is CPU-bound and therefore scales
    /// with the inverse of the delivered single-thread performance; the rest
    /// (I/O, network, lock waits) is unaffected by core slowdown. This is why
    /// Elfen-style duty-cycling can take away most of the core without
    /// inflating request latency proportionally.
    pub cpu_fraction: f64,
    /// Number of worker threads processing requests in parallel on one server.
    pub workers: usize,
}

impl CanonicalKey for ServiceSpec {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str(&self.name)
            .f64(self.qos_target_ms)
            .field(&self.tail_metric)
            .f64(self.service_median_ms)
            .f64(self.service_sigma)
            .f64(self.cpu_fraction)
            .usize(self.workers);
    }
}

impl ServiceSpec {
    /// Data Serving (Cassandra): 20 ms 99th-percentile target.
    pub fn data_serving() -> ServiceSpec {
        ServiceSpec {
            name: "data-serving".to_string(),
            qos_target_ms: 20.0,
            tail_metric: TailMetric::P99,
            service_median_ms: 1.6,
            service_sigma: 0.55,
            cpu_fraction: 0.55,
            workers: 8,
        }
    }

    /// Web Serving (Elgg/Nginx + MySQL): 1 s 95th-percentile target.
    pub fn web_serving() -> ServiceSpec {
        ServiceSpec {
            name: "web-serving".to_string(),
            qos_target_ms: 1000.0,
            tail_metric: TailMetric::P95,
            service_median_ms: 110.0,
            service_sigma: 0.5,
            cpu_fraction: 0.5,
            workers: 8,
        }
    }

    /// Web Search (Nutch/Lucene): 100 ms 99th-percentile target.
    pub fn web_search() -> ServiceSpec {
        ServiceSpec {
            name: "web-search".to_string(),
            qos_target_ms: 100.0,
            tail_metric: TailMetric::P99,
            service_median_ms: 9.0,
            service_sigma: 0.45,
            cpu_fraction: 0.5,
            workers: 8,
        }
    }

    /// Media Streaming (Darwin): 2 s timeout criterion.
    pub fn media_streaming() -> ServiceSpec {
        ServiceSpec {
            name: "media-streaming".to_string(),
            qos_target_ms: 2000.0,
            tail_metric: TailMetric::Timeout,
            service_median_ms: 230.0,
            service_sigma: 0.45,
            cpu_fraction: 0.35,
            workers: 8,
        }
    }

    /// All four services, in Table I order.
    pub fn all() -> Vec<ServiceSpec> {
        vec![
            ServiceSpec::data_serving(),
            ServiceSpec::web_serving(),
            ServiceSpec::web_search(),
            ServiceSpec::media_streaming(),
        ]
    }

    /// Looks a service up by name.
    pub fn by_name(name: &str) -> Option<ServiceSpec> {
        ServiceSpec::all().into_iter().find(|s| s.name == name)
    }

    /// The factor by which a request's service time stretches when the core
    /// delivers only `performance_fraction` of full single-thread
    /// performance: only the CPU-bound portion of the service time scales,
    /// the rest (I/O, network, lock waits) is unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `performance_fraction` is not in `(0, 1]`.
    pub fn slowdown(&self, performance_fraction: f64) -> f64 {
        assert!(
            performance_fraction > 0.0 && performance_fraction <= 1.0,
            "{}: performance fraction {performance_fraction} must be in (0, 1]",
            self.name
        );
        self.cpu_fraction / performance_fraction + (1.0 - self.cpu_fraction)
    }

    /// Mean per-request service time (ms) at the given delivered
    /// performance: the log-normal mean `median · exp(σ²/2)` scaled by
    /// [`ServiceSpec::slowdown`]. This is the quantity capacity ceilings are
    /// computed from (a server's no-queueing throughput is
    /// `workers / mean`), shared by the single-server peak finder and the
    /// fleet's.
    ///
    /// # Panics
    ///
    /// Panics if `performance_fraction` is not in `(0, 1]`.
    pub fn mean_service_ms(&self, performance_fraction: f64) -> f64 {
        self.service_median_ms
            * (self.service_sigma * self.service_sigma / 2.0).exp()
            * self.slowdown(performance_fraction)
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (non-positive or
    /// non-finite times, zero workers, or a target below the bare service
    /// median). The comparisons are written so NaN parameters fail too
    /// instead of slipping through and poisoning every percentile.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.qos_target_ms > 0.0
            && self.qos_target_ms.is_finite()
            && self.service_median_ms > 0.0
            && self.service_median_ms.is_finite())
        {
            return Err(format!("{}: latencies must be positive and finite", self.name));
        }
        if self.workers == 0 {
            return Err(format!("{}: need at least one worker", self.name));
        }
        if !(self.service_sigma >= 0.0 && self.service_sigma.is_finite()) {
            return Err(format!("{}: sigma must be non-negative and finite", self.name));
        }
        if !(self.cpu_fraction > 0.0 && self.cpu_fraction <= 1.0) {
            return Err(format!(
                "{}: cpu_fraction {} must be in (0, 1]",
                self.name, self.cpu_fraction
            ));
        }
        if self.qos_target_ms <= self.service_median_ms {
            return Err(format!(
                "{}: QoS target {} ms is not achievable with median service time {} ms",
                self.name, self.qos_target_ms, self.service_median_ms
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_services_match_table_i() {
        let all = ServiceSpec::all();
        assert_eq!(all.len(), 4);
        let ws = ServiceSpec::web_search();
        assert_eq!(ws.qos_target_ms, 100.0);
        assert_eq!(ws.tail_metric, TailMetric::P99);
        let ds = ServiceSpec::data_serving();
        assert_eq!(ds.qos_target_ms, 20.0);
        let wsv = ServiceSpec::web_serving();
        assert_eq!(wsv.tail_metric, TailMetric::P95);
        let ms = ServiceSpec::media_streaming();
        assert_eq!(ms.qos_target_ms, 2000.0);
    }

    #[test]
    fn all_specs_validate() {
        for s in ServiceSpec::all() {
            s.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(ServiceSpec::by_name("web-search").is_some());
        assert!(ServiceSpec::by_name("nope").is_none());
    }

    #[test]
    fn broken_specs_rejected() {
        let mut s = ServiceSpec::web_search();
        s.workers = 0;
        assert!(s.validate().is_err());
        let mut s = ServiceSpec::web_search();
        s.service_median_ms = 200.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn nan_parameters_no_longer_slip_through_validation() {
        for field in 0..3 {
            let mut s = ServiceSpec::web_search();
            match field {
                0 => s.qos_target_ms = f64::NAN,
                1 => s.service_median_ms = f64::NAN,
                _ => s.service_sigma = f64::NAN,
            }
            assert!(s.validate().is_err(), "NaN field {field} must be rejected");
        }
        let mut s = ServiceSpec::web_search();
        s.service_median_ms = f64::INFINITY;
        assert!(s.validate().is_err());
    }

    #[test]
    fn slowdown_scales_only_the_cpu_bound_fraction() {
        let s = ServiceSpec::web_search(); // cpu_fraction 0.5
        assert!((s.slowdown(1.0) - 1.0).abs() < 1e-12);
        // Halving performance doubles the CPU part: 0.5*2 + 0.5 = 1.5.
        assert!((s.slowdown(0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "performance fraction")]
    fn slowdown_rejects_zero_performance() {
        let _ = ServiceSpec::web_search().slowdown(0.0);
    }

    #[test]
    fn tail_metric_percentiles() {
        assert_eq!(TailMetric::P95.percentile(), 95.0);
        assert_eq!(TailMetric::P99.percentile(), 99.0);
        assert!(TailMetric::Timeout.percentile() > 99.0);
    }
}
