//! Performance-slack analysis (Figure 2).
//!
//! At a given load, the *slack* is the amount of single-thread performance
//! that can be sacrificed while still meeting the QoS target. Figure 2
//! reports the complementary quantity — the minimum fraction of full-core
//! performance required — as a function of load. This module computes it by
//! searching over the performance fraction at each load level, exactly as the
//! paper does with its Elfen-style duty-cycle modulation.

use crate::arrival::ArrivalProcess;
use crate::server::{ServerSim, SimParams};
use crate::service::ServiceSpec;
use serde::{Deserialize, Serialize};

/// One point of the slack curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlackPoint {
    /// Load as a fraction of the peak sustainable load.
    pub load: f64,
    /// Minimum fraction of full single-thread performance that still meets
    /// the QoS target at this load (1.0 when even full performance barely
    /// suffices, smaller when there is slack). When [`SlackPoint::feasible`]
    /// is `false` this is 1.0 as well, but the target is *not* met — use
    /// [`SlackPoint::required`] to keep the two cases apart.
    pub required_performance: f64,
    /// Whether the QoS target is met at all at this load. `false` means even
    /// full single-thread performance violates the target, so the load point
    /// has no feasible operating fraction (and zero slack by definition).
    pub feasible: bool,
}

impl SlackPoint {
    /// Slack: the fraction of performance that can be given away, or zero
    /// when the load point is infeasible.
    pub fn slack(&self) -> f64 {
        if self.feasible {
            1.0 - self.required_performance
        } else {
            0.0
        }
    }

    /// The minimum feasible performance fraction, or `None` when the target
    /// is unmet at any fraction (distinguishing "full performance barely
    /// suffices" from "full performance is not enough").
    pub fn required(&self) -> Option<f64> {
        self.feasible.then_some(self.required_performance)
    }

    /// Whether a policy that delivers `performance` (a fraction of full
    /// single-thread performance, e.g. an Elfen duty cycle or a Stretch
    /// mode's measured `ls_performance`) still meets the QoS target at this
    /// load point. Infeasible points are met by no delivered performance.
    pub fn met_by(&self, performance: f64) -> bool {
        self.feasible && performance >= self.required_performance
    }
}

/// Computes the required-performance curve of Figure 2 for one service.
///
/// `loads` lists the load fractions to evaluate (the paper uses 10%–100% in
/// 10% steps). The search over performance fractions uses the same
/// granularity as the figure (5% steps).
///
/// # Panics
///
/// Panics if `loads` is empty or contains values outside `(0, 1]`.
pub fn slack_curve(spec: &ServiceSpec, params: SimParams, loads: &[f64]) -> Vec<SlackPoint> {
    assert!(!loads.is_empty(), "need at least one load point");
    let sim = ServerSim::new(spec.clone(), ArrivalProcess::bursty(100.0));
    let peak = sim.find_peak_load_rps(params);
    loads
        .iter()
        .map(|&load| {
            assert!(load > 0.0 && load <= 1.0, "load {load} outside (0, 1]");
            // A zero peak means the target is unmet even at a trickle of
            // requests — every load point is infeasible.
            let (required_performance, feasible) = if peak > 0.0 {
                required_performance(&sim, peak, load, params)
            } else {
                (1.0, false)
            };
            SlackPoint { load, required_performance, feasible }
        })
        .collect()
}

/// Minimum performance fraction (searched in 5% steps) meeting QoS at
/// `load`, plus whether the target is feasible at all. The search walks from
/// full performance downwards and stops at the first violation; if the very
/// first step (full performance) already violates the target, the point is
/// infeasible rather than "requires 1.0".
fn required_performance(
    sim: &ServerSim,
    peak_rps: f64,
    load: f64,
    params: SimParams,
) -> (f64, bool) {
    let target = sim.spec().qos_target_ms;
    let metric = sim.spec().tail_metric;
    let mut required = 1.0;
    let mut feasible = false;
    let steps: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
    for &fraction in steps.iter().rev() {
        let summary = sim.run_at_load(load, peak_rps, params.with_performance(fraction));
        if summary.tail(metric) <= target {
            required = fraction;
            feasible = true;
        } else {
            break;
        }
    }
    (required, feasible)
}

/// The standard load grid of Figure 2: 10% to 100% in 10% steps.
pub fn standard_loads() -> Vec<f64> {
    (1..=10).map(|i| i as f64 * 0.1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_shrinks_as_load_grows() {
        let points =
            slack_curve(&ServiceSpec::web_search(), SimParams::quick(23), &[0.2, 0.5, 0.9]);
        assert_eq!(points.len(), 3);
        assert!(
            points[0].required_performance <= points[1].required_performance,
            "20% load should need no more performance than 50% load"
        );
        assert!(
            points[1].required_performance <= points[2].required_performance,
            "50% load should need no more performance than 90% load"
        );
    }

    #[test]
    fn low_load_has_large_slack_high_load_has_little() {
        let points = slack_curve(&ServiceSpec::web_search(), SimParams::quick(29), &[0.2, 0.9]);
        assert!(
            points[0].slack() >= 0.5,
            "at 20% load at least half of the performance should be slack (got {:.2})",
            points[0].slack()
        );
        assert!(
            points[1].slack() <= 0.4,
            "at 90% load little slack should remain (got {:.2})",
            points[1].slack()
        );
    }

    #[test]
    fn standard_grid_is_ten_points() {
        let loads = standard_loads();
        assert_eq!(loads.len(), 10);
        assert!((loads[0] - 0.1).abs() < 1e-12);
        assert!((loads[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slack_is_complement_of_required_performance() {
        let p = SlackPoint { load: 0.3, required_performance: 0.4, feasible: true };
        assert!((p.slack() - 0.6).abs() < 1e-12);
        assert_eq!(p.required(), Some(0.4));
    }

    #[test]
    fn met_by_compares_delivered_performance_against_the_requirement() {
        let p = SlackPoint { load: 0.3, required_performance: 0.4, feasible: true };
        assert!(p.met_by(0.4), "delivering exactly the requirement meets the target");
        assert!(p.met_by(0.8));
        assert!(!p.met_by(0.35));
        let unmet = SlackPoint { load: 1.0, required_performance: 1.0, feasible: false };
        assert!(!unmet.met_by(1.0), "an infeasible point is met by no duty cycle");
    }

    #[test]
    fn infeasible_point_is_distinguishable_from_barely_feasible() {
        let barely = SlackPoint { load: 1.0, required_performance: 1.0, feasible: true };
        let unmet = SlackPoint { load: 1.0, required_performance: 1.0, feasible: false };
        assert_eq!(barely.required(), Some(1.0));
        assert_eq!(unmet.required(), None);
        assert!((barely.slack()).abs() < 1e-12);
        assert!((unmet.slack()).abs() < 1e-12);
        assert_ne!(barely, unmet, "the flag must survive comparisons and serialisation");
    }

    #[test]
    fn impossible_qos_target_reports_infeasible_loads() {
        // A tail target barely above the *median* service time cannot be met
        // by a heavy-tailed (log-normal) service at any performance fraction
        // or load: the p99 always exceeds the median by far more than 1%.
        let mut spec = ServiceSpec::web_search();
        spec.qos_target_ms = spec.service_median_ms * 1.01;
        let points = slack_curve(&spec, SimParams::quick(5), &[0.2, 0.9]);
        for p in &points {
            assert!(
                !p.feasible,
                "target {} ms must be unmet at load {}",
                spec.qos_target_ms, p.load
            );
            assert_eq!(p.required(), None);
            assert!((p.slack()).abs() < 1e-12);
        }
    }

    #[test]
    fn feasible_loads_are_marked_feasible() {
        let points = slack_curve(&ServiceSpec::web_search(), SimParams::quick(23), &[0.2]);
        assert!(points[0].feasible, "web-search at 20% load meets its target at full perf");
    }

    #[test]
    #[should_panic(expected = "at least one load point")]
    fn empty_loads_rejected() {
        let _ = slack_curve(&ServiceSpec::web_search(), SimParams::quick(1), &[]);
    }
}
