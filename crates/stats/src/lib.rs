//! Statistics utilities for the Stretch (HPCA'19) reproduction.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! * [`percentile`](mod@percentile) — exact percentiles over sample sets (tail latency).
//! * [`histogram`] — fixed-bin histograms (MLP census, latency histograms).
//! * [`distribution`] — five-number / violin-style summaries used to report
//!   the slowdown and speedup distributions of Figures 3, 9, 10, 11.
//! * [`ratio`] — speedup/slowdown helpers and geometric means.
//! * [`sampling`] — the warm-up + measurement window methodology of §V-C.
//! * [`reduce`] — the canonical deterministic reducers ([`det_sum`],
//!   [`det_merge`]) every float accumulation on a parallel merge path must
//!   go through (enforced by the `reduction-order` simlint rule).
//! * [`tail`] — bounded-memory tail-latency accumulation
//!   ([`LatencyHistogram`]): fixed-resolution bins whose merge is bit-exact
//!   integer addition, for fleet-scale runs that cannot retain raw samples.
//!
//! # Example
//!
//! ```
//! use sim_stats::distribution::DistributionSummary;
//!
//! let s = DistributionSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]);
//! assert_eq!(s.median, 3.0);
//! assert!(s.max > s.p75);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod histogram;
pub mod percentile;
pub mod ratio;
pub mod reduce;
pub mod sampling;
pub mod tail;

pub use distribution::DistributionSummary;
pub use histogram::Histogram;
pub use percentile::{percentile, Percentiles};
pub use ratio::{geometric_mean, slowdown, speedup};
pub use reduce::{det_mean, det_merge, det_sum};
pub use sampling::SamplingPlan;
pub use tail::LatencyHistogram;
