//! Sampling methodology (§V-C of the paper).
//!
//! The paper uses SimFlex-style statistical sampling: many short samples, each
//! consisting of a functional warm-up, a detailed warm-up of core structures
//! (100 K instructions), and a 50 K-instruction measurement window. The
//! reproduction keeps the same structure with configurable sizes so that the
//! criterion benches can run scaled-down versions.

use serde::{Deserialize, Serialize};

/// Describes how a simulation run is split into warm-up and measurement
/// phases, and how many samples are taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Number of independent samples (paper: 320 over 4 s of execution).
    pub samples: usize,
    /// Instructions (per thread) used to warm core structures before
    /// measurement inside each sample (paper: 100 K).
    pub warmup_instructions: u64,
    /// Instructions (per thread) measured in each sample (paper: 50 K).
    pub measured_instructions: u64,
}

impl SamplingPlan {
    /// The paper's full plan: 320 samples × (100 K warm-up + 50 K measured).
    pub fn paper() -> SamplingPlan {
        SamplingPlan { samples: 320, warmup_instructions: 100_000, measured_instructions: 50_000 }
    }

    /// A reduced plan for the figure-generation binaries: large enough for
    /// stable relative comparisons, small enough to run the full 4 × 29
    /// colocation matrix in minutes on a single core.
    pub fn standard() -> SamplingPlan {
        SamplingPlan { samples: 2, warmup_instructions: 10_000, measured_instructions: 20_000 }
    }

    /// A small plan for unit/integration tests and criterion benches.
    pub fn quick() -> SamplingPlan {
        SamplingPlan { samples: 1, warmup_instructions: 3_000, measured_instructions: 8_000 }
    }

    /// Total instructions simulated per thread across all samples.
    pub fn total_instructions(&self) -> u64 {
        (self.warmup_instructions + self.measured_instructions) * self.samples as u64
    }

    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns an error when the plan would measure nothing.
    pub fn validate(&self) -> Result<(), String> {
        if self.samples == 0 {
            return Err("sampling plan needs at least one sample".into());
        }
        if self.measured_instructions == 0 {
            return Err("sampling plan needs a non-zero measurement window".into());
        }
        Ok(())
    }
}

impl Default for SamplingPlan {
    fn default() -> SamplingPlan {
        SamplingPlan::standard()
    }
}

/// Aggregates per-sample UIPC measurements into a single figure of merit.
///
/// The paper's figure of merit is user-level instructions per cycle (UIPC),
/// averaged across samples. Harmonic vs arithmetic averaging matters little
/// for relative comparisons; we use the ratio of totals (total instructions /
/// total cycles), which weights samples by their duration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UipcAccumulator {
    total_instructions: u64,
    total_cycles: u64,
    per_sample: Vec<f64>,
}

impl UipcAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> UipcAccumulator {
        UipcAccumulator::default()
    }

    /// Records one sample's instruction and cycle counts.
    pub fn record_sample(&mut self, instructions: u64, cycles: u64) {
        self.total_instructions += instructions;
        self.total_cycles += cycles;
        if cycles > 0 {
            self.per_sample.push(instructions as f64 / cycles as f64);
        }
    }

    /// Aggregate UIPC (total instructions / total cycles), or `None` if no
    /// cycles were recorded.
    pub fn uipc(&self) -> Option<f64> {
        if self.total_cycles == 0 {
            None
        } else {
            Some(self.total_instructions as f64 / self.total_cycles as f64)
        }
    }

    /// Per-sample UIPC values.
    pub fn samples(&self) -> &[f64] {
        &self.per_sample
    }

    /// Total simulated cycles.
    pub fn cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total measured instructions.
    pub fn instructions(&self) -> u64 {
        self.total_instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_matches_methodology_section() {
        let p = SamplingPlan::paper();
        assert_eq!(p.samples, 320);
        assert_eq!(p.warmup_instructions, 100_000);
        assert_eq!(p.measured_instructions, 50_000);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn total_instruction_accounting() {
        let p = SamplingPlan { samples: 2, warmup_instructions: 10, measured_instructions: 5 };
        assert_eq!(p.total_instructions(), 30);
    }

    #[test]
    fn invalid_plans_rejected() {
        let p = SamplingPlan { samples: 0, ..SamplingPlan::quick() };
        assert!(p.validate().is_err());
        let p = SamplingPlan { measured_instructions: 0, ..SamplingPlan::quick() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn uipc_is_ratio_of_totals() {
        let mut acc = UipcAccumulator::new();
        acc.record_sample(100, 50);
        acc.record_sample(100, 150);
        assert_eq!(acc.uipc(), Some(1.0));
        assert_eq!(acc.samples().len(), 2);
        assert_eq!(acc.cycles(), 200);
        assert_eq!(acc.instructions(), 200);
    }

    #[test]
    fn empty_accumulator_has_no_uipc() {
        assert!(UipcAccumulator::new().uipc().is_none());
    }
}
