//! Distribution summaries for reporting result populations.
//!
//! The paper reports many results as violin plots over the 4 × 29 colocation
//! population (Figures 3, 9, 11). A violin is summarised here by its
//! five-number summary (min, quartiles, max) plus mean — enough to compare
//! "who wins, by roughly what factor" against the published figures.

use crate::percentile::percentile_of_sorted;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Five-number summary plus mean of a sample population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionSummary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl DistributionSummary {
    /// Builds a summary from raw samples. NaNs are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `samples` contains no finite values.
    pub fn from_samples(samples: &[f64]) -> DistributionSummary {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        assert!(!sorted.is_empty(), "DistributionSummary requires at least one finite sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        DistributionSummary {
            count: sorted.len(),
            min: sorted[0],
            p25: percentile_of_sorted(&sorted, 25.0),
            median: percentile_of_sorted(&sorted, 50.0),
            p75: percentile_of_sorted(&sorted, 75.0),
            max: *sorted.last().expect("non-empty"),
            mean,
        }
    }

    /// Interquartile range (p75 − p25), the box drawn inside the paper's
    /// violins.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Formats the summary as percentages (e.g. for slowdown populations),
    /// matching how the paper quotes "X% on average (Y% max)".
    pub fn as_percent_string(&self) -> String {
        format!(
            "mean {:+.1}% (median {:+.1}%, min {:+.1}%, max {:+.1}%)",
            self.mean * 100.0,
            self.median * 100.0,
            self.min * 100.0,
            self.max * 100.0
        )
    }
}

impl fmt::Display for DistributionSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.4} p25={:.4} median={:.4} p75={:.4} max={:.4} mean={:.4}",
            self.count, self.min, self.p25, self.median, self.p75, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_population() {
        let s = DistributionSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn order_does_not_matter() {
        let a = DistributionSummary::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let b = DistributionSummary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn nan_and_inf_filtered() {
        let s = DistributionSummary::from_samples(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one finite sample")]
    fn empty_population_panics() {
        let _ = DistributionSummary::from_samples(&[]);
    }

    #[test]
    fn percent_string_mentions_mean_and_max() {
        let s = DistributionSummary::from_samples(&[0.10, 0.20, 0.30]);
        let text = s.as_percent_string();
        assert!(text.contains("+20.0%"), "{text}");
        assert!(text.contains("+30.0%"), "{text}");
    }

    #[test]
    fn display_is_nonempty() {
        let s = DistributionSummary::from_samples(&[1.0]);
        assert!(!s.to_string().is_empty());
    }
}
