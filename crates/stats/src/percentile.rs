//! Exact percentile computation over sample sets.
//!
//! Tail latency targets in the paper are expressed as percentiles (99th for
//! Data Serving and Web Search, 95th for Web Serving, a timeout for Media
//! Streaming). The queueing simulator collects every request's sojourn time
//! and evaluates percentiles exactly; sample counts are small enough (tens of
//! thousands) that an O(n log n) sort is the simplest correct choice.

use serde::{Deserialize, Serialize};

/// Computes the `p`-th percentile (0–100) of `samples` using linear
/// interpolation between closest ranks.
///
/// Returns `None` when `samples` is empty or `p` is outside `[0, 100]`.
///
/// ```
/// use sim_stats::percentile::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// assert_eq!(percentile(&[], 50.0), None);
/// ```
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=100.0).contains(&p) || p.is_nan() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already-sorted, NaN-free slice.
///
/// # Panics
///
/// Panics (in debug builds) if the slice is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// A reusable percentile tracker that accumulates samples and answers common
/// tail-latency queries (average, p95, p99, max).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    samples: Vec<f64>,
}

impl Percentiles {
    /// Creates an empty tracker.
    pub fn new() -> Percentiles {
        Percentiles::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if !value.is_nan() {
            self.samples.push(value);
        }
    }

    /// Records many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The `p`-th percentile, or `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        percentile(&self.samples, p)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, x| Some(acc.map_or(x, |m: f64| m.max(x))))
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Read-only view of the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert!(Percentiles::new().mean().is_none());
    }

    #[test]
    fn out_of_range_p_returns_none() {
        assert_eq!(percentile(&[1.0], -1.0), None);
        assert_eq!(percentile(&[1.0], 101.0), None);
        assert_eq!(percentile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], p), Some(7.5));
        }
    }

    #[test]
    fn interpolates_between_ranks() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 25.0), Some(20.0));
        assert_eq!(percentile(&xs, 50.0), Some(30.0));
        assert_eq!(percentile(&xs, 100.0), Some(50.0));
        assert_eq!(percentile(&xs, 10.0), Some(14.0));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = [50.0, 10.0, 40.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 50.0), Some(30.0));
    }

    #[test]
    fn nan_samples_are_ignored() {
        let xs = [1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&xs, 100.0), Some(3.0));
    }

    #[test]
    fn tracker_basics() {
        let mut t = Percentiles::new();
        t.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.mean(), Some(2.5));
        assert_eq!(t.max(), Some(4.0));
        assert_eq!(t.percentile(50.0), Some(2.5));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn p99_dominates_p95_dominates_mean_for_heavy_tail() {
        let mut t = Percentiles::new();
        // 980 fast requests, 20 very slow ones.
        t.extend(std::iter::repeat_n(1.0, 980));
        t.extend(std::iter::repeat_n(100.0, 20));
        let mean = t.mean().unwrap();
        let p95 = t.p95().unwrap();
        let p99 = t.p99().unwrap();
        assert!(mean < p99, "mean {mean} should be below p99 {p99}");
        assert!(p95 <= p99);
    }
}
