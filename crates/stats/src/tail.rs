//! Bounded-memory tail-latency accumulation.
//!
//! [`Percentiles`](crate::Percentiles) retains every raw sample, which is
//! exact but unbounded: a day-long 10k-server fleet run records ~10⁸
//! sojourn times. [`LatencyHistogram`] bins latencies at a fixed resolution
//! over a [`Histogram`], so memory is `O(bins)` regardless of sample count
//! and two accumulators merge bit-exactly by integer bin-count addition —
//! the property the fleet simulator's deterministic shard merge relies on
//! (merging histograms is associative and order-independent, unlike float
//! summation).
//!
//! The price is quantisation: a percentile is reported as the *upper edge*
//! of the bin holding the nearest-rank sample, i.e. it over-estimates the
//! exact sample percentile by at most one resolution step.

use crate::histogram::Histogram;
use serde::{Deserialize, Serialize};

/// A fixed-resolution latency histogram over milliseconds.
///
/// Values in `[k·res, (k+1)·res)` land in bin `k`; everything at or above
/// `max_ms` lands in a catch-all bin whose reported upper edge sits one
/// resolution step above the configured maximum. Negative and NaN inputs
/// clamp to bin 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    resolution_ms: f64,
    hist: Histogram,
}

impl LatencyHistogram {
    /// Creates an accumulator with bins of `resolution_ms` covering
    /// `[0, max_ms)` plus a catch-all for larger values.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < resolution_ms <= max_ms` and both are finite.
    pub fn new(resolution_ms: f64, max_ms: f64) -> LatencyHistogram {
        assert!(
            resolution_ms.is_finite() && resolution_ms > 0.0,
            "latency histogram resolution must be positive and finite"
        );
        assert!(
            max_ms.is_finite() && max_ms >= resolution_ms,
            "latency histogram max must be finite and at least one resolution step"
        );
        let regular_bins = (max_ms / resolution_ms).ceil() as usize;
        LatencyHistogram { resolution_ms, hist: Histogram::new(regular_bins.max(1)) }
    }

    /// The configured bin width in milliseconds.
    pub fn resolution_ms(&self) -> f64 {
        self.resolution_ms
    }

    /// Records one latency observation.
    pub fn record(&mut self, value_ms: f64) {
        let bin = (value_ms.max(0.0) / self.resolution_ms) as usize;
        self.hist.record(bin);
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.hist.total() as usize
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.total() == 0
    }

    /// The `p`-th percentile (nearest-rank) as the upper edge of its bin, or
    /// `None` when empty. Over-estimates the exact sample percentile by at
    /// most one resolution step (more for catch-all samples).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let total = self.hist.total();
        if total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * total as f64).ceil() as u64;
        let rank = rank.clamp(1, total);
        let mut seen = 0u64;
        for bin in 0..self.hist.bins() {
            seen += self.hist.count(bin);
            if seen >= rank {
                return Some((bin as f64 + 1.0) * self.resolution_ms);
            }
        }
        None
    }

    /// Merges another accumulator into this one (bit-exact: integer bin
    /// counts add, so merge order can never change any percentile).
    ///
    /// # Panics
    ///
    /// Panics if the two accumulators have different resolutions or bin
    /// counts.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert!(self.resolution_ms == other.resolution_ms, "latency histogram resolutions differ");
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_reports_bin_upper_edge() {
        let mut h = LatencyHistogram::new(1.0, 100.0);
        for v in [0.2, 1.5, 2.5, 3.5] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        // Rank 2 of 4 at p50 → the sample 1.5 → bin 1 → upper edge 2.0.
        assert_eq!(h.percentile(50.0), Some(2.0));
        assert_eq!(h.percentile(100.0), Some(4.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut left = LatencyHistogram::new(0.5, 50.0);
        let mut right = LatencyHistogram::new(0.5, 50.0);
        let mut both = LatencyHistogram::new(0.5, 50.0);
        for i in 0..200 {
            let v = (i * 37 % 101) as f64 * 0.6;
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
            both.record(v);
        }
        left.merge(&right);
        assert_eq!(left, both);
        for p in [50.0, 90.0, 95.0, 99.0] {
            assert_eq!(left.percentile(p), both.percentile(p));
        }
    }

    #[test]
    fn catch_all_collects_overflow() {
        let mut h = LatencyHistogram::new(1.0, 10.0);
        h.record(1e9);
        h.record(f64::INFINITY);
        // Both land in the catch-all bin; its upper edge is max + resolution.
        assert_eq!(h.percentile(99.0), Some(11.0));
    }

    #[test]
    fn negative_and_nan_clamp_to_first_bin() {
        let mut h = LatencyHistogram::new(1.0, 10.0);
        h.record(-3.0);
        h.record(f64::NAN);
        assert_eq!(h.percentile(50.0), Some(1.0));
    }

    #[test]
    fn empty_has_no_percentile() {
        let h = LatencyHistogram::new(1.0, 10.0);
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), None);
    }

    #[test]
    #[should_panic(expected = "resolutions differ")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = LatencyHistogram::new(1.0, 10.0);
        let b = LatencyHistogram::new(2.0, 10.0);
        a.merge(&b);
    }
}
