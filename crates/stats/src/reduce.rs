//! The canonical deterministic reducers for float accumulation on merge
//! paths.
//!
//! `f64` addition is not associative: `(a + b) + c` and `a + (b + c)` can
//! differ in the last ulp, so the *order* in which per-shard or per-cell
//! results are folded is part of a result's identity. The sharded fleet
//! (ROADMAP item 1) merges per-server outputs computed on worker threads;
//! if each merge site picked its own fold order — or worse, an order that
//! depended on thread completion — "bit-identical regardless of thread
//! count" would silently stop holding. The `reduction-order` simlint rule
//! therefore requires every float accumulation reachable from a
//! [`parallel_map`]-style merge to go through this module, which pins one
//! canonical order for the whole workspace:
//!
//! * [`det_sum`] — fixed-order pairwise summation over a slice. Below
//!   [`SEQUENTIAL_BLOCK`] elements it is *exactly* the left-to-right
//!   sequential fold (so migrating short existing accumulations onto it is
//!   bit-preserving and needs no fixture re-pin); above, it splits into
//!   balanced halves at block granularity, which both fixes the reduction
//!   tree independent of the caller and improves the error bound from
//!   O(n·ε) to O(log n·ε) for the 10k-element merges the sharded fleet
//!   will perform.
//! * [`det_merge`] — combines per-shard partial sums in shard-index order
//!   (it is [`det_sum`] over the partials; the separate name documents
//!   intent at the call site: the inputs are already reductions).
//! * [`det_mean`] — `det_sum / n`, the common "average over cells" case.
//!
//! The reduction tree is a pure function of the slice *length*, never of
//! thread timing, so the same inputs in the same order always produce the
//! same bits.
//!
//! [`parallel_map`]: ../stretch_bench/harness/fn.parallel_map.html

/// Below this many elements [`det_sum`] degenerates to the plain
/// left-to-right sequential fold.
///
/// The value is part of the determinism contract: changing it changes the
/// bits of every `det_sum` over more than `SEQUENTIAL_BLOCK` elements and
/// requires a conscious golden-fixture re-pin. 32 keeps every pre-existing
/// short accumulation (figure row averages, per-thread UIPC totals)
/// bit-identical to its historical sequential form while still giving the
/// fleet-scale merges a balanced tree.
pub const SEQUENTIAL_BLOCK: usize = 32;

/// Sums `values` in the canonical fixed order: sequential left-to-right
/// below [`SEQUENTIAL_BLOCK`] elements, balanced pairwise splits above.
///
/// The result is a deterministic function of the slice contents and order —
/// never of thread count, completion order, or caller identity. An empty
/// slice sums to `0.0`.
///
/// ```
/// use sim_stats::reduce::det_sum;
///
/// let xs = [0.1, 0.2, 0.3];
/// // Short slices are exactly the sequential fold.
/// assert_eq!(det_sum(&xs).to_bits(), ((0.1 + 0.2) + 0.3f64).to_bits());
/// ```
pub fn det_sum(values: &[f64]) -> f64 {
    if values.len() <= SEQUENTIAL_BLOCK {
        let mut acc = 0.0;
        for &v in values {
            acc += v;
        }
        return acc;
    }
    // Split at the largest multiple of SEQUENTIAL_BLOCK covering at least
    // half the slice, so the tree shape depends only on the length.
    let half = values.len() / 2;
    let mid = half.next_multiple_of(SEQUENTIAL_BLOCK).min(values.len() - 1);
    det_sum(&values[..mid]) + det_sum(&values[mid..])
}

/// Combines per-shard partial sums into the canonical total.
///
/// Shards must be presented in shard-index order (index 0 first); the
/// reduction tree is then fixed regardless of which worker finished first.
/// This is the function a sharded merge calls on the per-worker partials it
/// collected — the partials themselves should each be a [`det_sum`] over
/// that shard's values.
pub fn det_merge(partials: &[f64]) -> f64 {
    det_sum(partials)
}

/// The canonical mean: [`det_sum`] divided by the element count.
///
/// An empty slice has mean `0.0` (the merge paths treat "no samples" as a
/// zero contribution rather than a NaN that would poison downstream
/// accumulation).
pub fn det_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    det_sum(values) / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequential(values: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &v in values {
            acc += v;
        }
        acc
    }

    /// A deterministic value stream with enough mantissa variety to expose
    /// association differences.
    fn stream(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * 0.1 + 1.0) / ((i % 7 + 1) as f64)).collect()
    }

    #[test]
    fn short_sums_are_bit_identical_to_sequential() {
        for n in 0..=SEQUENTIAL_BLOCK {
            let xs = stream(n);
            assert_eq!(
                det_sum(&xs).to_bits(),
                sequential(&xs).to_bits(),
                "n = {n} must match the left-to-right fold exactly"
            );
        }
    }

    #[test]
    fn long_sums_are_deterministic_and_close_to_sequential() {
        let xs = stream(10_000);
        let a = det_sum(&xs);
        let b = det_sum(&xs);
        assert_eq!(a.to_bits(), b.to_bits(), "same input, same bits");
        let seq = sequential(&xs);
        assert!((a - seq).abs() / seq.abs() < 1e-12, "pairwise far from sequential: {a} vs {seq}");
    }

    #[test]
    fn tree_shape_depends_only_on_length() {
        // Summing the same values through det_merge over differently-sized
        // shard partials reproduces det_sum over the concatenation only when
        // each shard is itself reduced canonically AND the shard boundaries
        // are part of the contract — the *partials* fold deterministically.
        let xs = stream(257);
        let partials: Vec<f64> = xs.chunks(64).map(det_sum).collect();
        let merged_once = det_merge(&partials);
        let merged_again = det_merge(&partials);
        assert_eq!(merged_once.to_bits(), merged_again.to_bits());
    }

    #[test]
    fn mean_of_empty_is_zero_and_mean_matches_sum() {
        assert_eq!(det_mean(&[]), 0.0);
        let xs = stream(50);
        assert_eq!(det_mean(&xs).to_bits(), (det_sum(&xs) / 50.0).to_bits());
    }

    #[test]
    fn merge_is_det_sum_over_partials() {
        let partials = stream(9);
        assert_eq!(det_merge(&partials).to_bits(), det_sum(&partials).to_bits());
    }
}
