//! Speedup / slowdown accounting.
//!
//! The paper reports performance changes in two directions and it is easy to
//! confuse them; these helpers fix the conventions once:
//!
//! * **slowdown** = `1 − perf/baseline` — "loses 24% of performance".
//! * **speedup**  = `perf/baseline − 1` — "gains 13% of performance".
//!
//! Both are positive when the named effect occurs and negative otherwise.

/// Slowdown of `perf` relative to `baseline` (positive when slower).
///
/// Returns 0 when `baseline` is not a positive finite number.
///
/// ```
/// use sim_stats::ratio::slowdown;
/// assert!((slowdown(0.76, 1.0) - 0.24).abs() < 1e-12);
/// ```
pub fn slowdown(perf: f64, baseline: f64) -> f64 {
    if !(baseline.is_finite() && baseline > 0.0) {
        return 0.0;
    }
    1.0 - perf / baseline
}

/// Speedup of `perf` relative to `baseline` (positive when faster).
///
/// Returns 0 when `baseline` is not a positive finite number.
///
/// ```
/// use sim_stats::ratio::speedup;
/// assert!((speedup(1.13, 1.0) - 0.13).abs() < 1e-12);
/// ```
pub fn speedup(perf: f64, baseline: f64) -> f64 {
    if !(baseline.is_finite() && baseline > 0.0) {
        return 0.0;
    }
    perf / baseline - 1.0
}

/// Geometric mean of positive samples; non-positive or non-finite samples are
/// skipped. Returns `None` when no usable sample exists.
pub fn geometric_mean(samples: &[f64]) -> Option<f64> {
    let mut sum_ln = 0.0;
    let mut n = 0usize;
    for &x in samples {
        if x.is_finite() && x > 0.0 {
            sum_ln += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((sum_ln / n as f64).exp())
    }
}

/// Arithmetic mean; returns `None` for an empty slice.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_and_speedup_are_inverse_views() {
        let base = 2.0;
        let perf = 1.5;
        assert!((slowdown(perf, base) - 0.25).abs() < 1e-12);
        assert!((speedup(perf, base) + 0.25).abs() < 1e-12);
    }

    #[test]
    fn no_change_is_zero() {
        assert_eq!(slowdown(3.0, 3.0), 0.0);
        assert_eq!(speedup(3.0, 3.0), 0.0);
    }

    #[test]
    fn degenerate_baseline_is_zero() {
        assert_eq!(slowdown(1.0, 0.0), 0.0);
        assert_eq!(speedup(1.0, f64::NAN), 0.0);
        assert_eq!(speedup(1.0, -2.0), 0.0);
    }

    #[test]
    fn geometric_mean_of_known_values() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[0.0, -1.0]).is_none());
    }

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }
}
