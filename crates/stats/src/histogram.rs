//! Fixed-bin histograms.
//!
//! Used for the MLP census of Figure 7 (fraction of time with ≥ N in-flight
//! memory requests) and for latency histograms in the queueing simulator.

use serde::{Deserialize, Serialize};

/// A histogram over integer-valued observations `0, 1, 2, ..`, with the last
/// bin collecting everything at or above the configured maximum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with bins `0..=max_value` (the last bin is a
    /// catch-all for observations `>= max_value`).
    ///
    /// # Panics
    ///
    /// Panics if `max_value == 0`.
    pub fn new(max_value: usize) -> Histogram {
        assert!(max_value > 0, "histogram needs at least one non-zero bin");
        Histogram { counts: vec![0; max_value + 1], total: 0 }
    }

    /// Records one observation of `value` with weight 1.
    pub fn record(&mut self, value: usize) {
        self.record_weighted(value, 1);
    }

    /// Records `weight` observations of `value` (e.g. "this many cycles had
    /// exactly `value` outstanding misses").
    pub fn record_weighted(&mut self, value: usize, weight: u64) {
        let idx = value.min(self.counts.len() - 1);
        self.counts[idx] += weight;
        self.total += weight;
    }

    /// Total recorded weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of bins (including the catch-all).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw count in bin `value` (saturating at the catch-all bin).
    pub fn count(&self, value: usize) -> u64 {
        self.counts[value.min(self.counts.len() - 1)]
    }

    /// Fraction of observations exactly equal to `value`.
    pub fn fraction(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fraction of observations greater than or equal to `value`
    /// (the cumulative "≥ N in-flight requests" metric of Figure 7).
    pub fn fraction_at_least(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let start = value.min(self.counts.len() - 1);
        let sum: u64 = self.counts[start..].iter().sum();
        sum as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "histogram bin counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Mean of the recorded observations (catch-all bin counted at its lower
    /// bound), or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let weighted: f64 = self.counts.iter().enumerate().map(|(v, &c)| v as f64 * c as f64).sum();
        Some(weighted / self.total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_fractions() {
        let mut h = Histogram::new(5);
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 2);
        assert!((h.fraction(1) - 0.5).abs() < 1e-12);
        assert!((h.fraction_at_least(1) - 0.75).abs() < 1e-12);
        assert!((h.fraction_at_least(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn catch_all_bin_collects_overflow() {
        let mut h = Histogram::new(3);
        h.record(10);
        h.record(3);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(99), 2);
    }

    #[test]
    fn weighted_records() {
        let mut h = Histogram::new(4);
        h.record_weighted(2, 10);
        h.record_weighted(0, 30);
        assert_eq!(h.total(), 40);
        assert!((h.fraction_at_least(2) - 0.25).abs() < 1e-12);
        assert!((h.mean().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(2);
        let mut b = Histogram::new(2);
        a.record(0);
        b.record(2);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(2), 2);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new(4);
        assert_eq!(h.fraction(2), 0.0);
        assert_eq!(h.fraction_at_least(0), 0.0);
        assert!(h.mean().is_none());
    }

    #[test]
    #[should_panic(expected = "bin counts differ")]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(2);
        let b = Histogram::new(3);
        a.merge(&b);
    }
}
