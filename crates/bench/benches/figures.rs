//! Criterion benches: one benchmark per table/figure of the paper.
//!
//! Each benchmark exercises the code path that regenerates the corresponding
//! figure, on a scaled-down input (quick sampling plan, a representative
//! workload pair instead of the full 4 × 29 matrix) so that `cargo bench`
//! completes in minutes on a laptop. The full-size experiments are run by the
//! `figureNN` binaries (`cargo run --release -p stretch-bench --bin figureNN`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use baselines::{dynamic_rob_setup, fetch_throttling_setup, ideal_scheduling_setup};
use cluster::CaseStudy;
use cpu_sim::{
    run_pair, run_standalone, run_standalone_with_rob, CoreSetup, SimLength, StudiedResource,
};
use qos::{latency_vs_load, slack_curve, ServiceSpec, SimParams};
use sim_model::{CoreConfig, ThreadId};
use stretch::{RobSkew, StretchMode};
use stretch_bench::{figures, Engine, ExperimentConfig};
use workloads::{batch, latency_sensitive};

fn cfg() -> CoreConfig {
    CoreConfig::default()
}

fn quick() -> SimLength {
    SimLength::quick()
}

fn bench_fig01_latency_vs_load(c: &mut Criterion) {
    let spec = ServiceSpec::web_search();
    c.bench_function("fig01_latency_vs_load", |b| {
        b.iter(|| black_box(latency_vs_load(&spec, SimParams::quick(1), 0.2, 4)))
    });
}

fn bench_fig02_slack(c: &mut Criterion) {
    let spec = ServiceSpec::web_search();
    c.bench_function("fig02_slack", |b| {
        b.iter(|| black_box(slack_curve(&spec, SimParams::quick(2), &[0.3])))
    });
}

fn bench_fig03_colocation(c: &mut Criterion) {
    let core = cfg();
    c.bench_function("fig03_colocation_baseline_pair", |b| {
        b.iter(|| {
            black_box(run_pair(
                &core,
                CoreSetup::baseline(&core),
                latency_sensitive::web_search(3),
                batch::zeusmp(3),
                quick(),
            ))
        })
    });
}

fn bench_fig04_resources(c: &mut Criterion) {
    let core = cfg();
    c.bench_function("fig04_shared_rob_only_pair", |b| {
        b.iter(|| {
            black_box(run_pair(
                &core,
                StudiedResource::Rob.setup(&core),
                latency_sensitive::web_search(4),
                batch::zeusmp(4),
                quick(),
            ))
        })
    });
}

fn bench_fig05_resources_all(c: &mut Criterion) {
    let core = cfg();
    c.bench_function("fig05_shared_l1d_only_pair", |b| {
        b.iter(|| {
            black_box(run_pair(
                &core,
                StudiedResource::L1D.setup(&core),
                latency_sensitive::data_serving(5),
                batch::lbm(5),
                quick(),
            ))
        })
    });
}

fn bench_fig06_rob_sweep(c: &mut Criterion) {
    let core = cfg();
    c.bench_function("fig06_rob_sweep_point", |b| {
        b.iter(|| black_box(run_standalone_with_rob(&core, batch::zeusmp(6), 48, quick())))
    });
}

fn bench_fig07_mlp(c: &mut Criterion) {
    let core = cfg();
    c.bench_function("fig07_mlp_census", |b| {
        b.iter(|| {
            let r = run_standalone(&core, batch::zeusmp(7), quick());
            black_box(r.mlp.fraction_at_least(2))
        })
    });
}

fn bench_fig09_skew_sweep(c: &mut Criterion) {
    let core = cfg();
    let mut setup = CoreSetup::baseline(&core);
    setup.partition = StretchMode::BatchBoost(RobSkew::recommended_b_mode())
        .partition_policy(&core, ThreadId::T0);
    c.bench_function("fig09_bmode_56_136_pair", |b| {
        b.iter(|| {
            black_box(run_pair(
                &core,
                setup,
                latency_sensitive::web_search(9),
                batch::zeusmp(9),
                quick(),
            ))
        })
    });
}

fn bench_fig10_bmode_per_benchmark(c: &mut Criterion) {
    let core = cfg();
    let mut setup = CoreSetup::baseline(&core);
    setup.partition = StretchMode::BatchBoost(RobSkew::recommended_b_mode())
        .partition_policy(&core, ThreadId::T0);
    c.bench_function("fig10_bmode_mcf_pair", |b| {
        b.iter(|| {
            black_box(run_pair(
                &core,
                setup,
                latency_sensitive::media_streaming(10),
                batch::by_name("mcf", 10).expect("mcf exists"),
                quick(),
            ))
        })
    });
}

fn bench_fig11_dynamic_rob(c: &mut Criterion) {
    let core = cfg();
    c.bench_function("fig11_dynamic_rob_pair", |b| {
        b.iter(|| {
            black_box(run_pair(
                &core,
                dynamic_rob_setup(&core),
                latency_sensitive::data_serving(11),
                batch::zeusmp(11),
                quick(),
            ))
        })
    });
}

fn bench_fig12_fetch_throttling(c: &mut Criterion) {
    let core = cfg();
    c.bench_function("fig12_fetch_throttling_1_8_pair", |b| {
        b.iter(|| {
            black_box(run_pair(
                &core,
                fetch_throttling_setup(&core, ThreadId::T0, 8),
                latency_sensitive::web_search(12),
                batch::zeusmp(12),
                quick(),
            ))
        })
    });
}

fn bench_fig13_sw_scheduling(c: &mut Criterion) {
    let core = cfg();
    c.bench_function("fig13_ideal_scheduling_pair", |b| {
        b.iter(|| {
            black_box(run_pair(
                &core,
                ideal_scheduling_setup(&core),
                latency_sensitive::web_serving(13),
                batch::by_name("gcc", 13).expect("gcc exists"),
                quick(),
            ))
        })
    });
}

fn bench_fig14_cluster(c: &mut Criterion) {
    c.bench_function("fig14_cluster_case_studies", |b| {
        b.iter(|| black_box((CaseStudy::web_search().run(), CaseStudy::youtube().run())))
    });
}

fn bench_tables_config(c: &mut Criterion) {
    c.bench_function("tables_workload_registry", |b| {
        b.iter(|| black_box(workloads::all_profiles().len()))
    });
}

fn bench_engine_memo_hit(c: &mut Criterion) {
    // The hot path of a warm `figures` run: every cell answered from the
    // in-process memo (decode + counters, no simulation).
    let engine = Engine::new(ExperimentConfig::quick());
    let setup = CoreSetup::baseline(&engine.cfg().core);
    let _ = engine.pair(setup, "web-search", "zeusmp"); // populate the cell
    c.bench_function("engine_memo_hit_pair", |b| {
        b.iter(|| black_box(engine.pair(setup, "web-search", "zeusmp")))
    });
}

fn bench_engine_figure_render_warm(c: &mut Criterion) {
    // Rendering a whole figure from a fully warm engine measures the
    // formatting + memo overhead the driver adds on top of the simulations.
    let engine = Engine::new(ExperimentConfig::quick()).with_sub_matrix(1, 1);
    let _ = figures::figure03(&engine); // populate every cell
    c.bench_function("engine_figure03_render_warm", |b| {
        b.iter(|| black_box(figures::figure03(&engine)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets =
        bench_fig01_latency_vs_load,
        bench_fig02_slack,
        bench_fig03_colocation,
        bench_fig04_resources,
        bench_fig05_resources_all,
        bench_fig06_rob_sweep,
        bench_fig07_mlp,
        bench_fig09_skew_sweep,
        bench_fig10_bmode_per_benchmark,
        bench_fig11_dynamic_rob,
        bench_fig12_fetch_throttling,
        bench_fig13_sw_scheduling,
        bench_fig14_cluster,
        bench_tables_config,
        bench_engine_memo_hit,
        bench_engine_figure_render_warm,
}
criterion_main!(figures);
