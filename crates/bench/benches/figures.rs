//! Criterion benches: one benchmark per table/figure of the paper, plus the
//! `Scenario` dispatch-overhead comparison.
//!
//! Each benchmark exercises the code path that regenerates the corresponding
//! figure, on a scaled-down input (quick sampling plan, a representative
//! workload pair instead of the full 4 × 29 matrix) so that `cargo bench`
//! completes in minutes on a laptop. The full-size experiments are run by the
//! `figures` driver (`cargo run --release --bin figures -- --all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use baselines::{DynamicSharing, FetchThrottling, IdealScheduling};
use cluster_sim::CaseStudy;
use cpu_sim::{
    run_core, ColocationPolicy, EqualPartition, PrivateCore, Scenario, SimLength, SmtCoreBuilder,
    StudiedResource,
};
use sim_model::{CoreConfig, ThreadId};
use sim_qos::{latency_vs_load, slack_curve, ServiceSpec, SimParams};
use stretch::{PinnedStretch, RobSkew, StretchMode};
use stretch_bench::{figures, Engine, ExperimentConfig};
use workloads::profile_by_name;

fn cfg() -> CoreConfig {
    CoreConfig::default()
}

fn quick() -> SimLength {
    SimLength::quick()
}

/// A quick colocation scenario for `ls` × `batch` under `policy`.
fn pair_scenario(
    ls: &str,
    batch: &str,
    policy: impl ColocationPolicy + 'static,
    seed: u64,
) -> Scenario {
    Scenario::colocate(
        profile_by_name(ls).expect("known ls"),
        profile_by_name(batch).expect("known batch"),
    )
    .policy(policy)
    .length(quick())
    .seed(seed)
}

fn bench_fig01_latency_vs_load(c: &mut Criterion) {
    let spec = ServiceSpec::web_search();
    c.bench_function("fig01_latency_vs_load", |b| {
        b.iter(|| black_box(latency_vs_load(&spec, SimParams::quick(1), 0.2, 4)))
    });
}

fn bench_fig02_slack(c: &mut Criterion) {
    let spec = ServiceSpec::web_search();
    c.bench_function("fig02_slack", |b| {
        b.iter(|| black_box(slack_curve(&spec, SimParams::quick(2), &[0.3])))
    });
}

fn bench_fig03_colocation(c: &mut Criterion) {
    c.bench_function("fig03_colocation_baseline_pair", |b| {
        b.iter(|| black_box(pair_scenario("web-search", "zeusmp", EqualPartition, 3).run()))
    });
}

fn bench_fig04_resources(c: &mut Criterion) {
    c.bench_function("fig04_shared_rob_only_pair", |b| {
        b.iter(|| black_box(pair_scenario("web-search", "zeusmp", StudiedResource::Rob, 4).run()))
    });
}

fn bench_fig05_resources_all(c: &mut Criterion) {
    c.bench_function("fig05_shared_l1d_only_pair", |b| {
        b.iter(|| black_box(pair_scenario("data-serving", "lbm", StudiedResource::L1D, 5).run()))
    });
}

fn bench_fig06_rob_sweep(c: &mut Criterion) {
    c.bench_function("fig06_rob_sweep_point", |b| {
        b.iter(|| {
            black_box(
                Scenario::standalone(profile_by_name("zeusmp").expect("zeusmp exists"))
                    .policy(PrivateCore::with_rob(48))
                    .length(quick())
                    .seed(6)
                    .run_thread0(),
            )
        })
    });
}

fn bench_fig07_mlp(c: &mut Criterion) {
    c.bench_function("fig07_mlp_census", |b| {
        b.iter(|| {
            let r = Scenario::standalone(profile_by_name("zeusmp").expect("zeusmp exists"))
                .length(quick())
                .seed(7)
                .run_thread0();
            black_box(r.mlp.fraction_at_least(2))
        })
    });
}

fn bench_fig09_skew_sweep(c: &mut Criterion) {
    let mode = StretchMode::BatchBoost(RobSkew::recommended_b_mode());
    c.bench_function("fig09_bmode_56_136_pair", |b| {
        b.iter(|| {
            black_box(pair_scenario("web-search", "zeusmp", PinnedStretch::new(mode), 9).run())
        })
    });
}

fn bench_fig10_bmode_per_benchmark(c: &mut Criterion) {
    let mode = StretchMode::BatchBoost(RobSkew::recommended_b_mode());
    c.bench_function("fig10_bmode_mcf_pair", |b| {
        b.iter(|| {
            black_box(pair_scenario("media-streaming", "mcf", PinnedStretch::new(mode), 10).run())
        })
    });
}

fn bench_fig11_dynamic_rob(c: &mut Criterion) {
    c.bench_function("fig11_dynamic_rob_pair", |b| {
        b.iter(|| black_box(pair_scenario("data-serving", "zeusmp", DynamicSharing, 11).run()))
    });
}

fn bench_fig12_fetch_throttling(c: &mut Criterion) {
    c.bench_function("fig12_fetch_throttling_1_8_pair", |b| {
        b.iter(|| {
            black_box(
                pair_scenario("web-search", "zeusmp", FetchThrottling::new(ThreadId::T0, 8), 12)
                    .run(),
            )
        })
    });
}

fn bench_fig13_sw_scheduling(c: &mut Criterion) {
    c.bench_function("fig13_ideal_scheduling_pair", |b| {
        b.iter(|| black_box(pair_scenario("web-serving", "gcc", IdealScheduling::new(), 13).run()))
    });
}

fn bench_fig14_cluster(c: &mut Criterion) {
    c.bench_function("fig14_cluster_case_studies", |b| {
        b.iter(|| black_box((CaseStudy::web_search().run(), CaseStudy::youtube().run())))
    });
}

fn bench_tables_config(c: &mut Criterion) {
    c.bench_function("tables_workload_registry", |b| {
        b.iter(|| black_box(workloads::all_profiles().len()))
    });
}

fn bench_engine_memo_hit(c: &mut Criterion) {
    // The hot path of a warm `figures` run: every cell answered from the
    // in-process memo (decode + counters, no simulation).
    let engine = Engine::new(ExperimentConfig::quick());
    let _ = engine.pair(&EqualPartition, "web-search", "zeusmp"); // populate the cell
    c.bench_function("engine_memo_hit_pair", |b| {
        b.iter(|| black_box(engine.pair(&EqualPartition, "web-search", "zeusmp")))
    });
}

fn bench_engine_figure_render_warm(c: &mut Criterion) {
    // Rendering a whole figure from a fully warm engine measures the
    // formatting + memo overhead the driver adds on top of the simulations.
    let engine = Engine::new(ExperimentConfig::quick()).with_sub_matrix(1, 1);
    let _ = figures::figure03(&engine); // populate every cell
    c.bench_function("engine_figure03_render_warm", |b| {
        b.iter(|| black_box(figures::figure03(&engine)))
    });
}

/// `Scenario` dispatch overhead: the same quick colocation run (a) through
/// the builder + boxed-policy path and (b) by building the core directly and
/// driving the shared measurement loop — the equivalent of the removed
/// `run_pair` free function. The delta between the two is what the policy
/// abstraction costs per run (trace spawning aside, it is one box allocation
/// and one virtual `setup` call, invisible next to the simulation itself).
fn bench_scenario_dispatch_overhead(c: &mut Criterion) {
    let core = cfg();
    let ls = profile_by_name("web-search").expect("web-search exists");
    let batch = profile_by_name("zeusmp").expect("zeusmp exists");
    let seed = cpu_sim::pair_seed(42, "web-search", "zeusmp");

    c.bench_function("dispatch_scenario_policy_pair", |b| {
        b.iter(|| {
            black_box(
                Scenario::colocate(ls.clone(), batch.clone())
                    .config(core)
                    .policy(EqualPartition)
                    .length(quick())
                    .seed(42)
                    .run(),
            )
        })
    });
    c.bench_function("dispatch_direct_run_core_pair", |b| {
        b.iter(|| {
            let setup = EqualPartition.setup(&core);
            let mut smt = setup
                .apply(SmtCoreBuilder::new(core))
                .thread(ThreadId::T0, ls.spawn(seed))
                .thread(ThreadId::T1, batch.spawn(seed ^ 1))
                .build();
            black_box(run_core(
                &mut smt,
                vec![Some("web-search".to_string()), Some("zeusmp".to_string())],
                quick(),
            ))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets =
        bench_fig01_latency_vs_load,
        bench_fig02_slack,
        bench_fig03_colocation,
        bench_fig04_resources,
        bench_fig05_resources_all,
        bench_fig06_rob_sweep,
        bench_fig07_mlp,
        bench_fig09_skew_sweep,
        bench_fig10_bmode_per_benchmark,
        bench_fig11_dynamic_rob,
        bench_fig12_fetch_throttling,
        bench_fig13_sw_scheduling,
        bench_fig14_cluster,
        bench_tables_config,
        bench_engine_memo_hit,
        bench_engine_figure_render_warm,
        bench_scenario_dispatch_overhead,
}
criterion_main!(figures);
