//! The performance subsystem: a registry of named, fixed-length benchmarks
//! spanning all three simulation layers, a warmup + median-of-N wall-clock
//! measurement harness, a schema-versioned machine-readable report
//! (`BENCH_<label>.json`), and the regression gate the CI `perf` job runs
//! against the committed `bench/baseline.json`.
//!
//! Three layers, one registry:
//!
//! * **cpu** — cycle-level [`cpu_sim::Scenario`] pairs and stand-alone runs
//!   (rates in simulated cycles per second);
//! * **qos** — server-level request simulations from `sim_qos`
//!   (rates in simulated requests per second);
//! * **cluster** — a `cluster_sim::fleet` day at quick scale, including its
//!   peak bisection and threshold calibration;
//! * **figures** — the end-to-end quick figure matrix (every figure rendered
//!   from a cold engine), the number the optimization passes are graded on.
//!
//! Every benchmark is deterministic: fixed seeds, fixed lengths, and a
//! [`BenchWork::fingerprint`] folded over the simulation results so tests
//! can prove that *measuring* a run does not perturb it (`tests/perf.rs`
//! pins the fingerprint against the un-instrumented API bit-for-bit).
//!
//! The gate ([`gate`]) compares two reports benchmark-by-benchmark: a
//! current median above `baseline × (1 + pct/100)` is a regression, a
//! benchmark present in the baseline but missing from the current report
//! fails too (dropping a benchmark must never hide a regression), and a
//! benchmark new in the current report passes with a note. Exit-code
//! semantics live in the `perf` binary.

use std::fmt::Write as _;
use std::time::Instant;

use cluster_sim::{CaseStudy, FleetScale, FleetTopology, LoadBalancer, TailAccumulation};
use cpu_sim::{EqualPartition, Scenario, SimLength};
use serde_json::Value;
use sim_model::{ThreadId, TraceSource};
use sim_qos::{latency_vs_load, slack_curve, ServiceSpec, SimParams};
use stretch::{PinnedStretch, RobSkew, StretchMode};
use workloads::profile_by_name;

use crate::engine::Engine;
use crate::harness::ExperimentConfig;
use crate::store::{obj, JsonCodec};

/// Version stamped into every report; the gate refuses to compare reports
/// whose schemas differ (bump this when a field changes meaning).
pub const SCHEMA_VERSION: u64 = 1;

/// Work accomplished by one benchmark run, used to derive rates and to
/// prove determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchWork {
    /// Simulated core cycles covered by the run's measurement windows
    /// (0 for request-level benchmarks).
    pub sim_cycles: u64,
    /// Simulated requests completed (0 for cycle-level benchmarks).
    pub requests: u64,
    /// An order-sensitive FNV fold over the run's result bits. Identical
    /// simulation results — and only identical results — produce identical
    /// fingerprints, so a perf-instrumented run can be checked bit-for-bit
    /// against the plain API.
    pub fingerprint: u64,
}

/// Folds a sequence of `f64` results into a [`BenchWork::fingerprint`].
pub fn fingerprint(values: impl IntoIterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// One registry entry: a named, fixed-length, deterministic workload.
pub struct BenchSpec {
    /// Stable benchmark name (`layer/slug`); the gate matches on it.
    pub name: &'static str,
    /// Simulation layer: `cpu`, `qos`, `cluster` or `figures`.
    pub layer: &'static str,
    /// One-line description shown by `perf --list`.
    pub title: &'static str,
    /// Runs the workload once and reports the work done.
    pub run: fn() -> BenchWork,
}

fn bench_cpu_pair(b_mode: bool) -> BenchWork {
    let ls = profile_by_name("web-search").expect("known ls workload");
    let batch = profile_by_name("zeusmp").expect("known batch workload");
    let scenario = Scenario::colocate(ls, batch).length(SimLength::quick()).seed(42);
    let scenario = if b_mode {
        scenario.policy(PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode())))
    } else {
        scenario.policy(EqualPartition)
    };
    let r = scenario.run();
    let t0 = r.expect_thread(ThreadId::T0);
    let t1 = r.expect_thread(ThreadId::T1);
    BenchWork {
        sim_cycles: t0.cycles.max(t1.cycles),
        requests: 0,
        fingerprint: fingerprint([t0.uipc, t1.uipc]),
    }
}

fn bench_cpu_pair_baseline() -> BenchWork {
    bench_cpu_pair(false)
}

fn bench_cpu_pair_bmode() -> BenchWork {
    bench_cpu_pair(true)
}

fn bench_cpu_smt4() -> BenchWork {
    // The T-thread generalisation's hot path: one LS service plus three
    // batch co-runners sharing a single SMT4 core under Stretch B-mode.
    // The two-thread pair benchmarks above keep their fingerprints across
    // the generalisation (the T = 2 path is bit-exact); this one covers the
    // wider fetch-arbitration and partitioning machinery they never touch.
    let ls = profile_by_name("web-search").expect("known ls workload");
    let batches: Vec<Box<dyn TraceSource + Send + Sync>> = ["zeusmp", "gcc", "mcf"]
        .iter()
        .map(|name| {
            Box::new(profile_by_name(name).expect("known batch workload"))
                as Box<dyn TraceSource + Send + Sync>
        })
        .collect();
    let r = Scenario::colocate_n(ls, batches)
        .policy(PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode())))
        .length(SimLength::quick())
        .seed(42)
        .run();
    let threads: Vec<_> = (0..4).map(|i| r.expect_thread(ThreadId::from_index(i))).collect();
    BenchWork {
        sim_cycles: threads.iter().map(|t| t.cycles).max().expect("four threads ran"),
        requests: 0,
        fingerprint: fingerprint(threads.iter().map(|t| t.uipc)),
    }
}

fn bench_cpu_standalone() -> BenchWork {
    let r = Scenario::standalone(profile_by_name("web-search").expect("known workload"))
        .length(SimLength::quick())
        .seed(42)
        .run_thread0();
    BenchWork { sim_cycles: r.cycles, requests: 0, fingerprint: fingerprint([r.uipc]) }
}

fn bench_qos_latency_curve() -> BenchWork {
    let curve = latency_vs_load(&ServiceSpec::web_search(), SimParams::quick(11), 0.2, 6);
    BenchWork {
        sim_cycles: 0,
        requests: curve.iter().map(|p| p.latency.requests as u64).sum(),
        fingerprint: fingerprint(curve.iter().map(|p| p.latency.p99_ms)),
    }
}

fn bench_qos_slack_curve() -> BenchWork {
    let curve = slack_curve(&ServiceSpec::web_search(), SimParams::quick(12), &[0.3, 0.6, 0.9]);
    BenchWork {
        sim_cycles: 0,
        requests: 0,
        fingerprint: fingerprint(curve.iter().map(|p| p.required_performance)),
    }
}

fn bench_cluster_fleet_day() -> BenchWork {
    // The full measured §VI-D pipeline: peak bisection, threshold
    // calibration on the fleet, then the 24-hour day — the calibration loop
    // is exactly the path the fleet optimization pass targets.
    let report =
        CaseStudy::web_search().run_fleet(LoadBalancer::LeastLoaded, FleetScale::quick(42));
    BenchWork {
        sim_cycles: 0,
        requests: report.requests as u64,
        fingerprint: fingerprint([report.gain(), report.p99_ms, report.hours_engaged]),
    }
}

/// Worker threads for the sharded fleet benchmarks: saturate the machine
/// (capped, like `ExperimentConfig::workers`). The report is bit-identical
/// at every count, so this only affects wall clock.
fn fleet_bench_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get()).min(8)
}

fn bench_cluster_fleet_10k() -> BenchWork {
    // The datacenter tentpole: 10 000 servers as 125 racks of 80 behind
    // power-of-two-choices rack dispatch, binned tail retention, one
    // simulated day (~19.2M requests), sharded over the machine's cores.
    // The merge is deterministic, so the fingerprint is worker-independent.
    let report = CaseStudy::web_search()
        .fleet_with(
            LoadBalancer::PowerOfTwoChoices,
            FleetScale::datacenter(42),
            FleetTopology::racked(125, LoadBalancer::PowerOfTwoChoices),
            TailAccumulation::binned_default(),
            1,
        )
        .run_with_workers(fleet_bench_workers());
    BenchWork {
        sim_cycles: 0,
        requests: report.requests as u64,
        fingerprint: fingerprint([
            report.gain(),
            report.p99_ms,
            report.hours_engaged,
            report.violation_fraction,
        ]),
    }
}

fn bench_cluster_fleet_scaling() -> BenchWork {
    // The shards × servers scaling curve: one modest fleet re-run at
    // increasing rack counts (1 rack degenerates to the flat dispatch
    // path). Tracks the sharding overhead — per-shard setup, the
    // deterministic merge — separately from the raw 10k throughput number.
    let study = CaseStudy::web_search();
    let mut requests = 0u64;
    let mut results = Vec::new();
    for racks in [1usize, 8, 64] {
        let report = study
            .fleet_with(
                LoadBalancer::PowerOfTwoChoices,
                FleetScale { servers: 512, requests_per_server: 20, seed: 42 },
                FleetTopology::racked(racks, LoadBalancer::PowerOfTwoChoices),
                TailAccumulation::binned_default(),
                1,
            )
            .run_with_workers(fleet_bench_workers());
        requests += report.requests as u64;
        results.extend([report.gain(), report.p99_ms, report.hours_engaged]);
    }
    BenchWork { sim_cycles: 0, requests, fingerprint: fingerprint(results) }
}

fn bench_figures_quick_matrix() -> BenchWork {
    // The acceptance-criterion benchmark: every figure of the paper rendered
    // cold (no result store, fresh engine) at the quick 1×2 sub-matrix, with
    // the figure fan-out running on all cores exactly as the `figures` driver
    // does. The index-order merge keeps the concatenation — and therefore
    // the fingerprint — byte-identical to the serial rendering loop.
    let engine = Engine::new(ExperimentConfig::quick()).with_sub_matrix(1, 2);
    let specs: Vec<&crate::figures::FigureSpec> = crate::figures::all().iter().collect();
    let rendered = crate::figures::render_many(&engine, &specs, engine.cfg().workers()).concat();
    // Wall-clock-only benchmark: its work units are neither cycles nor
    // requests, so no rate is derived; the fingerprint covers every byte of
    // every rendered figure.
    BenchWork {
        sim_cycles: 0,
        requests: 0,
        fingerprint: fingerprint(rendered.as_bytes().iter().map(|&b| f64::from(b))),
    }
}

/// The benchmark registry, cheap layers first so `perf` gives early signal.
pub fn registry() -> &'static [BenchSpec] {
    const ALL: [BenchSpec; 10] = [
        BenchSpec {
            name: "cpu/colocate-baseline",
            layer: "cpu",
            title: "web-search x zeusmp quick pair under EqualPartition",
            run: bench_cpu_pair_baseline,
        },
        BenchSpec {
            name: "cpu/colocate-bmode",
            layer: "cpu",
            title: "web-search x zeusmp quick pair under Stretch B-mode 56-136",
            run: bench_cpu_pair_bmode,
        },
        BenchSpec {
            name: "cpu/smt4-pair",
            layer: "cpu",
            title: "web-search x 3 batch co-runners on one SMT4 core under B-mode",
            run: bench_cpu_smt4,
        },
        BenchSpec {
            name: "cpu/standalone-websearch",
            layer: "cpu",
            title: "web-search quick stand-alone run on a private core",
            run: bench_cpu_standalone,
        },
        BenchSpec {
            name: "qos/latency-curve",
            layer: "qos",
            title: "Figure 1 latency-vs-load curve at quick request counts",
            run: bench_qos_latency_curve,
        },
        BenchSpec {
            name: "qos/slack-curve",
            layer: "qos",
            title: "Figure 2 slack curve over three load points",
            run: bench_qos_slack_curve,
        },
        BenchSpec {
            name: "cluster/fleet-day",
            layer: "cluster",
            title: "measured Web Search fleet day incl. peak bisection + calibration",
            run: bench_cluster_fleet_day,
        },
        BenchSpec {
            name: "cluster/fleet-10k",
            layer: "cluster",
            title: "10k-server racked fleet day, sharded + deterministically merged",
            run: bench_cluster_fleet_10k,
        },
        BenchSpec {
            name: "cluster/fleet-scaling",
            layer: "cluster",
            title: "512-server fleet day at 1/8/64 racks (sharding scaling curve)",
            run: bench_cluster_fleet_scaling,
        },
        BenchSpec {
            name: "figures/quick-matrix",
            layer: "figures",
            title: "all figures rendered cold at the quick 1x2 sub-matrix",
            run: bench_figures_quick_matrix,
        },
    ];
    &ALL
}

/// Looks a benchmark up by exact name.
pub fn by_name(name: &str) -> Option<&'static BenchSpec> {
    registry().iter().find(|spec| spec.name == name)
}

/// How a benchmark is measured: warmup runs (discarded) then measured runs
/// whose median wall clock is reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureOptions {
    /// Measured runs per benchmark (the report quotes their median).
    pub runs: usize,
    /// Discarded warm-up runs per benchmark.
    pub warmup_runs: usize,
}

impl Default for MeasureOptions {
    fn default() -> MeasureOptions {
        MeasureOptions { runs: 3, warmup_runs: 1 }
    }
}

/// One measured benchmark in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeasurement {
    /// Benchmark name (`layer/slug`).
    pub name: String,
    /// Simulation layer.
    pub layer: String,
    /// Median wall-clock time over the measured runs, milliseconds.
    pub median_wall_ms: f64,
    /// Fastest measured run, milliseconds.
    pub min_wall_ms: f64,
    /// Slowest measured run, milliseconds.
    pub max_wall_ms: f64,
    /// Simulated cycles per run (0 when the layer is not cycle-level).
    pub sim_cycles: u64,
    /// Simulated requests per run (0 when the layer is not request-level).
    pub requests: u64,
    /// Derived rate: simulated cycles per wall-clock second at the median.
    pub sim_cycles_per_sec: f64,
    /// Derived rate: simulated requests per wall-clock second at the median.
    pub requests_per_sec: f64,
}

/// A complete perf report: schema version, label, measurement parameters
/// and every measured benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Free-form label (`ci`, `local`, `baseline`, …).
    pub label: String,
    /// Measured runs per benchmark.
    pub runs: usize,
    /// Warm-up runs per benchmark.
    pub warmup_runs: usize,
    /// The measurements, in registry order.
    pub benchmarks: Vec<BenchMeasurement>,
}

impl BenchReport {
    /// Looks a measurement up by benchmark name.
    pub fn benchmark(&self, name: &str) -> Option<&BenchMeasurement> {
        self.benchmarks.iter().find(|b| b.name == name)
    }

    /// The conventional file name for this report's label.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.label)
    }
}

impl JsonCodec for BenchMeasurement {
    fn to_json(&self) -> Value {
        obj(vec![
            ("name", Value::from(self.name.as_str())),
            ("layer", Value::from(self.layer.as_str())),
            ("median_wall_ms", Value::from(self.median_wall_ms)),
            ("min_wall_ms", Value::from(self.min_wall_ms)),
            ("max_wall_ms", Value::from(self.max_wall_ms)),
            ("sim_cycles", Value::from(self.sim_cycles)),
            ("requests", Value::from(self.requests)),
            ("sim_cycles_per_sec", Value::from(self.sim_cycles_per_sec)),
            ("requests_per_sec", Value::from(self.requests_per_sec)),
        ])
    }
    fn from_json(value: &Value) -> Option<BenchMeasurement> {
        Some(BenchMeasurement {
            name: value.get("name")?.as_str()?.to_string(),
            layer: value.get("layer")?.as_str()?.to_string(),
            median_wall_ms: value.get("median_wall_ms")?.as_f64()?,
            min_wall_ms: value.get("min_wall_ms")?.as_f64()?,
            max_wall_ms: value.get("max_wall_ms")?.as_f64()?,
            sim_cycles: value.get("sim_cycles")?.as_u64()?,
            requests: value.get("requests")?.as_u64()?,
            sim_cycles_per_sec: value.get("sim_cycles_per_sec")?.as_f64()?,
            requests_per_sec: value.get("requests_per_sec")?.as_f64()?,
        })
    }
}

impl JsonCodec for BenchReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("schema_version", Value::from(self.schema_version)),
            ("label", Value::from(self.label.as_str())),
            ("runs", Value::from(self.runs)),
            ("warmup_runs", Value::from(self.warmup_runs)),
            ("benchmarks", self.benchmarks.to_json()),
        ])
    }
    fn from_json(value: &Value) -> Option<BenchReport> {
        let schema_version = value.get("schema_version")?.as_u64()?;
        if schema_version != SCHEMA_VERSION {
            // An incompatible schema must read as "unreadable", not as an
            // empty baseline the gate would silently pass.
            return None;
        }
        Some(BenchReport {
            schema_version,
            label: value.get("label")?.as_str()?.to_string(),
            runs: value.get("runs")?.as_u64()? as usize,
            warmup_runs: value.get("warmup_runs")?.as_u64()? as usize,
            benchmarks: Vec::from_json(value.get("benchmarks")?)?,
        })
    }
}

/// Measures one benchmark: `warmup_runs` discarded runs, then `runs`
/// measured runs whose median wall clock is reported with derived rates.
///
/// # Panics
///
/// Panics if `opts.runs` is zero.
pub fn measure(spec: &BenchSpec, opts: MeasureOptions) -> BenchMeasurement {
    assert!(opts.runs > 0, "need at least one measured run");
    for _ in 0..opts.warmup_runs {
        let _ = (spec.run)();
    }
    let mut wall_ms = Vec::with_capacity(opts.runs);
    let mut work = BenchWork { sim_cycles: 0, requests: 0, fingerprint: 0 };
    for _ in 0..opts.runs {
        let start = Instant::now();
        work = (spec.run)();
        wall_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    wall_ms.sort_by(|a, b| a.partial_cmp(b).expect("wall clocks are finite"));
    let median = if wall_ms.len() % 2 == 1 {
        wall_ms[wall_ms.len() / 2]
    } else {
        0.5 * (wall_ms[wall_ms.len() / 2 - 1] + wall_ms[wall_ms.len() / 2])
    };
    let per_sec = |units: u64| if median > 0.0 { units as f64 / (median / 1e3) } else { 0.0 };
    BenchMeasurement {
        name: spec.name.to_string(),
        layer: spec.layer.to_string(),
        median_wall_ms: median,
        min_wall_ms: wall_ms[0],
        max_wall_ms: wall_ms[wall_ms.len() - 1],
        sim_cycles: work.sim_cycles,
        requests: work.requests,
        sim_cycles_per_sec: per_sec(work.sim_cycles),
        requests_per_sec: per_sec(work.requests),
    }
}

/// Measures every registry benchmark whose name contains `filter` (all of
/// them for an empty filter) into a labelled report.
pub fn measure_all(label: &str, filter: &str, opts: MeasureOptions) -> BenchReport {
    let benchmarks = registry()
        .iter()
        .filter(|spec| spec.name.contains(filter))
        .map(|spec| {
            eprintln!("measuring {} ({} warmup + {} runs)", spec.name, opts.warmup_runs, opts.runs);
            measure(spec, opts)
        })
        .collect();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        label: label.to_string(),
        runs: opts.runs,
        warmup_runs: opts.warmup_runs,
        benchmarks,
    }
}

/// Verdict for one benchmark in a gate comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Within the allowed envelope (the delta may even be an improvement).
    Pass,
    /// Slower than `baseline × (1 + gate_pct/100)`.
    Regressed,
    /// Present in the current report only; nothing to compare against.
    New,
    /// Present in the baseline only — fails, because a benchmark that
    /// silently disappears can hide any regression.
    Missing,
}

/// One row of a gate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateEntry {
    /// Benchmark name.
    pub name: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Baseline median wall clock, ms (`None` for [`Verdict::New`]).
    pub baseline_ms: Option<f64>,
    /// Current median wall clock, ms (`None` for [`Verdict::Missing`]).
    pub current_ms: Option<f64>,
    /// Relative change, e.g. `+0.12` for 12% slower (`None` when either
    /// side is absent).
    pub delta: Option<f64>,
}

/// Result of gating a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Allowed slowdown in percent.
    pub gate_pct: f64,
    /// Per-benchmark rows, baseline order first, then new benchmarks.
    pub entries: Vec<GateEntry>,
}

impl GateOutcome {
    /// Benchmarks that regressed or went missing.
    pub fn failures(&self) -> impl Iterator<Item = &GateEntry> {
        self.entries.iter().filter(|e| matches!(e.verdict, Verdict::Regressed | Verdict::Missing))
    }

    /// `true` when no benchmark regressed or went missing.
    pub fn passed(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Renders the comparison as a fixed-width table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:>12} {:>12} {:>9}  verdict",
            "benchmark", "baseline ms", "current ms", "delta"
        );
        for e in &self.entries {
            let fmt_ms =
                |ms: Option<f64>| ms.map_or_else(|| "-".to_string(), |v| format!("{v:.1}"));
            let delta = e.delta.map_or_else(|| "-".to_string(), |d| format!("{:+.1}%", d * 100.0));
            let verdict = match e.verdict {
                Verdict::Pass => "pass",
                Verdict::Regressed => "REGRESSED",
                Verdict::New => "new (no baseline)",
                Verdict::Missing => "MISSING from current",
            };
            let _ = writeln!(
                out,
                "{:<26} {:>12} {:>12} {:>9}  {}",
                e.name,
                fmt_ms(e.baseline_ms),
                fmt_ms(e.current_ms),
                delta,
                verdict
            );
        }
        let failures = self.failures().count();
        let _ = writeln!(
            out,
            "gate {:+.0}%: {}",
            self.gate_pct,
            if failures == 0 {
                "PASS".to_string()
            } else {
                format!("FAIL ({failures} benchmark(s) regressed or missing)")
            }
        );
        out
    }
}

/// Diffs `current` against `baseline` under an allowed slowdown of
/// `gate_pct` percent. See [`Verdict`] for the per-benchmark rules.
pub fn gate(baseline: &BenchReport, current: &BenchReport, gate_pct: f64) -> GateOutcome {
    let mut entries = Vec::with_capacity(baseline.benchmarks.len());
    for base in &baseline.benchmarks {
        match current.benchmark(&base.name) {
            Some(cur) => {
                let delta = cur.median_wall_ms / base.median_wall_ms - 1.0;
                let verdict = if cur.median_wall_ms > base.median_wall_ms * (1.0 + gate_pct / 100.0)
                {
                    Verdict::Regressed
                } else {
                    Verdict::Pass
                };
                entries.push(GateEntry {
                    name: base.name.clone(),
                    verdict,
                    baseline_ms: Some(base.median_wall_ms),
                    current_ms: Some(cur.median_wall_ms),
                    delta: Some(delta),
                });
            }
            None => entries.push(GateEntry {
                name: base.name.clone(),
                verdict: Verdict::Missing,
                baseline_ms: Some(base.median_wall_ms),
                current_ms: None,
                delta: None,
            }),
        }
    }
    for cur in &current.benchmarks {
        if baseline.benchmark(&cur.name).is_none() {
            entries.push(GateEntry {
                name: cur.name.clone(),
                verdict: Verdict::New,
                baseline_ms: None,
                current_ms: Some(cur.median_wall_ms),
                delta: None,
            });
        }
    }
    GateOutcome { gate_pct, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(name: &str, median_ms: f64) -> BenchMeasurement {
        BenchMeasurement {
            name: name.to_string(),
            layer: name.split('/').next().expect("layered name").to_string(),
            median_wall_ms: median_ms,
            min_wall_ms: median_ms * 0.9,
            max_wall_ms: median_ms * 1.1,
            sim_cycles: 1_000,
            requests: 0,
            sim_cycles_per_sec: 1_000.0 / (median_ms / 1e3),
            requests_per_sec: 0.0,
        }
    }

    fn report(label: &str, benchmarks: Vec<BenchMeasurement>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            label: label.to_string(),
            runs: 3,
            warmup_runs: 1,
            benchmarks,
        }
    }

    #[test]
    fn registry_names_are_unique_and_layered() {
        let mut seen = std::collections::HashSet::new();
        for spec in registry() {
            assert!(seen.insert(spec.name), "duplicate benchmark name {}", spec.name);
            let layer = spec.name.split('/').next().expect("layered name");
            assert_eq!(layer, spec.layer, "{}: name prefix must equal the layer", spec.name);
        }
        assert!(by_name("cpu/colocate-baseline").is_some());
        assert!(by_name("no-such-bench").is_none());
    }

    #[test]
    fn gate_passes_within_the_envelope() {
        let baseline = report("baseline", vec![measurement("cpu/a", 100.0)]);
        let current = report("ci", vec![measurement("cpu/a", 105.0)]);
        let outcome = gate(&baseline, &current, 10.0);
        assert!(outcome.passed());
        assert_eq!(outcome.entries.len(), 1);
        assert_eq!(outcome.entries[0].verdict, Verdict::Pass);
        let delta = outcome.entries[0].delta.expect("both sides present");
        assert!((delta - 0.05).abs() < 1e-12);
    }

    #[test]
    fn gate_fails_on_a_regression() {
        let baseline = report("baseline", vec![measurement("cpu/a", 100.0)]);
        let current = report("ci", vec![measurement("cpu/a", 140.0)]);
        let outcome = gate(&baseline, &current, 25.0);
        assert!(!outcome.passed());
        assert_eq!(outcome.entries[0].verdict, Verdict::Regressed);
        assert!(outcome.render().contains("REGRESSED"));
        // The same numbers pass a looser gate.
        assert!(gate(&baseline, &current, 50.0).passed());
    }

    #[test]
    fn gate_notes_new_benchmarks_without_failing() {
        let baseline = report("baseline", vec![measurement("cpu/a", 100.0)]);
        let current = report("ci", vec![measurement("cpu/a", 100.0), measurement("qos/b", 50.0)]);
        let outcome = gate(&baseline, &current, 10.0);
        assert!(outcome.passed());
        let new: Vec<_> = outcome.entries.iter().filter(|e| e.verdict == Verdict::New).collect();
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].name, "qos/b");
        assert!(new[0].baseline_ms.is_none());
    }

    #[test]
    fn gate_fails_on_a_missing_benchmark() {
        let baseline =
            report("baseline", vec![measurement("cpu/a", 100.0), measurement("qos/b", 50.0)]);
        let current = report("ci", vec![measurement("cpu/a", 100.0)]);
        let outcome = gate(&baseline, &current, 10.0);
        assert!(!outcome.passed());
        let missing: Vec<_> =
            outcome.failures().filter(|e| e.verdict == Verdict::Missing).collect();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].name, "qos/b");
        assert!(outcome.render().contains("MISSING"));
    }

    #[test]
    fn report_json_round_trips() {
        let original = report(
            "baseline",
            vec![measurement("cpu/a", 123.456), measurement("cluster/fleet-day", 4000.25)],
        );
        let restored = BenchReport::from_json(&original.to_json()).expect("round trip");
        assert_eq!(restored, original);
        assert_eq!(
            restored.benchmarks[0].median_wall_ms.to_bits(),
            original.benchmarks[0].median_wall_ms.to_bits()
        );
        assert_eq!(restored.file_name(), "BENCH_baseline.json");
    }

    #[test]
    fn incompatible_schema_versions_refuse_to_decode() {
        let mut value = report("baseline", vec![measurement("cpu/a", 1.0)]).to_json();
        if let Value::Object(map) = &mut value {
            map.insert("schema_version".to_string(), Value::from(SCHEMA_VERSION + 1));
        }
        assert!(BenchReport::from_json(&value).is_none());
    }

    #[test]
    fn median_is_the_middle_run() {
        // A benchmark spec whose run cost is negligible: the median math is
        // what is under test, driven through the public measure() path.
        fn noop() -> BenchWork {
            BenchWork { sim_cycles: 10, requests: 4, fingerprint: 7 }
        }
        let spec = BenchSpec { name: "test/noop", layer: "test", title: "noop", run: noop };
        let m = measure(&spec, MeasureOptions { runs: 3, warmup_runs: 0 });
        assert_eq!(m.name, "test/noop");
        assert!(m.min_wall_ms <= m.median_wall_ms && m.median_wall_ms <= m.max_wall_ms);
        assert_eq!(m.sim_cycles, 10);
        assert_eq!(m.requests, 4);
        assert!(m.sim_cycles_per_sec > 0.0);
    }

    #[test]
    fn fingerprint_is_order_and_value_sensitive() {
        assert_eq!(fingerprint([1.0, 2.0]), fingerprint([1.0, 2.0]));
        assert_ne!(fingerprint([1.0, 2.0]), fingerprint([2.0, 1.0]));
        assert_ne!(fingerprint([1.0]), fingerprint([1.0 + f64::EPSILON]));
        // 0.0 and -0.0 differ in bits, so they must differ in fingerprint.
        assert_ne!(fingerprint([0.0]), fingerprint([-0.0]));
    }
}
