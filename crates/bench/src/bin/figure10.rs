//! Figure 10: per-benchmark speedup of batch applications under the Stretch
//! B-mode with ROB skew 56-136, for each latency-sensitive co-runner.
//! Speedups are sorted from largest to smallest, as in the paper.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure10 [--quick]`

use cpu_sim::CoreSetup;
use sim_model::ThreadId;
use stretch::{RobSkew, StretchMode};
use stretch_bench::harness::{ls_names, run_matrix, ExperimentConfig};
use stretch_bench::report::TableWriter;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };

    let baseline = run_matrix(&cfg, CoreSetup::baseline(&cfg.core));
    let mut b_setup = CoreSetup::baseline(&cfg.core);
    b_setup.partition = StretchMode::BatchBoost(RobSkew::recommended_b_mode())
        .partition_policy(&cfg.core, ThreadId::T0);
    let b_mode = run_matrix(&cfg, b_setup);

    println!("Figure 10: batch speedup from B-mode 56-136 over the equal-partition baseline");
    println!("(per latency-sensitive co-runner, sorted from largest to smallest)");
    println!();

    for ls in ls_names() {
        let mut speedups: Vec<(String, f64)> = baseline
            .iter()
            .zip(&b_mode)
            .filter(|(b, _)| b.ls == ls)
            .map(|(b, s)| (b.batch.clone(), s.batch_uipc / b.batch_uipc - 1.0))
            .collect();
        speedups.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN speedups"));
        let mut table = TableWriter::new(
            &format!("batch speedups when colocated with {ls}"),
            &["rank", "benchmark", "speedup"],
        );
        for (i, (name, s)) in speedups.iter().enumerate() {
            table.row(&[format!("{}", i + 1), name.clone(), format!("{:+.1}%", s * 100.0)]);
        }
        table.print();
        let over_15 = speedups.iter().filter(|(_, s)| *s > 0.15).count();
        let over_10 = speedups.iter().filter(|(_, s)| *s > 0.10).count();
        println!(
            "  -> {over_15} benchmarks gain more than 15%, {over_10} more than 10% \
             (paper: at least 10 over 15%, 12 over 10%)"
        );
        println!();
    }
}
