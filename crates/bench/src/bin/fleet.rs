//! `fleet` — run a (sharded) datacenter fleet day through the cached
//! experiment engine and write the full report as deterministic JSON.
//!
//! ```text
//! cargo run --release --bin fleet                                  # 10k-server racked day
//! cargo run --release --bin fleet -- --servers 512 --racks 8 --workers 2 --out fleet.json
//! cargo run --release --bin fleet -- --cache-dir target/fleet-cache --wipe-cache
//! cargo run --release --bin fleet -- --cache-dir target/fleet-cache --assert-warm
//! ```
//!
//! The report is bit-identical for every `--workers` count (the sharded
//! merge is a deterministic shard-index-order fold), so CI runs the binary
//! cold at two counts and literally `diff`s the JSON outputs.
//!
//! Options:
//!
//! * `--study web-search|youtube` — which §VI-D case study (default
//!   `web-search`);
//! * `--servers N` — fleet size (default 10000);
//! * `--racks N` — rack count; servers must split evenly (default 125).
//!   `--flat` instead dispatches through one global balancer;
//! * `--requests N` — measured requests per server-interval (default 20);
//! * `--days N` — simulated days (default 1);
//! * `--balancer NAME` — `least-loaded`, `p2c` or `round-robin` (default
//!   `p2c`); racked fleets dispatch through it inside each rack;
//! * `--exact-tails` — retain raw sojourns instead of the default 2 ms
//!   fixed-bin histograms (memory grows with the request count);
//! * `--workers N` — shard worker threads (default: all cores, capped at 8);
//! * `--seed N` — fleet seed (default 42);
//! * `--cache-dir PATH` — attach a persistent result store;
//! * `--wipe-cache` — clear that store first (cold run);
//! * `--assert-warm` — exit 1 if the engine performed any simulation run;
//! * `--out PATH` — write the full report JSON there (default
//!   `FLEET_report.json`).
//!
//! Exit status: 0 on success, 1 when `--assert-warm` fails, 2 on usage or
//! I/O errors.

use std::process::ExitCode;

use cluster_sim::{CaseStudy, FleetScale, FleetTopology, LoadBalancer, TailAccumulation};
use stretch_bench::engine::Engine;
use stretch_bench::harness::ExperimentConfig;
use stretch_bench::store::JsonCodec;

struct Options {
    study: CaseStudy,
    study_name: String,
    servers: usize,
    racks: Option<usize>,
    requests: usize,
    days: usize,
    balancer: LoadBalancer,
    exact_tails: bool,
    workers: usize,
    seed: u64,
    cache_dir: Option<String>,
    wipe_cache: bool,
    assert_warm: bool,
    out: String,
}

fn usage() -> String {
    "usage: fleet [--study web-search|youtube] [--servers N] [--racks N | --flat] \
     [--requests N] [--days N] [--balancer NAME] [--exact-tails] [--workers N] [--seed N] \
     [--cache-dir PATH] [--wipe-cache] [--assert-warm] [--out PATH]\n"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        study: CaseStudy::web_search(),
        study_name: "web-search".to_string(),
        servers: 10_000,
        racks: Some(125),
        requests: 20,
        days: 1,
        balancer: LoadBalancer::PowerOfTwoChoices,
        exact_tails: false,
        workers: std::thread::available_parallelism().map_or(4, |n| n.get()).min(8),
        seed: 42,
        cache_dir: None,
        wipe_cache: false,
        assert_warm: false,
        out: "FLEET_report.json".to_string(),
    };
    let mut i = 0;
    while i < args.len() {
        let value_of = |what: &str, i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{what} needs an argument"))
        };
        let count_of = |what: &str, i: &mut usize| -> Result<usize, String> {
            let v = value_of(what, i)?;
            v.parse().map_err(|_| format!("{what} {v}: not a count"))
        };
        match args[i].as_str() {
            "--help" | "-h" => return Ok(None),
            "--study" => {
                let v = value_of("--study", &mut i)?;
                (opts.study, opts.study_name) = match v.as_str() {
                    "web-search" => (CaseStudy::web_search(), v),
                    "youtube" => (CaseStudy::youtube(), v),
                    other => return Err(format!("--study {other}: not a known case study")),
                };
            }
            "--servers" => opts.servers = count_of("--servers", &mut i)?,
            "--racks" => opts.racks = Some(count_of("--racks", &mut i)?),
            "--flat" => opts.racks = None,
            "--requests" => opts.requests = count_of("--requests", &mut i)?,
            "--days" => opts.days = count_of("--days", &mut i)?,
            "--balancer" => {
                let v = value_of("--balancer", &mut i)?;
                opts.balancer = match v.as_str() {
                    "least-loaded" => LoadBalancer::LeastLoaded,
                    "p2c" => LoadBalancer::PowerOfTwoChoices,
                    "round-robin" => LoadBalancer::RoundRobin,
                    other => return Err(format!("--balancer {other}: not a known balancer")),
                };
            }
            "--exact-tails" => opts.exact_tails = true,
            "--workers" => {
                opts.workers = count_of("--workers", &mut i)?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--seed" => {
                let v = value_of("--seed", &mut i)?;
                opts.seed = v.parse().map_err(|_| format!("--seed {v}: not a seed"))?;
            }
            "--cache-dir" => opts.cache_dir = Some(value_of("--cache-dir", &mut i)?),
            "--wipe-cache" => opts.wipe_cache = true,
            "--assert-warm" => opts.assert_warm = true,
            "--out" => opts.out = value_of("--out", &mut i)?,
            unknown => return Err(format!("unknown option {unknown}\n\n{}", usage())),
        }
        i += 1;
    }
    if opts.days == 0 {
        return Err("--days must be at least 1".to_string());
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let topology = match opts.racks {
        Some(racks) => FleetTopology::racked(racks, opts.balancer),
        None => FleetTopology::Flat,
    };
    let tails =
        if opts.exact_tails { TailAccumulation::Exact } else { TailAccumulation::binned_default() };
    let scale =
        FleetScale { servers: opts.servers, requests_per_server: opts.requests, seed: opts.seed };
    // Calibration (peak bisection + threshold fit on the topology's dispatch
    // unit) runs outside the cached cell and on every invocation; it is
    // deterministic and cheap next to the day itself.
    let cfg = opts.study.fleet_config_with(opts.balancer, scale, topology, tails, opts.days);
    if let Err(message) = cfg.validate() {
        eprintln!("invalid fleet configuration: {message}");
        return ExitCode::from(2);
    }

    let mut experiment = ExperimentConfig::quick();
    experiment.parallelism = opts.workers;
    let mut engine = Engine::new(experiment);
    if let Some(dir) = &opts.cache_dir {
        if opts.wipe_cache {
            if let Err(err) = std::fs::remove_dir_all(dir) {
                if err.kind() != std::io::ErrorKind::NotFound {
                    eprintln!("cannot wipe cache dir {dir}: {err}");
                    return ExitCode::from(2);
                }
            }
        }
        engine = match engine.with_store(dir) {
            Ok(engine) => engine,
            Err(err) => {
                eprintln!("cannot open cache dir {dir}: {err}");
                return ExitCode::from(2);
            }
        };
    }

    let report = engine.fleet(&cfg);
    let stats = engine.stats();
    println!(
        "fleet {} x{} {} ({}), {} day(s), {} worker(s): gain {:+.4}%, p99 {:.2} ms, \
         {:.2} h engaged, {} requests, violation fraction {:.2e}",
        opts.study_name,
        opts.servers,
        opts.balancer,
        cfg.topology,
        opts.days,
        opts.workers,
        report.gain() * 100.0,
        report.p99_ms,
        report.hours_engaged,
        report.requests,
        report.violation_fraction,
    );
    println!(
        "engine: {} memo hit(s), {} store hit(s), {} simulation run(s)",
        stats.memo_hits, stats.store_hits, stats.misses
    );

    // serde_json maps are ordered, so the serialisation is deterministic and
    // two runs at different worker counts diff byte-for-byte.
    let json = report.to_json().to_string();
    if let Err(err) = std::fs::write(&opts.out, json + "\n") {
        eprintln!("cannot write {}: {err}", opts.out);
        return ExitCode::from(2);
    }
    println!("report written to {}", opts.out);

    if opts.assert_warm && stats.misses > 0 {
        eprintln!(
            "--assert-warm: engine performed {} simulation run(s); expected a fully warm cache",
            stats.misses
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
