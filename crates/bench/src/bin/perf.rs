//! `perf` — measure the benchmark registry into a machine-readable report
//! and/or gate a report against a committed baseline.
//!
//! ```text
//! cargo run --release --bin perf                               # measure all, write BENCH_local.json
//! cargo run --release --bin perf -- --list                     # show the registry
//! cargo run --release --bin perf -- --filter cpu/ --runs 5     # iterate on one layer
//! cargo run --release --bin perf -- --label ci \
//!     --baseline bench/baseline.json --gate 40                 # measure, then gate (CI)
//! cargo run --release --bin perf -- --baseline bench/baseline.json \
//!     --current BENCH_ci.json --gate 40                        # diff two existing reports
//! ```
//!
//! Options:
//!
//! * `--list` — print the benchmark registry and exit;
//! * `--filter <substr>` — only measure benchmarks whose name contains the
//!   substring (the gate is restricted to the same subset);
//! * `--label <label>` — report label; the report is written to
//!   `BENCH_<label>.json` (default label `local`);
//! * `--out <path>` — override the output path;
//! * `--runs <n>` / `--warmup <n>` — measured / discarded runs per benchmark
//!   (defaults 3 / 1);
//! * `--baseline <file>` — gate against this report after measuring;
//! * `--current <file>` — skip measuring entirely: diff this report against
//!   the baseline;
//! * `--gate <pct>` — allowed slowdown in percent (default 10);
//! * `--assert-improved <name>` — additionally require the named benchmark's
//!   current median to beat the baseline median outright (repeatable). Used
//!   by CI to prove a claimed optimisation actually landed, not merely that
//!   it "didn't regress".
//!
//! Exit status: 0 on success, 1 when the gate fails, 2 on usage or I/O
//! errors.

use std::process::ExitCode;

use stretch_bench::perf::{self, BenchReport, MeasureOptions};
use stretch_bench::store::JsonCodec;

struct Options {
    list: bool,
    filter: String,
    label: String,
    out: Option<String>,
    runs: usize,
    warmup: usize,
    baseline: Option<String>,
    current: Option<String>,
    gate_pct: f64,
    assert_improved: Vec<String>,
}

fn usage() -> String {
    let mut text = String::from(
        "usage: perf [--list] [--filter SUBSTR] [--label LABEL] [--out PATH] [--runs N] \
         [--warmup N] [--baseline FILE] [--current FILE] [--gate PCT] \
         [--assert-improved NAME]\n\nbenchmarks:\n",
    );
    for spec in perf::registry() {
        text.push_str(&format!("  {:<26} {}\n", spec.name, spec.title));
    }
    text
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        list: false,
        filter: String::new(),
        label: "local".to_string(),
        out: None,
        runs: 3,
        warmup: 1,
        baseline: None,
        current: None,
        gate_pct: 10.0,
        assert_improved: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let value_of = |what: &str, i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{what} needs an argument"))
        };
        match args[i].as_str() {
            // --help prints the same registry listing as --list and must
            // succeed (exit 0, stdout), not take the usage-error path.
            "--list" | "--help" | "-h" => opts.list = true,
            "--filter" => opts.filter = value_of("--filter", &mut i)?,
            "--label" => opts.label = value_of("--label", &mut i)?,
            "--out" => opts.out = Some(value_of("--out", &mut i)?),
            "--baseline" => opts.baseline = Some(value_of("--baseline", &mut i)?),
            "--current" => opts.current = Some(value_of("--current", &mut i)?),
            "--runs" => {
                let v = value_of("--runs", &mut i)?;
                opts.runs = v.parse().map_err(|_| format!("--runs {v}: not a count"))?;
                if opts.runs == 0 {
                    return Err("--runs must be at least 1".to_string());
                }
            }
            "--warmup" => {
                let v = value_of("--warmup", &mut i)?;
                opts.warmup = v.parse().map_err(|_| format!("--warmup {v}: not a count"))?;
            }
            "--gate" => {
                let v = value_of("--gate", &mut i)?;
                opts.gate_pct = v.parse().map_err(|_| format!("--gate {v}: not a percentage"))?;
                if !opts.gate_pct.is_finite() || opts.gate_pct < 0.0 {
                    return Err(format!("--gate {v}: must be a non-negative percentage"));
                }
            }
            "--assert-improved" => {
                opts.assert_improved.push(value_of("--assert-improved", &mut i)?);
            }
            unknown => return Err(format!("unknown option {unknown}\n\n{}", usage())),
        }
        i += 1;
    }
    if opts.current.is_some() && opts.baseline.is_none() {
        return Err("--current needs --baseline to diff against".to_string());
    }
    if !opts.assert_improved.is_empty() && opts.baseline.is_none() {
        return Err("--assert-improved needs --baseline to compare against".to_string());
    }
    Ok(opts)
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let value =
        serde_json::from_str(&text).map_err(|err| format!("{path} is not valid JSON: {err:?}"))?;
    BenchReport::from_json(&value).ok_or_else(|| {
        format!(
            "{path} is not a schema-v{} perf report (re-measure it with this binary)",
            perf::SCHEMA_VERSION
        )
    })
}

/// Restricts a report to the benchmarks matching the measurement filter, so
/// `--filter` runs do not flag every other baseline benchmark as missing.
fn apply_filter(mut report: BenchReport, filter: &str) -> BenchReport {
    report.benchmarks.retain(|b| b.name.contains(filter));
    report
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let current = if let Some(path) = &opts.current {
        match load_report(path) {
            Ok(report) => apply_filter(report, &opts.filter),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::from(2);
            }
        }
    } else {
        let measured = perf::measure_all(
            &opts.label,
            &opts.filter,
            MeasureOptions { runs: opts.runs, warmup_runs: opts.warmup },
        );
        if measured.benchmarks.is_empty() {
            eprintln!("--filter {:?} matches no benchmarks\n\n{}", opts.filter, usage());
            return ExitCode::from(2);
        }
        let out = opts.out.clone().unwrap_or_else(|| measured.file_name());
        let text = serde_json::to_string_pretty(&measured.to_json())
            .expect("Value rendering is infallible");
        if let Err(err) = std::fs::write(&out, text + "\n") {
            eprintln!("cannot write {out}: {err}");
            return ExitCode::from(2);
        }
        println!("{:<26} {:>12} {:>14} {:>14}", "benchmark", "median ms", "Mcycles/s", "req/s");
        for b in &measured.benchmarks {
            println!(
                "{:<26} {:>12.1} {:>14} {:>14}",
                b.name,
                b.median_wall_ms,
                if b.sim_cycles > 0 {
                    format!("{:.2}", b.sim_cycles_per_sec / 1e6)
                } else {
                    "-".to_string()
                },
                if b.requests > 0 { format!("{:.0}", b.requests_per_sec) } else { "-".to_string() },
            );
        }
        println!("report written to {out} (schema v{})", measured.schema_version);
        measured
    };

    let Some(baseline_path) = &opts.baseline else {
        return ExitCode::SUCCESS;
    };
    let baseline = match load_report(baseline_path) {
        Ok(report) => apply_filter(report, &opts.filter),
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let outcome = perf::gate(&baseline, &current, opts.gate_pct);
    print!("{}", outcome.render());
    let mut failed = !outcome.passed();
    for name in &opts.assert_improved {
        let base = baseline.benchmarks.iter().find(|b| &b.name == name);
        let cur = current.benchmarks.iter().find(|b| &b.name == name);
        match (base, cur) {
            (Some(base), Some(cur)) if cur.median_wall_ms < base.median_wall_ms => {
                println!(
                    "improved  {name}: {:.1} ms -> {:.1} ms ({:+.1}%)",
                    base.median_wall_ms,
                    cur.median_wall_ms,
                    (cur.median_wall_ms / base.median_wall_ms - 1.0) * 100.0
                );
            }
            (Some(base), Some(cur)) => {
                println!(
                    "NOT IMPROVED  {name}: {:.1} ms -> {:.1} ms (improvement required)",
                    base.median_wall_ms, cur.median_wall_ms
                );
                failed = true;
            }
            _ => {
                eprintln!("--assert-improved {name}: not present in both reports");
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
