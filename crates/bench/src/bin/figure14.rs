//! Figure 14 and the §VI-D case studies: diurnal load patterns for a Web
//! Search cluster and a YouTube-like video cluster, the hours during which
//! Stretch's B-mode can be engaged, and the resulting 24-hour cluster
//! throughput gains.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure14`

use cluster::{CaseStudy, DiurnalPattern};
use stretch_bench::report::TableWriter;

fn main() {
    let mut table = TableWriter::new(
        "Figure 14: diurnal load (fraction of peak) and B-mode engagement (<85% of peak)",
        &["hour", "web-search load", "B-mode", "youtube load", "B-mode"],
    );
    for hour in 0..24 {
        let ws = DiurnalPattern::WebSearch.load_at(hour as f64);
        let yt = DiurnalPattern::YouTube.load_at(hour as f64);
        table.row(&[
            format!("{hour:02}:00"),
            format!("{:.0}%", ws * 100.0),
            if ws < 0.85 { "engaged".into() } else { "-".to_string() },
            format!("{:.0}%", yt * 100.0),
            if yt < 0.85 { "engaged".into() } else { "-".to_string() },
        ]);
    }
    table.print();
    println!();

    let mut summary = TableWriter::new(
        "Cluster case studies (B-mode 56-136 engaged below 85% of peak load)",
        &["cluster", "hours engaged / day", "24-hour batch throughput gain", "paper"],
    );
    let ws = CaseStudy::web_search().run();
    let yt = CaseStudy::youtube().run();
    summary.row(&[
        "Web Search".to_string(),
        format!("{:.1} h", ws.hours_engaged),
        format!("{:+.1}%", ws.gain() * 100.0),
        "~11 h, +5%".to_string(),
    ]);
    summary.row(&[
        "YouTube".to_string(),
        format!("{:.1} h", yt.hours_engaged),
        format!("{:+.1}%", yt.gain() * 100.0),
        "~17 h, +11%".to_string(),
    ]);
    summary.print();
}
