//! Thin wrapper: renders the measured (fleet-simulated) variant of the
//! paper's §VI-D cluster case studies via the shared figure registry
//! (`stretch_bench::figures`), so its output is identical to the `figures`
//! driver's.
//!
//! Run with:
//! `cargo run --release -p stretch-bench --bin figure14_measured [--quick]`

fn main() {
    stretch_bench::figures::run_standalone_binary("figure14_measured");
}
