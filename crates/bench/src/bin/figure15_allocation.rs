//! Thin wrapper: renders the allocation × colocation policy comparison
//! (Figure 15, extension) via the shared figure registry
//! (`stretch_bench::figures`), so its output is identical to the `figures`
//! driver's.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure15_allocation [--quick]`

fn main() {
    stretch_bench::figures::run_standalone_binary("figure15_allocation");
}
