//! Thin wrapper: renders the paper's Figure 7 via the shared figure
//! registry (`stretch_bench::figures`), so its output is identical to the
//! `figures` driver's.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure07 [--quick]`

fn main() {
    stretch_bench::figures::run_standalone_binary("figure07");
}
