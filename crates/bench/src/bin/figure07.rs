//! Figure 7: memory-level parallelism of Web Search versus zeusmp — the
//! fraction of execution time with at least N concurrent in-flight memory
//! requests (to distinct cache blocks).
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure07 [--quick]`

use cpu_sim::run_standalone;
use stretch_bench::harness::{pair_seed, ExperimentConfig};
use stretch_bench::report::TableWriter;
use workloads::{batch, latency_sensitive};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };

    let ws = run_standalone(
        &cfg.core,
        latency_sensitive::web_search(pair_seed(cfg.seed, "web-search", "mlp")),
        cfg.length,
    );
    let zeusmp =
        run_standalone(&cfg.core, batch::zeusmp(pair_seed(cfg.seed, "zeusmp", "mlp")), cfg.length);

    let mut table = TableWriter::new(
        "Figure 7: fraction of time with >= N memory requests in flight",
        &["N (in-flight requests)", "web-search", "zeusmp"],
    );
    for n in 1..=5usize {
        table.row(&[
            format!(">={n}"),
            format!("{:.1}%", ws.mlp.fraction_at_least(n) * 100.0),
            format!("{:.1}%", zeusmp.mlp.fraction_at_least(n) * 100.0),
        ]);
    }
    table.print();

    println!();
    println!(
        "Web Search exhibits MLP (>=2 in flight) {:.0}% of the time vs {:.0}% for zeusmp \
         (paper: 9% vs 55%); >=3 in flight: {:.0}% vs {:.0}% (paper: 3% vs 21%).",
        ws.mlp.fraction_at_least(2) * 100.0,
        zeusmp.mlp.fraction_at_least(2) * 100.0,
        ws.mlp.fraction_at_least(3) * 100.0,
        zeusmp.mlp.fraction_at_least(3) * 100.0
    );
}
