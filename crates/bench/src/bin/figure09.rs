//! Figure 9: performance change under the Stretch B-mode and Q-mode skews,
//! relative to the baseline equal ROB partitioning.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure09 [--quick]`

use cpu_sim::CoreSetup;
use sim_model::ThreadId;
use sim_stats::DistributionSummary;
use stretch::{RobSkew, StretchMode};
use stretch_bench::harness::{run_matrix, ExperimentConfig, PairOutcome};
use stretch_bench::report::format_distribution_row;

fn speedups(base: &[PairOutcome], other: &[PairOutcome]) -> (Vec<f64>, Vec<f64>) {
    let mut ls = Vec::new();
    let mut batch = Vec::new();
    for (b, o) in base.iter().zip(other) {
        assert_eq!((&b.ls, &b.batch), (&o.ls, &o.batch), "matrices must be aligned");
        ls.push(o.ls_uipc / b.ls_uipc - 1.0);
        batch.push(o.batch_uipc / b.batch_uipc - 1.0);
    }
    (ls, batch)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };

    println!("Figure 9: speedup over the equally partitioned baseline");
    println!();
    let baseline = run_matrix(&cfg, CoreSetup::baseline(&cfg.core));

    println!("B-modes (ROB skew LS-batch):");
    for skew in RobSkew::b_mode_sweep() {
        report_skew(&cfg, &baseline, StretchMode::BatchBoost(skew));
    }
    println!();
    println!("Q-modes (ROB skew LS-batch):");
    for skew in RobSkew::q_mode_sweep() {
        report_skew(&cfg, &baseline, StretchMode::QosBoost(skew));
    }
    println!();
    println!("Paper headline: B-mode 56-136 gives batch +13% avg (+30% max) at a 7% avg LS cost;");
    println!("B-mode 32-160 gives +18% avg (+40% max); Q-mode 136-56 gives LS +7% avg (+18% max)");
    println!("while costing batch 21% avg.");
}

fn report_skew(cfg: &ExperimentConfig, baseline: &[PairOutcome], mode: StretchMode) {
    let mut setup = CoreSetup::baseline(&cfg.core);
    setup.partition = mode.partition_policy(&cfg.core, ThreadId::T0);
    let result = run_matrix(cfg, setup);
    let (ls, batch) = speedups(baseline, &result);
    println!(
        "{}",
        format_distribution_row(&format!("{mode} (LS)"), &DistributionSummary::from_samples(&ls))
    );
    println!(
        "{}",
        format_distribution_row(
            &format!("{mode} (batch)"),
            &DistributionSummary::from_samples(&batch)
        )
    );
}
