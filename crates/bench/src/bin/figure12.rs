//! Figure 12: fetch throttling (ratios 1:2 to 1:16) versus Stretch B-mode
//! 56-136, both relative to the equally partitioned baseline.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure12 [--quick]`

use baselines::{fetch_throttling_setup, FETCH_THROTTLING_RATIOS};
use cpu_sim::CoreSetup;
use sim_model::ThreadId;
use stretch::{RobSkew, StretchMode};
use stretch_bench::harness::{ls_names, run_matrix, ExperimentConfig, PairOutcome};
use stretch_bench::report::TableWriter;

fn per_ls_average(baseline: &[PairOutcome], other: &[PairOutcome], ls: &str) -> (f64, f64) {
    let pairs: Vec<(&PairOutcome, &PairOutcome)> =
        baseline.iter().zip(other).filter(|(b, _)| b.ls == ls).collect();
    let n = pairs.len() as f64;
    let ls_slow = pairs.iter().map(|(b, o)| 1.0 - o.ls_uipc / b.ls_uipc).sum::<f64>() / n;
    let batch_speed = pairs.iter().map(|(b, o)| o.batch_uipc / b.batch_uipc - 1.0).sum::<f64>() / n;
    (ls_slow, batch_speed)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };

    let baseline = run_matrix(&cfg, CoreSetup::baseline(&cfg.core));

    let mut configs: Vec<(String, Vec<PairOutcome>)> = Vec::new();
    for ratio in FETCH_THROTTLING_RATIOS {
        let matrix = run_matrix(&cfg, fetch_throttling_setup(&cfg.core, ThreadId::T0, ratio));
        configs.push((format!("FT 1:{ratio}"), matrix));
    }
    let mut stretch_setup = CoreSetup::baseline(&cfg.core);
    stretch_setup.partition = StretchMode::BatchBoost(RobSkew::recommended_b_mode())
        .partition_policy(&cfg.core, ThreadId::T0);
    configs.push(("Stretch 56-136".to_string(), run_matrix(&cfg, stretch_setup)));

    let mut slow_table = TableWriter::new(
        "Figure 12 (top): average slowdown of the latency-sensitive thread (lower is better)",
        &["configuration", "data-serving", "web-serving", "web-search", "media-streaming"],
    );
    let mut speed_table = TableWriter::new(
        "Figure 12 (bottom): average speedup of the batch thread (higher is better)",
        &["configuration", "data-serving", "web-serving", "web-search", "media-streaming"],
    );
    for (name, matrix) in &configs {
        let mut slow_row = vec![name.clone()];
        let mut speed_row = vec![name.clone()];
        for ls in ls_names() {
            let (ls_slow, batch_speed) = per_ls_average(&baseline, matrix, &ls);
            slow_row.push(format!("{:.1}%", ls_slow * 100.0));
            speed_row.push(format!("{:+.1}%", batch_speed * 100.0));
        }
        slow_table.row(&slow_row);
        speed_table.row(&speed_row);
    }
    slow_table.print();
    println!();
    speed_table.print();
    println!();
    println!("Paper: fetch throttling 1:8/1:16 costs latency-sensitive threads 48%/68% while");
    println!("buying batch only 4%/6%; Stretch delivers +13% batch for a 7% LS cost.");
}
