//! Figure 6: sensitivity to ROB capacity.
//!
//! Each workload runs alone on a core whose (per-thread) ROB capacity is
//! swept from 16 to 192 entries; performance is normalised to the 192-entry
//! point. The paper plots the four latency-sensitive services, the batch
//! average and `zeusmp`.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure06 [--quick]`

use cpu_sim::run_standalone_with_rob;
use stretch_bench::harness::{batch_names, pair_seed, parallel_map, ExperimentConfig};
use stretch_bench::report::TableWriter;
use workloads::profile_by_name;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };
    let rob_sizes: Vec<usize> = vec![16, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192];

    let mut curves: Vec<(String, Vec<f64>)> = Vec::new();
    let mut series: Vec<String> = vec![
        "data-serving".into(),
        "web-serving".into(),
        "web-search".into(),
        "media-streaming".into(),
        "zeusmp".into(),
    ];
    series.extend(batch_names());
    series.dedup();

    let workers = if cfg.parallelism > 0 {
        cfg.parallelism
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    };
    let results = parallel_map(series.clone(), workers, |name| {
        let profile = profile_by_name(name).expect("known workload");
        let seed = pair_seed(cfg.seed, name, "rob-sweep");
        let uipcs: Vec<f64> = rob_sizes
            .iter()
            .map(|&rob| {
                run_standalone_with_rob(&cfg.core, profile.spawn(seed), rob, cfg.length).uipc
            })
            .collect();
        (name.clone(), uipcs)
    });
    for (name, uipcs) in results {
        curves.push((name, uipcs));
    }

    // Batch average over the 29 SPEC-like profiles.
    let batch_set: Vec<&(String, Vec<f64>)> =
        curves.iter().filter(|(n, _)| batch_names().contains(n)).collect();
    let batch_avg: Vec<f64> = (0..rob_sizes.len())
        .map(|i| batch_set.iter().map(|(_, c)| c[i]).sum::<f64>() / batch_set.len() as f64)
        .collect();

    let mut table = TableWriter::new(
        "Figure 6: slowdown vs ROB size (normalised to 192 entries; higher = worse)",
        &[
            "ROB entries",
            "data-serving",
            "web-serving",
            "web-search",
            "media-streaming",
            "batch (avg)",
            "zeusmp",
        ],
    );
    let lookup = |name: &str| -> &Vec<f64> {
        &curves.iter().find(|(n, _)| n == name).expect("series present").1
    };
    for (i, rob) in rob_sizes.iter().enumerate() {
        let row: Vec<String> = std::iter::once(rob.to_string())
            .chain(["data-serving", "web-serving", "web-search", "media-streaming"].iter().map(
                |n| {
                    let c = lookup(n);
                    format!("{:.1}%", (1.0 - c[i] / c[rob_sizes.len() - 1]) * 100.0)
                },
            ))
            .chain(std::iter::once(format!(
                "{:.1}%",
                (1.0 - batch_avg[i] / batch_avg[rob_sizes.len() - 1]) * 100.0
            )))
            .chain(std::iter::once({
                let c = lookup("zeusmp");
                format!("{:.1}%", (1.0 - c[i] / c[rob_sizes.len() - 1]) * 100.0)
            }))
            .collect();
        table.row(&row);
    }
    table.print();

    // The headline numbers quoted in §III-C.
    let idx_96 = rob_sizes.iter().position(|&r| r == 96).expect("96 in sweep");
    let idx_48 = rob_sizes.iter().position(|&r| r == 48).expect("48 in sweep");
    let last = rob_sizes.len() - 1;
    let batch_loss_96 = 1.0 - batch_avg[idx_96] / batch_avg[last];
    let batch_worst_96 =
        batch_set.iter().map(|(_, c)| 1.0 - c[idx_96] / c[last]).fold(f64::MIN, f64::max);
    let ls_loss_48: Vec<f64> = ["data-serving", "web-serving", "web-search", "media-streaming"]
        .iter()
        .map(|n| {
            let c = lookup(n);
            1.0 - c[idx_48] / c[last]
        })
        .collect();
    println!();
    println!(
        "Batch loss at 96 entries: {:.1}% average, {:.1}% worst case (paper: 19% / 31%)",
        batch_loss_96 * 100.0,
        batch_worst_96 * 100.0
    );
    println!(
        "Latency-sensitive loss at 48 entries: {:.1}%..{:.1}% (paper: within 23%)",
        ls_loss_48.iter().cloned().fold(f64::MAX, f64::min) * 100.0,
        ls_loss_48.iter().cloned().fold(f64::MIN, f64::max) * 100.0
    );
}
