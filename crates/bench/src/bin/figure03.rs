//! Figure 3: slowdown incurred by colocating latency-sensitive and batch
//! applications on the baseline SMT core (equal ROB partitioning), relative
//! to stand-alone execution on a full core.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure03 [--quick]`

use cpu_sim::CoreSetup;
use sim_stats::DistributionSummary;
use stretch_bench::harness::{ls_names, run_matrix, standalone_reference, ExperimentConfig};
use stretch_bench::report::format_distribution_row;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };

    println!("Figure 3: colocation slowdown on the baseline SMT core");
    println!("(positive = slower than stand-alone on a full core)");
    println!();

    let reference = standalone_reference(&cfg);
    let matrix = run_matrix(&cfg, CoreSetup::baseline(&cfg.core));

    let mut all_ls = Vec::new();
    let mut all_batch = Vec::new();
    for ls in ls_names() {
        let ls_slow: Vec<f64> = matrix
            .iter()
            .filter(|p| p.ls == ls)
            .map(|p| 1.0 - p.ls_uipc / reference[&p.ls])
            .collect();
        let batch_slow: Vec<f64> = matrix
            .iter()
            .filter(|p| p.ls == ls)
            .map(|p| 1.0 - p.batch_uipc / reference[&p.batch])
            .collect();
        println!(
            "{}",
            format_distribution_row(
                &format!("{ls} (LS thread)"),
                &DistributionSummary::from_samples(&ls_slow)
            )
        );
        println!(
            "{}",
            format_distribution_row(
                &format!("{ls} (batch co-runners)"),
                &DistributionSummary::from_samples(&batch_slow)
            )
        );
        all_ls.extend(ls_slow);
        all_batch.extend(batch_slow);
    }

    println!();
    let ls_summary = DistributionSummary::from_samples(&all_ls);
    let batch_summary = DistributionSummary::from_samples(&all_batch);
    println!("{}", format_distribution_row("ALL latency-sensitive", &ls_summary));
    println!("{}", format_distribution_row("ALL batch", &batch_summary));
    println!();
    println!("Paper: latency-sensitive 14% average / 28% max; batch 24% average / 46% max.");
}
