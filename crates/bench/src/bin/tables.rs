//! Tables I, II and III: the workload specifications and the simulated
//! processor parameters used throughout the reproduction.
//!
//! Run with: `cargo run --release -p stretch-bench --bin tables`
//! (pass `--json` to emit the tables as JSON for plotting scripts).

use qos::ServiceSpec;
use sim_model::CoreConfig;
use stretch_bench::report::{json, TableWriter};
use workloads::{batch, latency_sensitive};

fn main() {
    let as_json = std::env::args().skip(1).any(|a| a == "--json");
    let emit = |table: &TableWriter| {
        if as_json {
            println!("{}", json::render(table));
        } else {
            table.print();
        }
    };
    // Table I: latency-sensitive workloads and their QoS targets.
    let mut t1 = TableWriter::new(
        "Table I: latency-sensitive workloads and QoS targets",
        &["workload", "QoS target", "tail metric", "service median (ms)", "CPU fraction"],
    );
    for s in ServiceSpec::all() {
        t1.row(&[
            s.name.clone(),
            format!("{} ms", s.qos_target_ms),
            format!("{:?}", s.tail_metric),
            format!("{}", s.service_median_ms),
            format!("{:.0}%", s.cpu_fraction * 100.0),
        ]);
    }
    emit(&t1);
    println!();

    // Table II: simulated processor parameters.
    let cfg = CoreConfig::default();
    let mut t2 =
        TableWriter::new("Table II: simulated processor parameters", &["parameter", "value"]);
    t2.row(&[
        "Fetch width".into(),
        format!(
            "{} instructions, up to {} blocks, {} branch",
            cfg.fetch_width, cfg.fetch_blocks_per_cycle, cfg.fetch_branches_per_cycle
        ),
    ]);
    t2.row(&[
        "L1-I".into(),
        format!(
            "{} KB, {}-way, {} banks",
            cfg.l1i.capacity_bytes / 1024,
            cfg.l1i.ways,
            cfg.l1i.banks
        ),
    ]);
    t2.row(&[
        "Branch predictor".into(),
        format!(
            "hybrid ({}K gShare + {}K bimodal), {}-entry BTB",
            cfg.branch.gshare_entries / 1024,
            cfg.branch.bimodal_entries / 1024,
            cfg.branch.btb_entries
        ),
    ]);
    t2.row(&["Pipeline flush".into(), format!("{} cycles", cfg.pipeline_flush_cycles)]);
    t2.row(&[
        "ROB".into(),
        format!("{} entries total, {} per thread", cfg.rob_capacity, cfg.rob_capacity / 2),
    ]);
    t2.row(&[
        "LSQ".into(),
        format!("{} entries total, {} per thread", cfg.lsq_capacity, cfg.lsq_capacity / 2),
    ]);
    t2.row(&[
        "L1-D".into(),
        format!(
            "{} KB, {}-way, {} MSHRs per thread, stride prefetcher ({} PCs)",
            cfg.l1d.capacity_bytes / 1024,
            cfg.l1d.ways,
            cfg.mshrs_per_thread,
            cfg.prefetcher_pc_slots
        ),
    ]);
    t2.row(&[
        "Functional units".into(),
        format!(
            "{} int ALU + {} mul, {} FPU, {} LSU",
            cfg.fus.int_alu, cfg.fus.int_mul, cfg.fus.fpu, cfg.fus.lsu
        ),
    ]);
    t2.row(&[
        "Dispatch/commit width".into(),
        format!("{} / {}", cfg.dispatch_width, cfg.commit_width),
    ]);
    t2.row(&[
        "LLC".into(),
        format!(
            "{} MB, {}-way, {}-cycle average access",
            cfg.uncore.llc_capacity_bytes / (1024 * 1024),
            cfg.uncore.llc_ways,
            cfg.uncore.llc_latency
        ),
    ]);
    t2.row(&[
        "Memory".into(),
        format!(
            "{} ns ({} cycles at {} GHz)",
            cfg.uncore.mem_latency_ns,
            cfg.uncore.mem_latency_cycles(),
            cfg.uncore.freq_ghz
        ),
    ]);
    emit(&t2);
    println!();

    // Table III: workload profiles used for the microarchitectural studies.
    let mut t3 = TableWriter::new(
        "Table III: workload profiles (synthetic substitutes)",
        &[
            "workload",
            "class",
            "code footprint",
            "data footprint",
            "dependent loads",
            "stride frac",
        ],
    );
    for p in latency_sensitive::all_profiles().into_iter().chain(batch::all_profiles()) {
        t3.row(&[
            p.name.clone(),
            format!("{}", p.class),
            format!("{} KB", p.code_footprint_bytes / 1024),
            format!("{} MB", p.data_footprint_bytes / (1024 * 1024)),
            format!("{:.0}%", p.dependent_load_frac * 100.0),
            format!("{:.0}%", p.stride_frac * 100.0),
        ]);
    }
    emit(&t3);
}
