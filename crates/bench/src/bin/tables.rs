//! Thin wrapper: renders Tables I, II and III via the shared figure registry
//! (`stretch_bench::figures`), so its output is identical to the `figures`
//! driver's.
//!
//! Run with: `cargo run --release -p stretch-bench --bin tables`
//! (pass `--json` to emit the tables as JSON for plotting scripts).

use stretch_bench::{Engine, ExperimentConfig};

fn main() {
    let as_json = std::env::args().skip(1).any(|a| a == "--json");
    let engine = Engine::new(ExperimentConfig::standard());
    print!("{}", stretch_bench::figures::tables(&engine, as_json));
}
