//! Figure 4: slowdown of Web Search (left) and of each batch co-runner
//! (right) when exactly one core resource is shared between the SMT threads
//! (ROB, L1-I, L1-D, BTB+BP), everything else being private.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure04 [--quick]`

use cpu_sim::StudiedResource;
use stretch_bench::harness::{
    batch_names, parallel_map, run_single_pair, standalone_reference, ExperimentConfig,
};
use stretch_bench::report::TableWriter;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };
    let ls = "web-search";

    let reference = standalone_reference(&cfg);

    let mut table = TableWriter::new(
        "Figure 4: per-resource sharing slowdown for Web Search colocations",
        &[
            "batch co-runner",
            "WS|ROB",
            "WS|L1-I",
            "WS|L1-D",
            "WS|BTB+BP",
            "batch|ROB",
            "batch|L1-I",
            "batch|L1-D",
            "batch|BTB+BP",
        ],
    );

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let rows = parallel_map(batch_names(), workers, |batch| {
        let mut ls_cells = Vec::new();
        let mut batch_cells = Vec::new();
        for resource in StudiedResource::ALL {
            let setup = resource.setup(&cfg.core);
            let out = run_single_pair(&cfg, setup, ls, batch);
            ls_cells.push(1.0 - out.ls_uipc / reference[ls]);
            batch_cells.push(1.0 - out.batch_uipc / reference[batch]);
        }
        (batch.clone(), ls_cells, batch_cells)
    });

    let mut rob_losses = Vec::new();
    for (batch, ls_cells, batch_cells) in &rows {
        rob_losses.push(batch_cells[0]);
        let mut row = vec![batch.clone()];
        row.extend(ls_cells.iter().map(|v| format!("{:.1}%", v * 100.0)));
        row.extend(batch_cells.iter().map(|v| format!("{:.1}%", v * 100.0)));
        table.row(&row);
    }
    table.print();

    let over_15 = rob_losses.iter().filter(|&&v| v > 0.15).count();
    let max = rob_losses.iter().cloned().fold(f64::MIN, f64::max);
    println!();
    println!(
        "Batch co-runners losing more than 15% in the shared ROB: {over_15} of {} (paper: 15 of 29); \
         worst case {:.1}% (paper: 31%).",
        rob_losses.len(),
        max * 100.0
    );
}
