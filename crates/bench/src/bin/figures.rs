//! `figures` — the single-process driver for every figure and table of the
//! paper.
//!
//! Runs any subset (or all) of the figures in one process on the shared
//! experiment [`Engine`], computing the stand-alone reference and every
//! shared (setup, pair) matrix cell exactly once and memoising results
//! across figures *and* across invocations via the on-disk result cache.
//!
//! ```text
//! cargo run --release --bin figures -- --all
//! cargo run --release --bin figures -- figure03 figure09
//! cargo run --release --bin figures -- --all --quick --matrix 2x3
//! ```
//!
//! Options:
//!
//! * `--all` — render every figure/table in paper order;
//! * `--quick` — quick simulation lengths and request counts (CI scale);
//! * `--cache-dir <dir>` — result-cache location (default
//!   `target/result-cache`);
//! * `--no-cache` — in-process memoisation only, nothing persisted;
//! * `--wipe-cache` — delete every cache entry, then proceed;
//! * `--matrix <LxB>` — restrict to the first L latency-sensitive and B
//!   batch workloads (e.g. `2x3`) for quick sub-matrix runs;
//! * `--workers <N>` — cap simulation/render parallelism at N threads
//!   (default: all cores). Output is byte-identical at any worker count:
//!   figures render concurrently but are printed in selection order;
//! * `--assert-warm` — exit non-zero if any simulation ran (CI uses this to
//!   prove the second invocation is served entirely from the cache);
//! * `--list` — print the registry and exit.

use std::process::ExitCode;

use stretch_bench::figures;
use stretch_bench::report::format_cache_stats;
use stretch_bench::{Engine, ExperimentConfig};

struct Options {
    all: bool,
    quick: bool,
    cache_dir: Option<String>,
    wipe_cache: bool,
    sub_matrix: Option<(usize, usize)>,
    workers: Option<usize>,
    assert_warm: bool,
    list: bool,
    names: Vec<String>,
}

fn usage() -> String {
    let mut text = String::from(
        "usage: figures [--all | NAME...] [--quick] [--cache-dir DIR] [--no-cache] \
         [--wipe-cache] [--matrix LxB] [--workers N] [--assert-warm] [--list]\n\navailable figures:\n",
    );
    for spec in figures::all() {
        text.push_str(&format!("  {:<10} {}\n", spec.name, spec.title));
    }
    text
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        quick: false,
        cache_dir: Some("target/result-cache".to_string()),
        wipe_cache: false,
        sub_matrix: None,
        workers: None,
        assert_warm: false,
        list: false,
        names: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => opts.all = true,
            "--quick" => opts.quick = true,
            "--no-cache" => opts.cache_dir = None,
            "--wipe-cache" => opts.wipe_cache = true,
            "--assert-warm" => opts.assert_warm = true,
            "--list" => opts.list = true,
            "--help" | "-h" => return Err(usage()),
            "--cache-dir" => {
                i += 1;
                let dir = args.get(i).ok_or("--cache-dir needs a directory argument")?;
                opts.cache_dir = Some(dir.clone());
            }
            "--matrix" => {
                i += 1;
                let spec = args.get(i).ok_or("--matrix needs an LxB argument (e.g. 2x3)")?;
                let (ls, batch) = spec
                    .split_once('x')
                    .ok_or_else(|| format!("--matrix {spec}: expected LxB (e.g. 2x3)"))?;
                let ls: usize = ls.parse().map_err(|_| format!("--matrix {spec}: bad LS count"))?;
                let batch: usize =
                    batch.parse().map_err(|_| format!("--matrix {spec}: bad batch count"))?;
                let (max_ls, max_batch) =
                    (stretch_bench::ls_names().len(), stretch_bench::batch_names().len());
                if ls < 1 || ls > max_ls || batch < 1 || batch > max_batch {
                    return Err(format!(
                        "--matrix {spec}: LS must be 1..={max_ls} and batch 1..={max_batch}"
                    ));
                }
                opts.sub_matrix = Some((ls, batch));
            }
            "--workers" => {
                i += 1;
                let v = args.get(i).ok_or("--workers needs a thread count argument")?;
                let n: usize =
                    v.parse().map_err(|_| format!("--workers {v}: not a thread count"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
                opts.workers = Some(n);
            }
            name if !name.starts_with('-') => opts.names.push(name.to_string()),
            unknown => return Err(format!("unknown option {unknown}\n\n{}", usage())),
        }
        i += 1;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if opts.wipe_cache && opts.cache_dir.is_none() {
        eprintln!("--wipe-cache needs a cache to wipe; drop --no-cache (or pass --cache-dir)");
        return ExitCode::from(2);
    }

    let selected: Vec<&figures::FigureSpec> = if opts.all {
        figures::all().iter().collect()
    } else if opts.names.is_empty() {
        eprintln!("nothing to do: pass --all or figure names\n\n{}", usage());
        return ExitCode::from(2);
    } else {
        let mut selected = Vec::new();
        for name in &opts.names {
            match figures::by_name(name) {
                Some(spec) => selected.push(spec),
                None => {
                    eprintln!("unknown figure {name}\n\n{}", usage());
                    return ExitCode::from(2);
                }
            }
        }
        selected
    };

    let mut cfg = if opts.quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };
    if let Some(n) = opts.workers {
        cfg.parallelism = n;
    }
    let mut engine = Engine::new(cfg);
    if let Some((ls, batch)) = opts.sub_matrix {
        engine = engine.with_sub_matrix(ls, batch);
    }
    if let Some(dir) = &opts.cache_dir {
        engine = match engine.with_store(dir) {
            Ok(engine) => engine,
            Err(err) => {
                eprintln!("cannot open result cache at {dir}: {err}");
                return ExitCode::from(2);
            }
        };
    }
    if opts.wipe_cache {
        if let Some(store) = engine.store() {
            match store.wipe() {
                Ok(n) => eprintln!("wiped {n} cache entries from {}", store.dir().display()),
                Err(err) => {
                    eprintln!("cannot wipe result cache: {err}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    // Render all selected figures concurrently (the engine deduplicates any
    // shared cells), then print in selection order — the output is
    // byte-identical to the serial loop this replaces, at any worker count.
    let rendered = figures::render_many(&engine, &selected, engine.cfg().workers());
    for (i, text) in rendered.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{text}");
    }

    let stats = engine.stats();
    println!();
    println!("{}", format_cache_stats(&stats));
    if let Some(store) = engine.store() {
        println!(
            "cache directory: {} ({} entries)",
            store.dir().display(),
            store.entries().map_or_else(|_| "?".to_string(), |n| n.to_string())
        );
    }

    if opts.assert_warm && stats.misses > 0 {
        eprintln!(
            "--assert-warm failed: {} simulation runs were not served from the cache",
            stats.misses
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
