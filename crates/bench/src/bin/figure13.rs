//! Figure 13: ideal software scheduling versus Stretch versus the
//! combination, measured as the average batch speedup over the baseline core
//! for each latency-sensitive co-runner.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure13 [--quick]`

use baselines::{ideal_scheduling_setup, ideal_scheduling_with_stretch_setup};
use cpu_sim::CoreSetup;
use sim_model::ThreadId;
use stretch::{RobSkew, StretchMode};
use stretch_bench::harness::{ls_names, run_matrix, ExperimentConfig, PairOutcome};
use stretch_bench::report::TableWriter;

fn average_batch_speedup(baseline: &[PairOutcome], other: &[PairOutcome], ls: &str) -> f64 {
    let pairs: Vec<(&PairOutcome, &PairOutcome)> =
        baseline.iter().zip(other).filter(|(b, _)| b.ls == ls).collect();
    pairs.iter().map(|(b, o)| o.batch_uipc / b.batch_uipc - 1.0).sum::<f64>() / pairs.len() as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };
    let skew = RobSkew::recommended_b_mode();

    let baseline = run_matrix(&cfg, CoreSetup::baseline(&cfg.core));
    let ideal = run_matrix(&cfg, ideal_scheduling_setup(&cfg.core));
    let mut stretch_setup = CoreSetup::baseline(&cfg.core);
    stretch_setup.partition =
        StretchMode::BatchBoost(skew).partition_policy(&cfg.core, ThreadId::T0);
    let stretch_only = run_matrix(&cfg, stretch_setup);
    let combined = run_matrix(
        &cfg,
        ideal_scheduling_with_stretch_setup(
            &cfg.core,
            ThreadId::T0,
            skew.ls_entries,
            skew.batch_entries,
        ),
    );

    let mut table = TableWriter::new(
        "Figure 13: average batch speedup over the baseline core",
        &[
            "latency-sensitive",
            "ideal software scheduling",
            "Stretch",
            "Stretch + ideal scheduling",
        ],
    );
    let mut sums = [0.0f64; 3];
    for ls in ls_names() {
        let a = average_batch_speedup(&baseline, &ideal, &ls);
        let b = average_batch_speedup(&baseline, &stretch_only, &ls);
        let c = average_batch_speedup(&baseline, &combined, &ls);
        sums[0] += a;
        sums[1] += b;
        sums[2] += c;
        table.row(&[
            ls.clone(),
            format!("{:+.1}%", a * 100.0),
            format!("{:+.1}%", b * 100.0),
            format!("{:+.1}%", c * 100.0),
        ]);
    }
    let n = ls_names().len() as f64;
    table.row(&[
        "Average".to_string(),
        format!("{:+.1}%", sums[0] / n * 100.0),
        format!("{:+.1}%", sums[1] / n * 100.0),
        format!("{:+.1}%", sums[2] / n * 100.0),
    ]);
    table.print();
    println!();
    println!("Paper: ideal software scheduling +8%, Stretch +13%, combined +21% — the two");
    println!("techniques address different sources of loss and compose additively.");
}
