//! Figure 5: average slowdown caused by sharing each core resource, for all
//! four latency-sensitive services and their batch co-runners.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure05 [--quick]`

use cpu_sim::StudiedResource;
use stretch_bench::harness::{
    batch_names, ls_names, parallel_map, run_single_pair, standalone_reference, ExperimentConfig,
};
use stretch_bench::report::TableWriter;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };

    let reference = standalone_reference(&cfg);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    let mut table = TableWriter::new(
        "Figure 5: average slowdown from sharing one resource (LS thread | batch co-runners)",
        &["latency-sensitive", "side", "ROB", "L1-I", "L1-D", "BTB+BP"],
    );

    for ls in ls_names() {
        let per_resource = parallel_map(StudiedResource::ALL.to_vec(), workers, |resource| {
            let setup = resource.setup(&cfg.core);
            let mut ls_sum = 0.0;
            let mut batch_sum = 0.0;
            let batches = batch_names();
            for batch in &batches {
                let out = run_single_pair(&cfg, setup, &ls, batch);
                ls_sum += 1.0 - out.ls_uipc / reference[&ls];
                batch_sum += 1.0 - out.batch_uipc / reference[batch];
            }
            (ls_sum / batches.len() as f64, batch_sum / batches.len() as f64)
        });
        let mut ls_row = vec![ls.clone(), "LS".to_string()];
        let mut batch_row = vec![ls.clone(), "batch".to_string()];
        for (ls_avg, batch_avg) in &per_resource {
            ls_row.push(format!("{:.1}%", ls_avg * 100.0));
            batch_row.push(format!("{:.1}%", batch_avg * 100.0));
        }
        table.row(&ls_row);
        table.row(&batch_row);
    }
    table.print();
    println!();
    println!("Paper: the ROB is the consistent source of batch degradation (19% avg, 31% max);");
    println!("no single resource dominates latency-sensitive slowdown except lbm's L1-D pressure.");
}
