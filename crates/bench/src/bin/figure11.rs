//! Figure 11: slowdown of batch applications under a dynamically shared ROB,
//! relative to the equal static partitioning.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure11 [--quick]`

use baselines::dynamic_rob_setup;
use cpu_sim::CoreSetup;
use sim_stats::DistributionSummary;
use stretch_bench::harness::{ls_names, run_matrix, ExperimentConfig};
use stretch_bench::report::format_distribution_row;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };

    let baseline = run_matrix(&cfg, CoreSetup::baseline(&cfg.core));
    let dynamic = run_matrix(&cfg, dynamic_rob_setup(&cfg.core));

    println!("Figure 11: batch slowdown under dynamic ROB sharing vs equal partitioning");
    println!("(positive = dynamic sharing is worse for the batch thread)");
    println!();

    let mut all_batch = Vec::new();
    let mut all_ls = Vec::new();
    for ls in ls_names() {
        let batch_slow: Vec<f64> = baseline
            .iter()
            .zip(&dynamic)
            .filter(|(b, _)| b.ls == ls)
            .map(|(b, d)| 1.0 - d.batch_uipc / b.batch_uipc)
            .collect();
        let ls_speed: Vec<f64> = baseline
            .iter()
            .zip(&dynamic)
            .filter(|(b, _)| b.ls == ls)
            .map(|(b, d)| d.ls_uipc / b.ls_uipc - 1.0)
            .collect();
        println!(
            "{}",
            format_distribution_row(
                &format!("{ls} co-runners"),
                &DistributionSummary::from_samples(&batch_slow)
            )
        );
        all_batch.extend(batch_slow);
        all_ls.extend(ls_speed);
    }
    println!();
    println!(
        "{}",
        format_distribution_row(
            "ALL batch slowdown",
            &DistributionSummary::from_samples(&all_batch)
        )
    );
    println!(
        "{}",
        format_distribution_row(
            "ALL latency-sensitive speedup",
            &DistributionSummary::from_samples(&all_ls)
        )
    );
    println!();
    println!("Paper: batch loses 8% on average (49% max) under dynamic sharing, while");
    println!(
        "latency-sensitive workloads gain ~4% (11% max); Data Serving co-runners suffer most."
    );
}
