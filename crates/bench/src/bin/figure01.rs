//! Figure 1: Web Search average, 95th- and 99th-percentile latency as a
//! function of load, against the 100 ms QoS target.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure01 [--quick]`

use qos::{latency_vs_load, ServiceSpec, SimParams};
use stretch_bench::report::TableWriter;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = ServiceSpec::web_search();
    let params = if quick { SimParams::quick(42) } else { SimParams::standard(42) };

    let points = latency_vs_load(&spec, params, 0.05, 20);
    let mut table = TableWriter::new(
        &format!(
            "Figure 1: {} latency vs load (QoS target {} ms p99)",
            spec.name, spec.qos_target_ms
        ),
        &["load (% of max)", "average (ms)", "95th percentile (ms)", "99th percentile (ms)", "QoS"],
    );
    for p in &points {
        table.row(&[
            format!("{:.0}%", p.load * 100.0),
            format!("{:.1}", p.latency.mean_ms),
            format!("{:.1}", p.latency.p95_ms),
            format!("{:.1}", p.latency.p99_ms),
            if p.latency.p99_ms <= spec.qos_target_ms {
                "ok".to_string()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }
    table.print();

    let first = points.first().expect("non-empty sweep");
    let last = points.last().expect("non-empty sweep");
    println!();
    println!(
        "Average latency grows {:.0}% from the lowest to the highest load point (paper: 43%);",
        (last.latency.mean_ms / first.latency.mean_ms - 1.0) * 100.0
    );
    println!(
        "the 99th percentile grows {:.1}x (paper: over 2.5x).",
        last.latency.p99_ms / first.latency.p99_ms
    );
}
