//! Figure 2: slack in per-request processing time — the minimum fraction of
//! full single-thread performance each latency-sensitive service needs to
//! keep meeting its QoS target, as a function of load.
//!
//! Run with: `cargo run --release -p stretch-bench --bin figure02 [--quick]`

use qos::{slack_curve, ServiceSpec, SimParams};
use stretch_bench::report::TableWriter;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick { SimParams::quick(7) } else { SimParams::standard(7) };
    let loads: Vec<f64> = (1..=10).map(|i| i as f64 * 0.1).collect();

    let mut table = TableWriter::new(
        "Figure 2: performance required to meet the QoS target (% of full core)",
        &["load (% of max)", "data-serving", "web-serving", "web-search", "media-streaming"],
    );
    let mut columns = Vec::new();
    for spec in ServiceSpec::all() {
        columns.push(slack_curve(&spec, params, &loads));
    }
    for (i, &load) in loads.iter().enumerate() {
        let mut row = vec![format!("{:.0}%", load * 100.0)];
        for col in &columns {
            row.push(format!("{:.0}%", col[i].required_performance * 100.0));
        }
        table.row(&row);
    }
    table.print();

    println!();
    let at = |target_load: f64| -> Vec<f64> {
        let idx = loads.iter().position(|&l| (l - target_load).abs() < 1e-9).expect("load on grid");
        columns.iter().map(|c| c[idx].slack()).collect()
    };
    let s20 = at(0.2);
    let s50 = at(0.5);
    println!(
        "At 20% load, {:.0}-{:.0}% of single-thread performance can be sacrificed (paper: 55-90%).",
        s20.iter().cloned().fold(f64::MAX, f64::min) * 100.0,
        s20.iter().cloned().fold(f64::MIN, f64::max) * 100.0
    );
    println!(
        "At 50% load, {:.0}-{:.0}% can be sacrificed (paper: 30-70%).",
        s50.iter().cloned().fold(f64::MAX, f64::min) * 100.0,
        s50.iter().cloned().fold(f64::MIN, f64::max) * 100.0
    );
}
