//! Shared experiment machinery: the experiment configuration, the worker
//! pool, and the per-pairing [`Scenario`] runner the engine memoises.
//!
//! The old free-standing matrix runners (`run_matrix`, `run_matrix_on`, …)
//! are gone: all matrix-shaped work goes through [`crate::Engine`], which
//! funnels every cell into [`run_single_pair`] — one [`cpu_sim::Scenario`]
//! under one [`ColocationPolicy`].

use cpu_sim::{ColocationPolicy, Scenario, SimLength};
use sim_model::{CoreConfig, ThreadId};
use std::sync::Mutex;
use workloads::{batch, latency_sensitive};

pub use cpu_sim::pair_seed;

/// Common experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Core configuration (Table II defaults).
    pub core: CoreConfig,
    /// Simulation length per run.
    pub length: SimLength,
    /// Base RNG seed; every workload pairing derives its own stream from it.
    pub seed: u64,
    /// Number of worker threads for the experiment matrix (0 = all cores).
    pub parallelism: usize,
}

impl ExperimentConfig {
    /// The standard configuration used by the figure binaries.
    pub fn standard() -> ExperimentConfig {
        ExperimentConfig {
            core: CoreConfig::default(),
            length: SimLength::standard(),
            seed: 42,
            parallelism: 0,
        }
    }

    /// A reduced configuration for tests and criterion benches.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            core: CoreConfig::default(),
            length: SimLength::quick(),
            seed: 42,
            parallelism: 0,
        }
    }

    /// The effective worker-thread count for this configuration.
    pub fn workers(&self) -> usize {
        if self.parallelism > 0 {
            self.parallelism
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
    }

    /// Whether this is the reduced (test/CI) scale.
    pub fn is_quick(&self) -> bool {
        self.length == SimLength::quick()
    }

    /// Queueing-simulation parameters matching this configuration's scale:
    /// quick core simulations pair with quick request-level simulations.
    pub fn qos_params(&self, seed: u64) -> sim_qos::SimParams {
        if self.is_quick() {
            sim_qos::SimParams::quick(seed)
        } else {
            sim_qos::SimParams::standard(seed)
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig::standard()
    }
}

/// Outcome of one latency-sensitive × batch colocation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PairOutcome {
    /// Latency-sensitive workload name (thread 0).
    pub ls: String,
    /// Batch workload name (thread 1).
    pub batch: String,
    /// UIPC of the latency-sensitive thread.
    pub ls_uipc: f64,
    /// UIPC of the batch thread.
    pub batch_uipc: f64,
}

/// The four latency-sensitive workload names.
pub fn ls_names() -> Vec<String> {
    latency_sensitive::NAMES.iter().map(|s| s.to_string()).collect()
}

/// The 29 batch workload names.
pub fn batch_names() -> Vec<String> {
    batch::NAMES.iter().map(|s| s.to_string()).collect()
}

/// Runs `f` over `items` on a pool of OS threads, preserving input order.
///
/// Work is distributed by an atomic work-stealing index; each worker
/// accumulates `(index, result)` pairs in a thread-local buffer and merges
/// them into the shared output exactly once when it runs out of work, so
/// result writes never contend per item.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let n = items.len();
    let collected: Mutex<Vec<Vec<(usize, R)>>> = Mutex::new(Vec::with_capacity(workers));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let items_ref = &items;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f_ref(&items_ref[i])));
                }
                if !local.is_empty() {
                    collected.lock().expect("no panics while holding the lock").push(local);
                }
            });
        }
    });
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    for chunk in collected.into_inner().expect("scope joined all workers") {
        for (i, r) in chunk {
            results[i] = Some(r);
        }
    }
    results.into_iter().map(|r| r.expect("every index was processed")).collect()
}

/// Runs one latency-sensitive × batch pairing under a policy, as a
/// [`Scenario`]. The scenario derives the pairing's seed with
/// [`pair_seed`], so the same pairing sees identical instruction streams
/// under every policy.
///
/// # Panics
///
/// Panics if either workload name is unknown.
pub fn run_single_pair(
    cfg: &ExperimentConfig,
    policy: &dyn ColocationPolicy,
    ls: &str,
    batch_name: &str,
) -> PairOutcome {
    let ls_profile = latency_sensitive::profile_by_name(ls).expect("known latency-sensitive name");
    let batch_profile = batch::profile_by_name(batch_name).expect("known batch name");
    let result = Scenario::colocate(ls_profile, batch_profile)
        .config(cfg.core)
        .boxed_policy(policy.clone_policy())
        .length(cfg.length)
        .seed(cfg.seed)
        .run();
    PairOutcome {
        ls: ls.to_string(),
        batch: batch_name.to_string(),
        ls_uipc: result.expect_thread(ThreadId::T0).uipc,
        batch_uipc: result.expect_thread(ThreadId::T1).uipc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_sim::EqualPartition;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), 8, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn name_lists_have_paper_cardinality() {
        assert_eq!(ls_names().len(), 4);
        assert_eq!(batch_names().len(), 29);
    }

    #[test]
    fn single_pair_runs_and_reports_both_threads() {
        let cfg = ExperimentConfig::quick();
        let out = run_single_pair(&cfg, &EqualPartition, "web-search", "zeusmp");
        assert_eq!(out.ls, "web-search");
        assert_eq!(out.batch, "zeusmp");
        assert!(out.ls_uipc > 0.0);
        assert!(out.batch_uipc > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = parallel_map(vec![1, 2, 3], 0, |x| *x);
    }
}
