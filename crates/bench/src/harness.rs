//! Shared experiment machinery: colocation matrices, stand-alone references
//! and parallel execution.

use cpu_sim::{run_pair, run_standalone, ColocationResult, CoreSetup, SimLength};
use sim_model::{CoreConfig, ThreadId};
use std::collections::HashMap;
use std::sync::Mutex;
use workloads::{batch, latency_sensitive};

/// Common experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Core configuration (Table II defaults).
    pub core: CoreConfig,
    /// Simulation length per run.
    pub length: SimLength,
    /// Base RNG seed; every workload pairing derives its own stream from it.
    pub seed: u64,
    /// Number of worker threads for the experiment matrix (0 = all cores).
    pub parallelism: usize,
}

impl ExperimentConfig {
    /// The standard configuration used by the figure binaries.
    pub fn standard() -> ExperimentConfig {
        ExperimentConfig {
            core: CoreConfig::default(),
            length: SimLength::standard(),
            seed: 42,
            parallelism: 0,
        }
    }

    /// A reduced configuration for tests and criterion benches.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            core: CoreConfig::default(),
            length: SimLength::quick(),
            seed: 42,
            parallelism: 0,
        }
    }

    /// The effective worker-thread count for this configuration.
    pub fn workers(&self) -> usize {
        if self.parallelism > 0 {
            self.parallelism
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
    }

    /// Queueing-simulation parameters matching this configuration's scale:
    /// quick core simulations pair with quick request-level simulations.
    pub fn qos_params(&self, seed: u64) -> qos::SimParams {
        if self.length == SimLength::quick() {
            qos::SimParams::quick(seed)
        } else {
            qos::SimParams::standard(seed)
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig::standard()
    }
}

/// Outcome of one latency-sensitive × batch colocation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PairOutcome {
    /// Latency-sensitive workload name (thread 0).
    pub ls: String,
    /// Batch workload name (thread 1).
    pub batch: String,
    /// UIPC of the latency-sensitive thread.
    pub ls_uipc: f64,
    /// UIPC of the batch thread.
    pub batch_uipc: f64,
}

/// The four latency-sensitive workload names.
pub fn ls_names() -> Vec<String> {
    latency_sensitive::NAMES.iter().map(|s| s.to_string()).collect()
}

/// The 29 batch workload names.
pub fn batch_names() -> Vec<String> {
    batch::NAMES.iter().map(|s| s.to_string()).collect()
}

/// Runs `f` over `items` on a pool of OS threads, preserving input order.
///
/// Work is distributed by an atomic work-stealing index; each worker
/// accumulates `(index, result)` pairs in a thread-local buffer and merges
/// them into the shared output exactly once when it runs out of work, so
/// result writes never contend per item.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let n = items.len();
    let collected: Mutex<Vec<Vec<(usize, R)>>> = Mutex::new(Vec::with_capacity(workers));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let items_ref = &items;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f_ref(&items_ref[i])));
                }
                if !local.is_empty() {
                    collected.lock().expect("no panics while holding the lock").push(local);
                }
            });
        }
    });
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    for chunk in collected.into_inner().expect("scope joined all workers") {
        for (i, r) in chunk {
            results[i] = Some(r);
        }
    }
    results.into_iter().map(|r| r.expect("every index was processed")).collect()
}

/// Derives a per-pair seed so that the same pairing always sees the same
/// instruction streams across configurations (paired comparisons).
///
/// Each name is length-prefixed before it enters the FNV loop, so distinct
/// pairings can never alias onto the same byte stream (the previous bare
/// concatenation collided for e.g. `("ab", "c")` and `("a", "bc")`, silently
/// sharing instruction streams between different experiments).
pub fn pair_seed(base: u64, ls: &str, batch_name: &str) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for name in [ls, batch_name] {
        for b in (name.len() as u64).to_le_bytes() {
            mix(b);
        }
        for b in name.bytes() {
            mix(b);
        }
    }
    h
}

/// Runs the full latency-sensitive × batch colocation matrix under one core
/// setup.
pub fn run_matrix(cfg: &ExperimentConfig, setup: CoreSetup) -> Vec<PairOutcome> {
    run_matrix_with(cfg, |_ls, _batch| setup)
}

/// Runs the colocation matrix, letting the caller pick a setup per pairing
/// (used by experiments whose configuration depends on the pair, e.g. fetch
/// throttling needs to know which thread is latency-sensitive).
pub fn run_matrix_with(
    cfg: &ExperimentConfig,
    setup_for: impl Fn(&str, &str) -> CoreSetup + Sync,
) -> Vec<PairOutcome> {
    run_matrix_on(cfg, &ls_names(), &batch_names(), setup_for)
}

/// Runs a colocation sub-matrix over explicit workload name lists.
///
/// [`run_matrix_with`] delegates here with the full 4 × 29 study; tests and
/// quick experiments pass smaller slices so the same code path can be
/// exercised in seconds. Outcomes are ordered row-major: every batch
/// workload for the first latency-sensitive name, then the next.
pub fn run_matrix_on(
    cfg: &ExperimentConfig,
    ls: &[String],
    batch: &[String],
    setup_for: impl Fn(&str, &str) -> CoreSetup + Sync,
) -> Vec<PairOutcome> {
    let pairs: Vec<(String, String)> =
        ls.iter().flat_map(|ls| batch.iter().map(move |b| (ls.clone(), b.clone()))).collect();
    parallel_map(pairs, cfg.workers(), |(ls, batch_name)| {
        let setup = setup_for(ls, batch_name);
        run_single_pair(cfg, setup, ls, batch_name)
    })
}

/// Runs one latency-sensitive × batch pairing under a setup.
pub fn run_single_pair(
    cfg: &ExperimentConfig,
    setup: CoreSetup,
    ls: &str,
    batch_name: &str,
) -> PairOutcome {
    let seed = pair_seed(cfg.seed, ls, batch_name);
    let ls_trace = latency_sensitive::by_name(ls, seed).expect("known latency-sensitive name");
    let batch_trace = batch::by_name(batch_name, seed ^ 1).expect("known batch name");
    let result: ColocationResult = run_pair(&cfg.core, setup, ls_trace, batch_trace, cfg.length);
    PairOutcome {
        ls: ls.to_string(),
        batch: batch_name.to_string(),
        ls_uipc: result.uipc(ThreadId::T0),
        batch_uipc: result.uipc(ThreadId::T1),
    }
}

/// Stand-alone full-core UIPC for every workload in the study (the
/// normalisation baseline for Figures 3–6). Results are keyed by workload
/// name.
pub fn standalone_reference(cfg: &ExperimentConfig) -> HashMap<String, f64> {
    let mut names = ls_names();
    names.extend(batch_names());
    let outcomes = parallel_map(names.clone(), cfg.workers(), |name| {
        let seed = pair_seed(cfg.seed, name, "standalone");
        let trace = workloads::profile_by_name(name)
            .unwrap_or_else(|| panic!("unknown workload {name}"))
            .spawn(seed);
        let r = run_standalone(&cfg.core, trace, cfg.length);
        (name.clone(), r.uipc)
    });
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_seed_is_stable_and_distinct() {
        assert_eq!(pair_seed(1, "a", "b"), pair_seed(1, "a", "b"));
        assert_ne!(pair_seed(1, "a", "b"), pair_seed(1, "a", "c"));
        assert_ne!(pair_seed(1, "a", "b"), pair_seed(2, "a", "b"));
    }

    #[test]
    fn pair_seed_does_not_collide_on_name_boundaries() {
        // Regression: bare byte concatenation made these four pairings hash
        // identically, silently sharing instruction streams across distinct
        // experiments. Length prefixes keep every split of the same byte
        // soup distinct.
        let adversarial = [("ab", "c"), ("a", "bc"), ("abc", ""), ("", "abc")];
        for (i, a) in adversarial.iter().enumerate() {
            for b in &adversarial[i + 1..] {
                assert_ne!(
                    pair_seed(42, a.0, a.1),
                    pair_seed(42, b.0, b.1),
                    "({:?}, {:?}) must not collide with ({:?}, {:?})",
                    a.0,
                    a.1,
                    b.0,
                    b.1
                );
            }
        }
        // Swapping roles must also produce a different stream.
        assert_ne!(pair_seed(42, "web-search", "zeusmp"), pair_seed(42, "zeusmp", "web-search"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), 8, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn name_lists_have_paper_cardinality() {
        assert_eq!(ls_names().len(), 4);
        assert_eq!(batch_names().len(), 29);
    }

    #[test]
    fn single_pair_runs_and_reports_both_threads() {
        let cfg = ExperimentConfig::quick();
        let setup = CoreSetup::baseline(&cfg.core);
        let out = run_single_pair(&cfg, setup, "web-search", "zeusmp");
        assert_eq!(out.ls, "web-search");
        assert_eq!(out.batch, "zeusmp");
        assert!(out.ls_uipc > 0.0);
        assert!(out.batch_uipc > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = parallel_map(vec![1, 2, 3], 0, |x| *x);
    }
}
