//! Shared experiment machinery: colocation matrices, stand-alone references
//! and parallel execution.

use cpu_sim::{run_pair, run_standalone, ColocationResult, CoreSetup, SimLength};
use sim_model::{CoreConfig, ThreadId};
use std::collections::HashMap;
use std::sync::Mutex;
use workloads::{batch, latency_sensitive};

/// Common experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Core configuration (Table II defaults).
    pub core: CoreConfig,
    /// Simulation length per run.
    pub length: SimLength,
    /// Base RNG seed; every workload pairing derives its own stream from it.
    pub seed: u64,
    /// Number of worker threads for the experiment matrix (0 = all cores).
    pub parallelism: usize,
}

impl ExperimentConfig {
    /// The standard configuration used by the figure binaries.
    pub fn standard() -> ExperimentConfig {
        ExperimentConfig {
            core: CoreConfig::default(),
            length: SimLength::standard(),
            seed: 42,
            parallelism: 0,
        }
    }

    /// A reduced configuration for tests and criterion benches.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            core: CoreConfig::default(),
            length: SimLength::quick(),
            seed: 42,
            parallelism: 0,
        }
    }

    fn workers(&self) -> usize {
        if self.parallelism > 0 {
            self.parallelism
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig::standard()
    }
}

/// Outcome of one latency-sensitive × batch colocation run.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Latency-sensitive workload name (thread 0).
    pub ls: String,
    /// Batch workload name (thread 1).
    pub batch: String,
    /// UIPC of the latency-sensitive thread.
    pub ls_uipc: f64,
    /// UIPC of the batch thread.
    pub batch_uipc: f64,
}

/// The four latency-sensitive workload names.
pub fn ls_names() -> Vec<String> {
    latency_sensitive::NAMES.iter().map(|s| s.to_string()).collect()
}

/// The 29 batch workload names.
pub fn batch_names() -> Vec<String> {
    batch::NAMES.iter().map(|s| s.to_string()).collect()
}

/// Runs `f` over `items` on a pool of OS threads, preserving input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let n = items.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let results = Mutex::new(results);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let items_ref = &items;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f_ref(&items_ref[i]);
                results.lock().expect("no panics while holding the lock")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|r| r.expect("every index was processed"))
        .collect()
}

/// Derives a per-pair seed so that the same pairing always sees the same
/// instruction streams across configurations (paired comparisons).
pub fn pair_seed(base: u64, ls: &str, batch_name: &str) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    for b in ls.bytes().chain(batch_name.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the full latency-sensitive × batch colocation matrix under one core
/// setup.
pub fn run_matrix(cfg: &ExperimentConfig, setup: CoreSetup) -> Vec<PairOutcome> {
    run_matrix_with(cfg, |_ls, _batch| setup)
}

/// Runs the colocation matrix, letting the caller pick a setup per pairing
/// (used by experiments whose configuration depends on the pair, e.g. fetch
/// throttling needs to know which thread is latency-sensitive).
pub fn run_matrix_with(
    cfg: &ExperimentConfig,
    setup_for: impl Fn(&str, &str) -> CoreSetup + Sync,
) -> Vec<PairOutcome> {
    run_matrix_on(cfg, &ls_names(), &batch_names(), setup_for)
}

/// Runs a colocation sub-matrix over explicit workload name lists.
///
/// [`run_matrix_with`] delegates here with the full 4 × 29 study; tests and
/// quick experiments pass smaller slices so the same code path can be
/// exercised in seconds. Outcomes are ordered row-major: every batch
/// workload for the first latency-sensitive name, then the next.
pub fn run_matrix_on(
    cfg: &ExperimentConfig,
    ls: &[String],
    batch: &[String],
    setup_for: impl Fn(&str, &str) -> CoreSetup + Sync,
) -> Vec<PairOutcome> {
    let pairs: Vec<(String, String)> =
        ls.iter().flat_map(|ls| batch.iter().map(move |b| (ls.clone(), b.clone()))).collect();
    parallel_map(pairs, cfg.workers(), |(ls, batch_name)| {
        let setup = setup_for(ls, batch_name);
        run_single_pair(cfg, setup, ls, batch_name)
    })
}

/// Runs one latency-sensitive × batch pairing under a setup.
pub fn run_single_pair(
    cfg: &ExperimentConfig,
    setup: CoreSetup,
    ls: &str,
    batch_name: &str,
) -> PairOutcome {
    let seed = pair_seed(cfg.seed, ls, batch_name);
    let ls_trace = latency_sensitive::by_name(ls, seed).expect("known latency-sensitive name");
    let batch_trace = batch::by_name(batch_name, seed ^ 1).expect("known batch name");
    let result: ColocationResult = run_pair(&cfg.core, setup, ls_trace, batch_trace, cfg.length);
    PairOutcome {
        ls: ls.to_string(),
        batch: batch_name.to_string(),
        ls_uipc: result.uipc(ThreadId::T0),
        batch_uipc: result.uipc(ThreadId::T1),
    }
}

/// Stand-alone full-core UIPC for every workload in the study (the
/// normalisation baseline for Figures 3–6). Results are keyed by workload
/// name.
pub fn standalone_reference(cfg: &ExperimentConfig) -> HashMap<String, f64> {
    let mut names = ls_names();
    names.extend(batch_names());
    let outcomes = parallel_map(names.clone(), cfg.workers(), |name| {
        let seed = pair_seed(cfg.seed, name, "standalone");
        let trace = workloads::profile_by_name(name)
            .unwrap_or_else(|| panic!("unknown workload {name}"))
            .spawn(seed);
        let r = run_standalone(&cfg.core, trace, cfg.length);
        (name.clone(), r.uipc)
    });
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_seed_is_stable_and_distinct() {
        assert_eq!(pair_seed(1, "a", "b"), pair_seed(1, "a", "b"));
        assert_ne!(pair_seed(1, "a", "b"), pair_seed(1, "a", "c"));
        assert_ne!(pair_seed(1, "a", "b"), pair_seed(2, "a", "b"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), 8, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn name_lists_have_paper_cardinality() {
        assert_eq!(ls_names().len(), 4);
        assert_eq!(batch_names().len(), 29);
    }

    #[test]
    fn single_pair_runs_and_reports_both_threads() {
        let cfg = ExperimentConfig::quick();
        let setup = CoreSetup::baseline(&cfg.core);
        let out = run_single_pair(&cfg, setup, "web-search", "zeusmp");
        assert_eq!(out.ls, "web-search");
        assert_eq!(out.batch, "zeusmp");
        assert!(out.ls_uipc > 0.0);
        assert!(out.batch_uipc > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = parallel_map(vec![1, 2, 3], 0, |x| *x);
    }
}
