//! Shared experiment machinery: the experiment configuration, the worker
//! pool, and the per-cell [`Scenario`] runners the engine memoises.
//!
//! The old free-standing matrix runners (`run_matrix`, `run_matrix_on`, …)
//! are gone: all matrix-shaped work goes through [`crate::Engine`], which
//! funnels every colocation cell into [`run_smt_colocation`] — one
//! [`cpu_sim::Scenario`] over `1 + N` hardware threads under one
//! [`ColocationPolicy`] ([`run_single_pair`] is its classic `N = 1` face) —
//! and every whole-server cell into [`run_server`], a
//! [`cpu_sim::ServerScenario`] under an [`AllocationPolicy`] on top.

use cpu_sim::{
    AllocationPolicy, ColocationPolicy, Scenario, ServerSpec, ServerThread, SimLength, ThreadSpec,
};
use sim_model::{CoreConfig, ThreadId, TraceSource};
use workloads::{batch, latency_sensitive};

pub use cpu_sim::pair_seed;

/// Common experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Core configuration (Table II defaults).
    pub core: CoreConfig,
    /// Simulation length per run.
    pub length: SimLength,
    /// Base RNG seed; every workload pairing derives its own stream from it.
    pub seed: u64,
    /// Number of worker threads for the experiment matrix (0 = all cores).
    pub parallelism: usize,
}

impl ExperimentConfig {
    /// The standard configuration used by the figure binaries.
    pub fn standard() -> ExperimentConfig {
        ExperimentConfig {
            core: CoreConfig::default(),
            length: SimLength::standard(),
            seed: 42,
            parallelism: 0,
        }
    }

    /// A reduced configuration for tests and criterion benches.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            core: CoreConfig::default(),
            length: SimLength::quick(),
            seed: 42,
            parallelism: 0,
        }
    }

    /// The effective worker-thread count for this configuration.
    pub fn workers(&self) -> usize {
        if self.parallelism > 0 {
            self.parallelism
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        }
    }

    /// Whether this is the reduced (test/CI) scale.
    pub fn is_quick(&self) -> bool {
        self.length == SimLength::quick()
    }

    /// Queueing-simulation parameters matching this configuration's scale:
    /// quick core simulations pair with quick request-level simulations.
    pub fn qos_params(&self, seed: u64) -> sim_qos::SimParams {
        if self.is_quick() {
            sim_qos::SimParams::quick(seed)
        } else {
            sim_qos::SimParams::standard(seed)
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig::standard()
    }
}

/// Outcome of one latency-sensitive × batch colocation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PairOutcome {
    /// Latency-sensitive workload name (thread 0).
    pub ls: String,
    /// Batch workload name (thread 1).
    pub batch: String,
    /// UIPC of the latency-sensitive thread.
    pub ls_uipc: f64,
    /// UIPC of the batch thread.
    pub batch_uipc: f64,
}

/// Outcome of one latency-sensitive × N-batch SMT colocation run: per-slot
/// workload names and UIPCs, with the latency-sensitive service in slot 0
/// and the batch co-runners following in offer order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SmtOutcome {
    /// Workload names in hardware-thread slot order (LS service first).
    pub names: Vec<String>,
    /// UIPC of each slot, aligned with `names`.
    pub uipcs: Vec<f64>,
}

impl SmtOutcome {
    /// UIPC of the latency-sensitive service (slot 0).
    pub fn ls_uipc(&self) -> f64 {
        self.uipcs[0]
    }

    /// Aggregate UIPC of the batch co-runners (slots 1..).
    pub fn batch_throughput(&self) -> f64 {
        sim_stats::det_sum(&self.uipcs[1..])
    }
}

/// Outcome of one whole-server run: the placement the allocation policy
/// chose plus every offered thread's UIPC. Thread 0 is the latency-sensitive
/// service, the batch jobs follow in offer order (the [`crate::Engine`]
/// server-cell convention).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerOutcome {
    /// Offered workload names (index = thread index, LS service first).
    pub names: Vec<String>,
    /// The chosen placement: `cores[c]` lists the thread indices on core `c`.
    pub cores: Vec<Vec<usize>>,
    /// UIPC of each offered thread, aligned with `names`.
    pub uipcs: Vec<f64>,
}

impl ServerOutcome {
    /// UIPC of the latency-sensitive service (thread 0).
    pub fn ls_uipc(&self) -> f64 {
        self.uipcs[0]
    }

    /// Aggregate UIPC of the batch threads (threads 1..).
    pub fn batch_throughput(&self) -> f64 {
        sim_stats::det_sum(&self.uipcs[1..])
    }
}

/// The four latency-sensitive workload names.
pub fn ls_names() -> Vec<String> {
    latency_sensitive::NAMES.iter().map(|s| s.to_string()).collect()
}

/// The 29 batch workload names.
pub fn batch_names() -> Vec<String> {
    batch::NAMES.iter().map(|s| s.to_string()).collect()
}

// The order-preserving worker pool now lives in `sim_model` (the cluster
// simulator shards racks through it, and `cluster_sim` cannot depend on this
// crate); re-exported here so existing `stretch_bench::harness::parallel_map`
// callers keep working.
pub use sim_model::parallel_map;

/// Runs one latency-sensitive workload against `batches` batch co-runners on
/// an SMT core of `1 + batches.len()` hardware threads, as a [`Scenario`].
/// The scenario derives the grouping's seed with
/// [`cpu_sim::colocation_seed`] over the slot-ordered names, so the same
/// grouping sees identical instruction streams under every policy — and the
/// one-batch case is byte-for-byte the historical [`pair_seed`] pair run.
///
/// # Panics
///
/// Panics if any workload name is unknown or `batches` is empty.
pub fn run_smt_colocation(
    cfg: &ExperimentConfig,
    policy: &dyn ColocationPolicy,
    ls: &str,
    batches: &[String],
) -> SmtOutcome {
    let ls_profile = latency_sensitive::profile_by_name(ls).expect("known latency-sensitive name");
    let batch_profiles: Vec<Box<dyn TraceSource + Send + Sync>> = batches
        .iter()
        .map(|name| {
            Box::new(batch::profile_by_name(name).expect("known batch name"))
                as Box<dyn TraceSource + Send + Sync>
        })
        .collect();
    let result = Scenario::colocate_n(ls_profile, batch_profiles)
        .config(cfg.core)
        .boxed_policy(policy.clone_policy())
        .length(cfg.length)
        .seed(cfg.seed)
        .run();
    let mut names = Vec::with_capacity(1 + batches.len());
    names.push(ls.to_string());
    names.extend(batches.iter().cloned());
    let uipcs = (0..names.len())
        .map(|slot| result.expect_thread(ThreadId::from_index(slot)).uipc)
        .collect();
    SmtOutcome { names, uipcs }
}

/// Runs one latency-sensitive × batch pairing under a policy: the classic
/// two-thread case of [`run_smt_colocation`], repackaged as a
/// [`PairOutcome`].
///
/// # Panics
///
/// Panics if either workload name is unknown.
pub fn run_single_pair(
    cfg: &ExperimentConfig,
    policy: &dyn ColocationPolicy,
    ls: &str,
    batch_name: &str,
) -> PairOutcome {
    let smt = run_smt_colocation(cfg, policy, ls, std::slice::from_ref(&batch_name.to_string()));
    PairOutcome {
        ls: ls.to_string(),
        batch: batch_name.to_string(),
        ls_uipc: smt.uipcs[0],
        batch_uipc: smt.uipcs[1],
    }
}

/// Runs a whole server — `spec.cores` cores × `spec.threads_per_core` SMT
/// threads — under one [`AllocationPolicy`] (which thread lands on which
/// core) and one [`ColocationPolicy`] (how every occupied core shares its
/// structures), as a [`cpu_sim::ServerScenario`]. Thread specs arrive in
/// offer order; their workload names resolve against the full registry.
///
/// # Panics
///
/// Panics if a workload name is unknown or the threads do not fit the
/// server.
pub fn run_server(
    cfg: &ExperimentConfig,
    spec: ServerSpec,
    allocation: &dyn AllocationPolicy,
    colocation: &dyn ColocationPolicy,
    threads: &[ThreadSpec],
) -> ServerOutcome {
    let mut scenario = Scenario::server(spec)
        .config(cfg.core)
        .boxed_allocation(allocation.clone_policy())
        .boxed_colocation(colocation.clone_policy())
        .length(cfg.length)
        .seed(cfg.seed);
    for thread in threads {
        let profile = workloads::profile_by_name(&thread.name)
            .unwrap_or_else(|| panic!("unknown workload {}", thread.name));
        scenario = scenario.thread(ServerThread::new(thread.clone(), Box::new(profile)));
    }
    let result = scenario.run();
    let uipcs = (0..threads.len())
        .map(|t| result.thread_uipc(t).expect("every offered thread was placed and ran"))
        .collect();
    ServerOutcome {
        names: threads.iter().map(|t| t.name.clone()).collect(),
        cores: result.placement.cores().to_vec(),
        uipcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_sim::EqualPartition;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), 8, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn name_lists_have_paper_cardinality() {
        assert_eq!(ls_names().len(), 4);
        assert_eq!(batch_names().len(), 29);
    }

    #[test]
    fn single_pair_runs_and_reports_both_threads() {
        let cfg = ExperimentConfig::quick();
        let out = run_single_pair(&cfg, &EqualPartition, "web-search", "zeusmp");
        assert_eq!(out.ls, "web-search");
        assert_eq!(out.batch, "zeusmp");
        assert!(out.ls_uipc > 0.0);
        assert!(out.batch_uipc > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = parallel_map(vec![1, 2, 3], 0, |x| *x);
    }
}
