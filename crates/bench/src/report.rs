//! Plain-text report formatting shared by the figure binaries.

use sim_stats::DistributionSummary;
use std::fmt::Write as _;

/// Formats a fraction as a signed percentage (e.g. `+13.2%`).
pub fn format_percent(value: f64) -> String {
    format!("{:+.1}%", value * 100.0)
}

/// Formats a distribution of fractional changes the way the paper quotes
/// them: `mean +13.1% (median +12.0%, min +1.2%, max +30.4%)`.
pub fn format_distribution_row(label: &str, summary: &DistributionSummary) -> String {
    format!(
        "{label:<28} mean {:>7} | median {:>7} | p25 {:>7} | p75 {:>7} | min {:>7} | max {:>7}",
        format_percent(summary.mean),
        format_percent(summary.median),
        format_percent(summary.p25),
        format_percent(summary.p75),
        format_percent(summary.min),
        format_percent(summary.max),
    )
}

/// Formats the engine's cache counters for the end-of-run report of the
/// `figures` driver: hit/miss totals, hit rate and the number of actual
/// simulation runs (a fully warm invocation reports zero).
pub fn format_cache_stats(stats: &crate::engine::CacheStats) -> String {
    format!(
        "result cache: {} requests | {} memo hits | {} store hits | {} simulated | {:.1}% hit rate",
        stats.total(),
        stats.memo_hits,
        stats.store_hits,
        stats.misses,
        stats.hit_rate() * 100.0,
    )
}

/// A minimal fixed-width table writer for the figure binaries.
#[derive(Debug, Default, Clone)]
pub struct TableWriter {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> TableWriter {
        TableWriter {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width must match the header");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders and prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as a JSON document (`title`, `header`, `rows`),
    /// so figure output can be consumed by plotting scripts as well as read
    /// from the terminal.
    pub fn to_json(&self) -> serde_json::Value {
        let mut doc = serde_json::Map::new();
        doc.insert("title".to_string(), serde_json::Value::from(self.title.as_str()));
        doc.insert("header".to_string(), serde_json::Value::from(self.header.clone()));
        doc.insert(
            "rows".to_string(),
            serde_json::Value::Array(
                self.rows.iter().map(|r| serde_json::Value::from(r.clone())).collect(),
            ),
        );
        serde_json::Value::Object(doc)
    }
}

/// JSON rendering helpers for figure output.
pub mod json {
    /// Pretty-prints a [`TableWriter`](super::TableWriter) as JSON.
    pub fn render(table: &super::TableWriter) -> String {
        serde_json::to_string_pretty(&table.to_json()).expect("Value rendering is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_formatting() {
        assert_eq!(format_percent(0.131), "+13.1%");
        assert_eq!(format_percent(-0.07), "-7.0%");
        assert_eq!(format_percent(0.0), "+0.0%");
    }

    #[test]
    fn distribution_row_contains_all_fields() {
        let s = DistributionSummary::from_samples(&[0.1, 0.2, 0.3]);
        let row = format_distribution_row("B-mode 56-136", &s);
        assert!(row.contains("B-mode 56-136"));
        assert!(row.contains("+20.0%"));
        assert!(row.contains("+30.0%"));
    }

    #[test]
    fn table_renders_header_and_rows() {
        let mut t = TableWriter::new("Example", &["name", "value"]);
        t.row(&["foo".to_string(), "1.0".to_string()]);
        t.row_display(&["bar", "2"]);
        let text = t.render();
        assert!(text.contains("== Example =="));
        assert!(text.contains("foo"));
        assert!(text.contains("bar"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TableWriter::new("x", &["a", "b"]);
        t.row(&["only one".to_string()]);
    }

    #[test]
    fn json_rendering_round_trips_title_and_cells() {
        let mut t = TableWriter::new("Figure 0", &["name", "value"]);
        t.row_display(&["web-search", "1.25"]);
        let text = json::render(&t);
        assert!(text.contains("\"title\": \"Figure 0\""));
        assert!(text.contains("\"web-search\""));
    }
}
