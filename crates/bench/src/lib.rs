//! Experiment harness for the Stretch (HPCA'19) reproduction.
//!
//! The `figureNN` binaries in `src/bin/` regenerate every figure of the
//! paper's evaluation; this library holds the shared machinery:
//!
//! * [`harness`] — colocation-matrix runners (4 latency-sensitive × 29 batch
//!   workloads), stand-alone full-core reference runs, and speedup /
//!   slowdown aggregation, all parallelised across OS threads;
//! * [`report`] — plain-text table formatting shared by the binaries so each
//!   prints rows directly comparable to the paper's figures.
//!
//! The same entry points back the criterion benches in `benches/`, scaled
//! down via [`cpu_sim::SimLength::quick`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;

pub use harness::{
    batch_names, ls_names, run_matrix, run_matrix_on, run_matrix_with, standalone_reference,
    ExperimentConfig, PairOutcome,
};
pub use report::{format_distribution_row, format_percent, TableWriter};
