//! Experiment harness for the Stretch (HPCA'19) reproduction.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! The `figures` driver binary regenerates any subset of the paper's
//! evaluation in a single process; the `figureNN` binaries are thin wrappers
//! over the same figure definitions. This library holds the shared
//! machinery:
//!
//! * [`engine`] — the shared experiment engine: runs every distinct
//!   experiment cell exactly once (in-process memoisation + in-flight
//!   deduplication) and persists results via [`store`];
//! * [`store`] — the content-addressed on-disk result store, keyed by a
//!   collision-free canonical digest of core config, setup, pairing, seed
//!   and simulation length;
//! * [`figures`] — every figure/table of the paper as a declarative
//!   renderer over the engine, plus the registry the binaries dispatch on;
//! * [`harness`] — the experiment configuration, the shared
//!   [`harness::parallel_map`] worker pool, and the per-cell
//!   [`cpu_sim::Scenario`] runners the engine memoises: SMT colocations of
//!   `1 + N` threads under a [`cpu_sim::ColocationPolicy`] and whole-server
//!   runs under a [`cpu_sim::AllocationPolicy`] above it — Stretch and all
//!   baselines go through one interface, and the cache digest covers the
//!   policy identities;
//! * [`report`] — plain-text table formatting and cache-statistics reporting
//!   shared by the binaries;
//! * [`perf`] — the performance subsystem: a registry of fixed-length
//!   benchmarks over all three simulation layers, warmup + median-of-N
//!   wall-clock measurement, the schema-versioned `BENCH_<label>.json`
//!   report, and the regression gate behind the `perf` binary and the CI
//!   perf job.
//!
//! The same entry points back the criterion benches in `benches/`, scaled
//! down via [`cpu_sim::SimLength::quick`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod figures;
pub mod harness;
pub mod perf;
pub mod report;
pub mod store;

pub use engine::{CacheStats, Engine};
pub use harness::{
    batch_names, ls_names, pair_seed, ExperimentConfig, PairOutcome, ServerOutcome, SmtOutcome,
};
pub use report::{format_cache_stats, format_distribution_row, format_percent, TableWriter};
pub use store::{JsonCodec, ResultStore};
