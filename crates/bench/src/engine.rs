//! The shared experiment engine.
//!
//! Every paper figure is a view over the same experiment space: the 4 latency
//! sensitive × 29 batch colocation matrix under a handful of core setups,
//! stand-alone full-core reference runs, ROB-capacity sweeps and request
//! level queueing curves. The [`Engine`] runs each *distinct* experiment cell
//! exactly once:
//!
//! * **in-process memoisation** — completed cells are kept in memory and
//!   shared across figures rendered in the same process (the `figures`
//!   driver renders all of them from one engine);
//! * **in-flight deduplication** — when two workers request the same cell
//!   concurrently, the second blocks on a condvar until the first finishes,
//!   instead of running the simulation twice;
//! * **persistent caching** — with a [`ResultStore`] attached, results
//!   survive the process, keyed by a collision-free canonical digest of the
//!   core configuration, *policy identity* (allocation and colocation),
//!   thread grouping or whole-server placement, seed and simulation length
//!   (see [`crate::store`]); a warm-cache invocation performs zero
//!   simulation runs, which [`CacheStats`] makes verifiable.
//!
//! All matrix-shaped work is funnelled through the harness's single
//! [`parallel_map`] pool with the configuration's worker count, so callers
//! never spawn their own ad-hoc thread pools.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

use cluster_sim::{CaseStudy, Fleet, FleetConfig, FleetReport, FleetScale, LoadBalancer};
use cpu_sim::{
    AllocationPolicy, ColocationPolicy, PrivateCore, Scenario, ServerSpec, ThreadRunResult,
    ThreadSpec,
};
use serde_json::Value;
use sim_model::KeyEncoder;
use sim_qos::{latency_vs_load, slack_curve, LoadPoint, ServiceSpec, SlackPoint};
use workloads::{batch, latency_sensitive};

use crate::harness::{
    parallel_map, run_server, run_smt_colocation, ExperimentConfig, PairOutcome, ServerOutcome,
    SmtOutcome,
};
use crate::store::{JsonCodec, ResultStore};

/// Hit/miss counters for one engine. `misses` equals the number of actual
/// simulation runs performed — a warm-cache invocation reports `misses == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the in-process memo (includes waiting out an
    /// in-flight computation of the same cell).
    pub memo_hits: u64,
    /// Requests answered from the persistent [`ResultStore`].
    pub store_hits: u64,
    /// Requests that had to run a simulation.
    pub misses: u64,
}

impl CacheStats {
    /// Total requests answered without simulating.
    pub fn hits(&self) -> u64 {
        self.memo_hits + self.store_hits
    }

    /// Total requests served.
    pub fn total(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Fraction of requests served from a cache (1.0 when fully warm; 0.0
    /// for an empty engine that served nothing).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.total() as f64
        }
    }
}

enum Slot {
    /// A worker is computing this cell; wait on the condvar.
    InFlight,
    /// The cell's encoded result.
    Ready(Value),
}

struct EngineState {
    memo: HashMap<String, Slot>,
    stats: CacheStats,
}

/// RAII ownership of a cell's [`Slot::InFlight`] claim. On success the owner
/// calls [`InFlightClaim::publish`]; if the store probe or the computation
/// panics first, `Drop` removes the claim and wakes waiters so they can
/// re-claim the cell instead of blocking on the condvar forever.
struct InFlightClaim<'a> {
    engine: &'a Engine,
    digest: Option<String>,
}

impl InFlightClaim<'_> {
    /// Publishes the computed value under the claimed digest, bumps the
    /// chosen counter and wakes every waiter.
    fn publish(&mut self, value: Value, count: impl FnOnce(&mut CacheStats)) {
        let digest = self.digest.take().expect("claim published once");
        let mut state = self.engine.state.lock().expect("engine state lock");
        count(&mut state.stats);
        state.memo.insert(digest, Slot::Ready(value));
        self.engine.ready.notify_all();
    }
}

impl Drop for InFlightClaim<'_> {
    fn drop(&mut self) {
        if let Some(digest) = self.digest.take() {
            // Unwinding with the claim unpublished: release it. Ignore a
            // poisoned lock — every other engine user unwraps it anyway.
            if let Ok(mut state) = self.engine.state.lock() {
                state.memo.remove(&digest);
                self.engine.ready.notify_all();
            }
        }
    }
}

/// The shared experiment engine. See the [module docs](self) for semantics.
///
/// # Examples
///
/// Warm-cache usage: repeating a request never re-simulates — the repeat is
/// served bit-exactly from the in-process memo, which [`CacheStats`] proves:
///
/// ```
/// use cpu_sim::EqualPartition;
/// use stretch_bench::{Engine, ExperimentConfig};
///
/// let engine = Engine::new(ExperimentConfig::quick());
/// let cold = engine.pair(&EqualPartition, "web-search", "zeusmp");
/// let warm = engine.pair(&EqualPartition, "web-search", "zeusmp");
/// assert_eq!(cold.ls_uipc.to_bits(), warm.ls_uipc.to_bits());
///
/// let stats = engine.stats();
/// assert_eq!(stats.misses, 1, "only the cold request simulated");
/// assert_eq!(stats.memo_hits, 1, "the warm request was a pure memo hit");
/// ```
pub struct Engine {
    cfg: ExperimentConfig,
    ls: Vec<String>,
    batch: Vec<String>,
    store: Option<ResultStore>,
    state: Mutex<EngineState>,
    ready: Condvar,
}

impl Engine {
    /// An engine over the full 4 × 29 study of the paper.
    pub fn new(cfg: ExperimentConfig) -> Engine {
        Engine {
            cfg,
            ls: latency_sensitive::NAMES.iter().map(|s| s.to_string()).collect(),
            batch: batch::NAMES.iter().map(|s| s.to_string()).collect(),
            store: None,
            state: Mutex::new(EngineState { memo: HashMap::new(), stats: CacheStats::default() }),
            ready: Condvar::new(),
        }
    }

    /// Attaches a persistent [`ResultStore`] rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the store directory cannot be
    /// created.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> io::Result<Engine> {
        self.store = Some(ResultStore::open(dir)?);
        Ok(self)
    }

    /// Restricts the engine to a sub-matrix: the first `ls` latency-sensitive
    /// and first `batch` batch workloads (for tests and CI runs).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or exceeds the full study size.
    pub fn with_sub_matrix(mut self, ls: usize, batch: usize) -> Engine {
        assert!(ls >= 1 && ls <= self.ls.len(), "need 1..={} LS workloads", self.ls.len());
        assert!(batch >= 1 && batch <= self.batch.len(), "need 1..={} batch", self.batch.len());
        self.ls.truncate(ls);
        self.batch.truncate(batch);
        self
    }

    /// The experiment configuration.
    pub fn cfg(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The latency-sensitive workload names in study order.
    pub fn ls_names(&self) -> &[String] {
        &self.ls
    }

    /// The batch workload names in study order.
    pub fn batch_names(&self) -> &[String] {
        &self.batch
    }

    /// The persistent store, if one is attached.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().expect("engine state lock").stats
    }

    /// Number of actual simulation runs performed by this engine.
    pub fn sim_runs(&self) -> u64 {
        self.stats().misses
    }

    /// A key prefix binding a request kind to the core configuration,
    /// simulation length and base seed.
    fn core_key(&self, kind: &str) -> KeyEncoder {
        let mut enc = KeyEncoder::new();
        enc.str(kind).field(&self.cfg.core).field(&self.cfg.length).u64(self.cfg.seed);
        enc
    }

    /// Central memoisation path: answer from memo or store, or claim the
    /// cell, compute it once, and publish the result.
    ///
    /// The store probe and the computation both run *without* the state lock
    /// held (the cell is marked in-flight first), so warm runs read the disk
    /// in parallel and cold runs never serialise behind each other.
    fn run_cached<T: JsonCodec>(
        &self,
        key: &KeyEncoder,
        what: &str,
        compute: impl FnOnce() -> T,
    ) -> T {
        let digest = key.digest();
        let mut state = self.state.lock().expect("engine state lock");
        loop {
            match state.memo.get(&digest) {
                Some(Slot::Ready(value)) => {
                    let value = value.clone();
                    state.stats.memo_hits += 1;
                    drop(state);
                    return T::from_json(&value).expect("memoised value decodes");
                }
                Some(Slot::InFlight) => {
                    state = self.ready.wait(state).expect("engine state lock");
                }
                None => break,
            }
        }
        state.memo.insert(digest.clone(), Slot::InFlight);
        drop(state);
        // If the probe or the computation panics, the guard clears the
        // in-flight claim and wakes waiters (who will then claim the cell
        // themselves) instead of leaving them blocked forever.
        let mut claim = InFlightClaim { engine: self, digest: Some(digest.clone()) };

        if let Some(store) = &self.store {
            if let Some(value) = store.load(&digest) {
                if let Some(decoded) = T::from_json(&value) {
                    claim.publish(value, |stats| stats.store_hits += 1);
                    return decoded;
                }
                // An unreadable/incompatible entry falls through to a
                // recompute that overwrites it.
            }
        }
        let result = compute();
        let value = result.to_json();
        if let Some(store) = &self.store {
            if let Err(err) = store.save(&digest, what, &value) {
                eprintln!("warning: result store write failed for {what}: {err}");
            }
        }
        claim.publish(value, |stats| stats.misses += 1);
        result
    }

    /// One latency-sensitive × N-batch SMT colocation cell under a
    /// [`ColocationPolicy`]: `1 + batches.len()` hardware threads sharing one
    /// core. The cache digest covers the *policy identity* (its
    /// [`sim_model::CanonicalKey`]), not just the core setup it happens to
    /// produce, so two policies can never alias onto one cell; the
    /// slot-ordered name list keys the thread grouping, so the historical
    /// two-thread pairs and the wider SMT4 groupings are distinct cells of
    /// one `smt/v1` family. The computation is
    /// [`crate::harness::run_smt_colocation`] — a [`cpu_sim::Scenario`].
    pub fn smt(&self, policy: &dyn ColocationPolicy, ls: &str, batches: &[String]) -> SmtOutcome {
        let mut key = self.core_key("smt/v1");
        policy.encode_key(&mut key);
        let mut names = Vec::with_capacity(1 + batches.len());
        names.push(ls.to_string());
        names.extend(batches.iter().cloned());
        key.list(&names);
        self.run_cached(&key, &format!("smt {}", names.join(" x ")), || {
            run_smt_colocation(&self.cfg, policy, ls, batches)
        })
    }

    /// One latency-sensitive × batch colocation cell under a
    /// [`ColocationPolicy`]: the classic two-thread case of [`Engine::smt`],
    /// repackaged as a [`PairOutcome`]. Pair and `smt` requests for the same
    /// grouping share one cached cell.
    pub fn pair(&self, policy: &dyn ColocationPolicy, ls: &str, batch_name: &str) -> PairOutcome {
        let smt = self.smt(policy, ls, std::slice::from_ref(&batch_name.to_string()));
        PairOutcome {
            ls: ls.to_string(),
            batch: batch_name.to_string(),
            ls_uipc: smt.uipcs[0],
            batch_uipc: smt.uipcs[1],
        }
    }

    /// One whole-server cell: `spec` cores × threads under an
    /// [`AllocationPolicy`] (thread → core) with a [`ColocationPolicy`] on
    /// every occupied core. Thread 0 is the latency-sensitive service; the
    /// batch jobs follow in offer order. Each batch name's stand-alone UIPC
    /// is resolved through the engine's own cached [`Engine::standalone`]
    /// cells and fed to the allocator (the symbiosis signal), and the cache
    /// digest covers both policy identities, the server shape, the *chosen
    /// placement* and the offered names — so an allocation change that moves
    /// a thread is a different cell even under the same allocator name.
    ///
    /// # Panics
    ///
    /// Panics if a workload name is unknown or the population does not fit
    /// the server.
    pub fn server(
        &self,
        spec: ServerSpec,
        allocation: &dyn AllocationPolicy,
        colocation: &dyn ColocationPolicy,
        ls: &str,
        batches: &[String],
    ) -> ServerOutcome {
        let threads: Vec<ThreadSpec> = std::iter::once(
            ThreadSpec::latency_sensitive(ls).with_standalone_uipc(self.standalone(ls).uipc),
        )
        .chain(batches.iter().map(|name| {
            ThreadSpec::batch(name.clone()).with_standalone_uipc(self.standalone(name).uipc)
        }))
        .collect();
        let placement = allocation.assign(&threads, &spec);
        let mut key = self.core_key("server/v1");
        allocation.encode_key(&mut key);
        colocation.encode_key(&mut key);
        key.field(&spec).field(&placement);
        let names: Vec<String> = threads.iter().map(|t| t.name.clone()).collect();
        key.list(&names);
        let what =
            format!("server {} threads on {}x{}", names.len(), spec.cores, spec.threads_per_core);
        self.run_cached(&key, &what, || {
            run_server(&self.cfg, spec, allocation, colocation, &threads)
        })
    }

    /// The full colocation matrix (engine's LS × batch lists) under one
    /// policy, row-major: every batch workload for the first
    /// latency-sensitive name, then the next.
    pub fn matrix(&self, policy: &dyn ColocationPolicy) -> Vec<PairOutcome> {
        let pairs: Vec<(String, String)> = self
            .ls
            .iter()
            .flat_map(|ls| self.batch.iter().map(move |b| (ls.clone(), b.clone())))
            .collect();
        parallel_map(pairs, self.cfg.workers(), |(ls, batch_name)| {
            self.pair(policy, ls, batch_name)
        })
    }

    /// A stand-alone full-core run of one workload (the normalisation
    /// reference of Figures 3–6, and the MLP census source of Figure 7).
    pub fn standalone(&self, name: &str) -> ThreadRunResult {
        self.standalone_with_rob(name, self.cfg.core.rob_capacity)
    }

    /// A stand-alone run with an explicit per-thread ROB allocation (the
    /// Figure 6 sensitivity sweep). With `rob_entries` equal to the full ROB
    /// capacity this is the same cell as [`Engine::standalone`] — the sweep's
    /// endpoint and the reference run share one simulation.
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown.
    pub fn standalone_with_rob(&self, name: &str, rob_entries: usize) -> ThreadRunResult {
        let mut key = self.core_key("standalone/v1");
        key.str(name).usize(rob_entries);
        self.run_cached(&key, &format!("standalone {name} rob={rob_entries}"), || {
            let profile = workloads::profile_by_name(name)
                .unwrap_or_else(|| panic!("unknown workload {name}"));
            // At full capacity the capped window coincides with
            // `PrivateCore::full()`, so the sweep endpoint IS the reference.
            Scenario::standalone(profile)
                .config(self.cfg.core)
                .policy(PrivateCore::with_rob(rob_entries))
                .length(self.cfg.length)
                .seed(self.cfg.seed)
                .run_thread0()
        })
    }

    /// Stand-alone full-core UIPC for every workload in the engine's study,
    /// keyed by name. Individual runs are cached cells, so the reference is
    /// computed at most once per process no matter how many figures need it.
    /// The map is ordered (`BTreeMap`) so that callers iterating it — not
    /// just point lookups — see a deterministic workload order.
    pub fn standalone_reference(&self) -> BTreeMap<String, f64> {
        let mut names = self.ls.clone();
        names.extend(self.batch.iter().cloned());
        parallel_map(names, self.cfg.workers(), |name| (name.clone(), self.standalone(name).uipc))
            .into_iter()
            .collect()
    }

    /// The Figure 1 latency-versus-load curve for one service, scaled to the
    /// configuration (quick or standard request counts).
    pub fn latency_curve(
        &self,
        spec: &ServiceSpec,
        seed: u64,
        min_load: f64,
        steps: usize,
    ) -> Vec<LoadPoint> {
        let params = self.cfg.qos_params(seed);
        let mut key = KeyEncoder::new();
        key.str("latency-curve/v1").field(spec).field(&params).f64(min_load).usize(steps);
        self.run_cached(&key, &format!("latency curve {}", spec.name), || {
            latency_vs_load(spec, params, min_load, steps)
        })
    }

    /// The Figure 2 slack curve for one service over a load grid.
    pub fn slack_curve(&self, spec: &ServiceSpec, seed: u64, loads: &[f64]) -> Vec<SlackPoint> {
        let params = self.cfg.qos_params(seed);
        let mut key = KeyEncoder::new();
        key.str("slack-curve/v2").field(spec).field(&params).list(loads);
        self.run_cached(&key, &format!("slack curve {}", spec.name), || {
            slack_curve(spec, params, loads)
        })
    }

    /// A multi-day fleet simulation under an explicit [`FleetConfig`] (the
    /// measured §VI-D datacenter run). The cell's digest is the complete
    /// canonical config identity, so any knob change — balancer, scale,
    /// topology, tail retention, day count, thresholds, table, seed —
    /// recomputes. The run shards over the configuration's worker count;
    /// the worker count is deliberately *not* part of the digest because
    /// the sharded merge is bit-identical at every count.
    pub fn fleet(&self, cfg: &FleetConfig) -> FleetReport {
        let mut key = KeyEncoder::new();
        key.str("fleet/v2").field(cfg);
        self.run_cached(
            &key,
            &format!(
                "fleet {} x{} {} ({})",
                cfg.service.name, cfg.servers, cfg.balancer, cfg.topology
            ),
            || Fleet::new(cfg.clone()).run_with_workers(self.cfg.workers()),
        )
    }

    /// A measured cluster case study as ONE cached cell: the study's
    /// engagement-threshold calibration *and* the 24-hour fleet run both
    /// happen inside the cell, keyed by the study parameters, balancer and
    /// scale — so a warm rerun of a fleet figure performs zero simulation
    /// work of any kind.
    pub fn fleet_study(
        &self,
        study: &CaseStudy,
        balancer: LoadBalancer,
        scale: FleetScale,
    ) -> FleetReport {
        let mut key = KeyEncoder::new();
        key.str("fleet-study/v2").field(study).field(&balancer).field(&scale);
        self.run_cached(&key, &format!("fleet study {} {}", study.service().name, balancer), || {
            study.run_fleet_with_workers(balancer, scale, self.cfg.workers())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpu_sim::EqualPartition;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig::quick()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("stretch-engine-test-{tag}-{}-{unique}", std::process::id()))
    }

    #[test]
    fn repeated_cells_simulate_once() {
        let engine = Engine::new(quick_cfg());
        let a = engine.pair(&EqualPartition, "web-search", "zeusmp");
        let b = engine.pair(&EqualPartition, "web-search", "zeusmp");
        assert_eq!(a, b);
        let stats = engine.stats();
        assert_eq!(stats.misses, 1, "second request must be a memo hit");
        assert_eq!(stats.memo_hits, 1);
    }

    #[test]
    fn in_flight_duplicates_are_deduplicated() {
        let engine = Engine::new(quick_cfg());
        // Hammer the same cell from many workers at once; only one may run.
        let requests: Vec<u32> = (0..16).collect();
        let outcomes =
            parallel_map(requests, 8, |_| engine.pair(&EqualPartition, "web-search", "mcf"));
        assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(engine.stats().misses, 1, "concurrent duplicates must not re-simulate");
        assert_eq!(engine.stats().memo_hits, 15);
    }

    #[test]
    fn store_makes_results_survive_the_engine() {
        let dir = temp_dir("warm");

        let cold = Engine::new(quick_cfg()).with_store(&dir).expect("store opens");
        let first = cold.pair(&EqualPartition, "web-search", "zeusmp");
        let reference = cold.standalone("web-search");
        assert_eq!(cold.stats().misses, 2);

        let warm = Engine::new(quick_cfg()).with_store(&dir).expect("store opens");
        let second = warm.pair(&EqualPartition, "web-search", "zeusmp");
        let reference2 = warm.standalone("web-search");
        assert_eq!(warm.sim_runs(), 0, "warm engine must not simulate");
        assert_eq!(warm.stats().store_hits, 2);
        assert_eq!(first, second);
        assert_eq!(reference.uipc.to_bits(), reference2.uipc.to_bits());
        assert_eq!(reference.mlp, reference2.mlp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Cache invalidation on config/seed/length changes is covered by the
    // integration test `engine_results_survive_restart_and_invalidate_on_
    // key_changes` in tests/engine_cache.rs, which exercises the same matrix
    // through the public crate surface.

    #[test]
    fn distinct_policies_are_distinct_cells() {
        let engine = Engine::new(quick_cfg());
        let a = engine.pair(&EqualPartition, "web-search", "zeusmp");
        let b = engine.pair(&PrivateCore::full(), "web-search", "zeusmp");
        assert_eq!(engine.stats().misses, 2, "different policies must not share a cell");
        // A fully private core cannot be slower than the contended baseline
        // for the batch thread.
        assert!(b.batch_uipc >= a.batch_uipc * 0.95);
    }

    #[test]
    fn policies_with_identical_setups_are_still_distinct_cells() {
        // PinnedStretch in Baseline mode produces the exact same CoreSetup
        // as EqualPartition; the cache digest must still tell them apart
        // because it covers the policy identity, not the derived setup.
        let engine = Engine::new(quick_cfg());
        let a = engine.pair(&EqualPartition, "web-search", "zeusmp");
        let b = engine.pair(
            &stretch::PinnedStretch::new(stretch::StretchMode::Baseline),
            "web-search",
            "zeusmp",
        );
        assert_eq!(engine.stats().misses, 2, "identical setups must not merge distinct policies");
        // Same setup + same derived seed -> identical numbers.
        assert_eq!(a.ls_uipc.to_bits(), b.ls_uipc.to_bits());
        assert_eq!(a.batch_uipc.to_bits(), b.batch_uipc.to_bits());
    }

    #[test]
    fn pair_and_smt_requests_share_one_cell() {
        // A pair is the N = 1 face of the smt/v1 cell family: asking for the
        // same grouping through either entry point must hit one cached cell.
        let engine = Engine::new(quick_cfg());
        let pair = engine.pair(&EqualPartition, "web-search", "zeusmp");
        let smt = engine.smt(&EqualPartition, "web-search", &["zeusmp".to_string()]);
        assert_eq!(engine.stats().misses, 1, "pair and smt must share the cell");
        assert_eq!(engine.stats().memo_hits, 1);
        assert_eq!(pair.ls_uipc.to_bits(), smt.uipcs[0].to_bits());
        assert_eq!(pair.batch_uipc.to_bits(), smt.uipcs[1].to_bits());
    }

    #[test]
    fn wider_smt_groupings_are_distinct_cells() {
        let engine = Engine::new(quick_cfg());
        let pair = engine.smt(&EqualPartition, "web-search", &["zeusmp".to_string()]);
        let quad = engine.smt(
            &EqualPartition,
            "web-search",
            &["zeusmp".to_string(), "gcc".to_string(), "mcf".to_string()],
        );
        assert_eq!(engine.stats().misses, 2, "the grouping width is part of the cell identity");
        assert_eq!(pair.uipcs.len(), 2);
        assert_eq!(quad.uipcs.len(), 4);
        assert!(quad.uipcs.iter().all(|&u| u > 0.0));
        assert!(pair.uipcs.iter().all(|&u| u > 0.0));
        assert_eq!(quad.batch_throughput(), quad.uipcs[1..].iter().sum::<f64>());
    }

    #[test]
    fn server_cells_survive_the_engine() {
        let dir = temp_dir("server");
        let spec = ServerSpec::new(2, 2);
        let batches = vec!["zeusmp".to_string(), "gcc".to_string()];

        let cold = Engine::new(quick_cfg()).with_store(&dir).expect("store opens");
        let first = cold.server(spec, &cpu_sim::Greedy, &EqualPartition, "web-search", &batches);
        // 3 stand-alone reference cells (the allocator's symbiosis signal)
        // plus the whole-server cell itself.
        assert_eq!(cold.stats().misses, 4);
        assert_eq!(first.uipcs.len(), 3);
        assert_eq!(first.cores, vec![vec![0], vec![1, 2]], "Greedy isolates the service");

        let warm = Engine::new(quick_cfg()).with_store(&dir).expect("store opens");
        let second = warm.server(spec, &cpu_sim::Greedy, &EqualPartition, "web-search", &batches);
        assert_eq!(warm.sim_runs(), 0, "warm server rerun must not simulate");
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn allocation_policies_are_distinct_server_cells() {
        let engine = Engine::new(quick_cfg());
        let spec = ServerSpec::new(2, 2);
        let batches = vec!["zeusmp".to_string(), "gcc".to_string()];
        let greedy = engine.server(spec, &cpu_sim::Greedy, &EqualPartition, "web-search", &batches);
        let rr = engine.server(spec, &cpu_sim::RoundRobin, &EqualPartition, "web-search", &batches);
        // 3 shared stand-alone cells + one server cell per allocation.
        assert_eq!(engine.stats().misses, 5, "allocation identity must split server cells");
        assert_ne!(greedy.cores, rr.cores, "the two allocators place threads differently");
        assert_eq!(rr.cores, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn sub_matrix_restricts_the_study() {
        let engine = Engine::new(quick_cfg()).with_sub_matrix(1, 2);
        assert_eq!(engine.ls_names().len(), 1);
        assert_eq!(engine.batch_names().len(), 2);
        let matrix = engine.matrix(&EqualPartition);
        assert_eq!(matrix.len(), 2);
        assert_eq!(engine.stats().misses, 2);
        // The reference covers exactly the sub-matrix workloads.
        let reference = engine.standalone_reference();
        assert_eq!(reference.len(), 3);
    }

    #[test]
    fn standalone_reference_reuses_full_rob_sweep_endpoint() {
        let engine = Engine::new(quick_cfg()).with_sub_matrix(1, 1);
        let full = engine.cfg().core.rob_capacity;
        let sweep_endpoint = engine.standalone_with_rob("web-search", full);
        let reference = engine.standalone("web-search");
        assert_eq!(engine.stats().misses, 1, "endpoint and reference are the same cell");
        assert_eq!(sweep_endpoint.uipc.to_bits(), reference.uipc.to_bits());
    }

    #[test]
    fn qos_curves_are_cached_cells_too() {
        let dir = temp_dir("qos");
        let spec = ServiceSpec::web_search();
        let cold = Engine::new(quick_cfg()).with_store(&dir).expect("temp store dir is creatable");
        let curve = cold.slack_curve(&spec, 7, &[0.2, 0.5]);
        assert_eq!(curve.len(), 2);
        assert_eq!(cold.stats().misses, 1);

        let warm = Engine::new(quick_cfg()).with_store(&dir).expect("temp store dir is creatable");
        let again = warm.slack_curve(&spec, 7, &[0.2, 0.5]);
        assert_eq!(warm.sim_runs(), 0);
        assert_eq!(curve, again);
        // A different load grid is a different cell.
        let _ = warm.slack_curve(&spec, 7, &[0.2, 0.5, 0.9]);
        assert_eq!(warm.sim_runs(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_cell_releases_its_in_flight_claim() {
        let engine = Engine::new(quick_cfg());
        // An unknown workload panics inside the compute closure. The claim
        // guard must release the cell so a retry panics again (same error)
        // instead of deadlocking on a stale InFlight slot.
        for _ in 0..2 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.pair(&EqualPartition, "no-such-workload", "zeusmp")
            }));
            assert!(result.is_err(), "unknown workload must panic, not hang");
        }
        // The engine is still usable for valid cells afterwards.
        let ok = engine.pair(&EqualPartition, "web-search", "zeusmp");
        assert!(ok.ls_uipc > 0.0);
    }

    #[test]
    fn hit_rate_reports_fully_warm_runs() {
        let stats = CacheStats { memo_hits: 3, store_hits: 7, misses: 0 };
        assert_eq!(stats.hits(), 10);
        assert!((stats.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
