//! Content-addressed persistent result store.
//!
//! Every simulation result the experiment [`Engine`](crate::engine::Engine)
//! produces is stored under a 128-bit digest of *what was simulated*: the
//! canonical byte encoding ([`sim_model::KeyEncoder`]) of the core
//! configuration, core setup, workload pairing, base seed and simulation
//! length (plus a versioned kind tag). Identical requests — within one
//! process or across invocations — therefore resolve to the same entry, and
//! any change to any key component produces a different digest, so stale
//! results can never be served for a changed experiment.
//!
//! Entries are one JSON file per digest (`<digest>.json`) inside the store
//! directory, written atomically (temp file + rename) so a crashed run never
//! leaves a truncated entry behind; unreadable entries are treated as misses
//! and recomputed. Wipe the cache by deleting the directory (or via
//! [`ResultStore::wipe`]).
//!
//! The vendored `serde` derives are markers only (see `vendor/README.md`),
//! so persistence goes through the explicit [`JsonCodec`] conversion trait
//! rather than `Serialize`. Round-trips are bit-exact for `f64` because the
//! serialiser prints shortest-representation floats and the parser restores
//! the identical bits — a warm-cache figure run renders byte-identical
//! tables.

use cluster_sim::{FleetIntervalReport, FleetReport, ServerSummary};
use cpu_sim::ThreadRunResult;
use serde_json::Value;
use sim_qos::{LoadPoint, SlackPoint};
use sim_stats::Histogram;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::harness::{PairOutcome, ServerOutcome, SmtOutcome};

/// Explicit JSON conversion for store payloads (the vendored serde derives
/// are no-op markers, so each payload type spells out its encoding).
pub trait JsonCodec: Sized {
    /// Encodes `self` as a JSON value.
    fn to_json(&self) -> Value;
    /// Decodes a value produced by [`JsonCodec::to_json`]; `None` marks a
    /// malformed or incompatible entry (treated as a cache miss).
    fn from_json(value: &Value) -> Option<Self>;
}

/// Builds a JSON object from `(key, value)` pairs (shared with the perf
/// report codecs).
pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut map = serde_json::Map::new();
    for (k, v) in fields {
        map.insert(k.to_string(), v);
    }
    Value::Object(map)
}

impl JsonCodec for f64 {
    fn to_json(&self) -> Value {
        Value::from(*self)
    }
    fn from_json(value: &Value) -> Option<f64> {
        value.as_f64()
    }
}

impl<T: JsonCodec> JsonCodec for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(JsonCodec::to_json).collect())
    }
    fn from_json(value: &Value) -> Option<Vec<T>> {
        value.as_array()?.iter().map(T::from_json).collect()
    }
}

impl JsonCodec for String {
    fn to_json(&self) -> Value {
        Value::from(self.as_str())
    }
    fn from_json(value: &Value) -> Option<String> {
        value.as_str().map(str::to_string)
    }
}

impl JsonCodec for usize {
    fn to_json(&self) -> Value {
        Value::from(*self as u64)
    }
    fn from_json(value: &Value) -> Option<usize> {
        usize::try_from(value.as_u64()?).ok()
    }
}

impl JsonCodec for PairOutcome {
    fn to_json(&self) -> Value {
        obj(vec![
            ("ls", Value::from(self.ls.as_str())),
            ("batch", Value::from(self.batch.as_str())),
            ("ls_uipc", Value::from(self.ls_uipc)),
            ("batch_uipc", Value::from(self.batch_uipc)),
        ])
    }
    fn from_json(value: &Value) -> Option<PairOutcome> {
        Some(PairOutcome {
            ls: value.get("ls")?.as_str()?.to_string(),
            batch: value.get("batch")?.as_str()?.to_string(),
            ls_uipc: value.get("ls_uipc")?.as_f64()?,
            batch_uipc: value.get("batch_uipc")?.as_f64()?,
        })
    }
}

impl JsonCodec for SmtOutcome {
    fn to_json(&self) -> Value {
        obj(vec![("names", self.names.to_json()), ("uipcs", self.uipcs.to_json())])
    }
    fn from_json(value: &Value) -> Option<SmtOutcome> {
        Some(SmtOutcome {
            names: Vec::from_json(value.get("names")?)?,
            uipcs: Vec::from_json(value.get("uipcs")?)?,
        })
    }
}

impl JsonCodec for ServerOutcome {
    fn to_json(&self) -> Value {
        obj(vec![
            ("names", self.names.to_json()),
            ("cores", self.cores.to_json()),
            ("uipcs", self.uipcs.to_json()),
        ])
    }
    fn from_json(value: &Value) -> Option<ServerOutcome> {
        Some(ServerOutcome {
            names: Vec::from_json(value.get("names")?)?,
            cores: Vec::from_json(value.get("cores")?)?,
            uipcs: Vec::from_json(value.get("uipcs")?)?,
        })
    }
}

impl JsonCodec for Histogram {
    fn to_json(&self) -> Value {
        let counts: Vec<Value> = (0..self.bins()).map(|b| Value::from(self.count(b))).collect();
        obj(vec![("counts", Value::Array(counts))])
    }
    fn from_json(value: &Value) -> Option<Histogram> {
        let counts = value.get("counts")?.as_array()?;
        if counts.len() < 2 {
            return None;
        }
        let mut h = Histogram::new(counts.len() - 1);
        for (bin, count) in counts.iter().enumerate() {
            let count = count.as_u64()?;
            if count > 0 {
                h.record_weighted(bin, count);
            }
        }
        Some(h)
    }
}

impl JsonCodec for ThreadRunResult {
    fn to_json(&self) -> Value {
        obj(vec![
            ("name", Value::from(self.name.as_str())),
            ("uipc", Value::from(self.uipc)),
            ("committed", Value::from(self.committed)),
            ("cycles", Value::from(self.cycles)),
            ("mlp", self.mlp.to_json()),
        ])
    }
    fn from_json(value: &Value) -> Option<ThreadRunResult> {
        Some(ThreadRunResult {
            name: value.get("name")?.as_str()?.to_string(),
            uipc: value.get("uipc")?.as_f64()?,
            committed: value.get("committed")?.as_u64()?,
            cycles: value.get("cycles")?.as_u64()?,
            mlp: Histogram::from_json(value.get("mlp")?)?,
        })
    }
}

impl JsonCodec for LoadPoint {
    fn to_json(&self) -> Value {
        obj(vec![
            ("load", Value::from(self.load)),
            ("mean_ms", Value::from(self.latency.mean_ms)),
            ("p95_ms", Value::from(self.latency.p95_ms)),
            ("p99_ms", Value::from(self.latency.p99_ms)),
            ("p995_ms", Value::from(self.latency.p995_ms)),
            ("max_ms", Value::from(self.latency.max_ms)),
            ("requests", Value::from(self.latency.requests)),
        ])
    }
    fn from_json(value: &Value) -> Option<LoadPoint> {
        Some(LoadPoint {
            load: value.get("load")?.as_f64()?,
            latency: sim_qos::LatencySummary {
                mean_ms: value.get("mean_ms")?.as_f64()?,
                p95_ms: value.get("p95_ms")?.as_f64()?,
                p99_ms: value.get("p99_ms")?.as_f64()?,
                p995_ms: value.get("p995_ms")?.as_f64()?,
                max_ms: value.get("max_ms")?.as_f64()?,
                requests: value.get("requests")?.as_u64()? as usize,
            },
        })
    }
}

impl JsonCodec for SlackPoint {
    fn to_json(&self) -> Value {
        obj(vec![
            ("load", Value::from(self.load)),
            ("required_performance", Value::from(self.required_performance)),
            ("feasible", Value::from(self.feasible)),
        ])
    }
    fn from_json(value: &Value) -> Option<SlackPoint> {
        Some(SlackPoint {
            load: value.get("load")?.as_f64()?,
            required_performance: value.get("required_performance")?.as_f64()?,
            feasible: value.get("feasible")?.as_bool()?,
        })
    }
}

impl JsonCodec for FleetIntervalReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("hour", Value::from(self.hour)),
            ("load", Value::from(self.load)),
            ("engaged_servers", Value::from(self.engaged_servers)),
            ("measured_servers", Value::from(self.measured_servers)),
            ("p99_ms", Value::from(self.p99_ms)),
            ("batch_throughput", Value::from(self.batch_throughput)),
        ])
    }
    fn from_json(value: &Value) -> Option<FleetIntervalReport> {
        Some(FleetIntervalReport {
            hour: value.get("hour")?.as_f64()?,
            load: value.get("load")?.as_f64()?,
            engaged_servers: value.get("engaged_servers")?.as_u64()? as usize,
            measured_servers: value.get("measured_servers")?.as_u64()? as usize,
            p99_ms: value.get("p99_ms")?.as_f64()?,
            batch_throughput: value.get("batch_throughput")?.as_f64()?,
        })
    }
}

impl JsonCodec for ServerSummary {
    fn to_json(&self) -> Value {
        obj(vec![
            ("engaged_intervals", Value::from(self.engaged_intervals)),
            ("starved_intervals", Value::from(self.starved_intervals)),
            ("p99_ms", Value::from(self.p99_ms)),
            ("requests", Value::from(self.requests)),
            ("mode_changes", Value::from(self.mode_changes)),
            ("throttle_events", Value::from(self.throttle_events)),
        ])
    }
    fn from_json(value: &Value) -> Option<ServerSummary> {
        Some(ServerSummary {
            engaged_intervals: value.get("engaged_intervals")?.as_u64()? as usize,
            starved_intervals: value.get("starved_intervals")?.as_u64()? as usize,
            p99_ms: value.get("p99_ms")?.as_f64()?,
            requests: value.get("requests")?.as_u64()? as usize,
            mode_changes: value.get("mode_changes")?.as_u64()?,
            throttle_events: value.get("throttle_events")?.as_u64()?,
        })
    }
}

impl JsonCodec for FleetReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("intervals", self.intervals.to_json()),
            ("servers", self.servers.to_json()),
            ("average_batch_throughput", Value::from(self.average_batch_throughput)),
            ("fraction_engaged", Value::from(self.fraction_engaged)),
            ("hours_engaged", Value::from(self.hours_engaged)),
            ("violation_fraction", Value::from(self.violation_fraction)),
            ("p50_ms", Value::from(self.p50_ms)),
            ("p95_ms", Value::from(self.p95_ms)),
            ("p99_ms", Value::from(self.p99_ms)),
            ("requests", Value::from(self.requests)),
        ])
    }
    fn from_json(value: &Value) -> Option<FleetReport> {
        Some(FleetReport {
            intervals: Vec::from_json(value.get("intervals")?)?,
            servers: Vec::from_json(value.get("servers")?)?,
            average_batch_throughput: value.get("average_batch_throughput")?.as_f64()?,
            fraction_engaged: value.get("fraction_engaged")?.as_f64()?,
            hours_engaged: value.get("hours_engaged")?.as_f64()?,
            violation_fraction: value.get("violation_fraction")?.as_f64()?,
            p50_ms: value.get("p50_ms")?.as_f64()?,
            p95_ms: value.get("p95_ms")?.as_f64()?,
            p99_ms: value.get("p99_ms")?.as_f64()?,
            requests: value.get("requests")?.as_u64()? as usize,
        })
    }
}

/// An on-disk, content-addressed store of experiment results.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Loads the payload stored under `digest`, or `None` when absent or
    /// unreadable (both are treated as misses by the engine).
    pub fn load(&self, digest: &str) -> Option<Value> {
        let text = fs::read_to_string(self.entry_path(digest)).ok()?;
        let doc = serde_json::from_str(&text).ok()?;
        doc.get("value").cloned()
    }

    /// Stores `value` under `digest`. `what` is a human-readable description
    /// kept alongside the payload so `ls`-ing the cache stays debuggable.
    ///
    /// The write is atomic (unique temp file + rename), so concurrent
    /// writers of the same digest race benignly: both write identical
    /// content and the loser's rename simply replaces it.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the entry cannot be written.
    pub fn save(&self, digest: &str, what: &str, value: &Value) -> io::Result<()> {
        let doc = obj(vec![
            ("key", Value::from(digest)),
            ("what", Value::from(what)),
            ("value", value.clone()),
        ]);
        let text = serde_json::to_string_pretty(&doc).expect("Value rendering is infallible");
        let tmp = self.dir.join(format!(
            "{digest}.tmp.{}.{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.entry_path(digest))
    }

    /// Number of entries currently stored.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read.
    pub fn entries(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Deletes every entry, returning how many were removed.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory cannot be read or
    /// an entry cannot be removed.
    pub fn wipe(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                fs::remove_file(&path)?;
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ResultStore {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let unique = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("stretch-store-test-{tag}-{}-{unique}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).expect("temp store")
    }

    #[test]
    fn save_load_round_trips_pair_outcomes() {
        let store = temp_store("pair");
        let outcome = PairOutcome {
            ls: "web-search".to_string(),
            batch: "zeusmp".to_string(),
            ls_uipc: 1.2345678901234567,
            batch_uipc: 0.9876543210987654,
        };
        store
            .save("abc123", "pair web-search x zeusmp", &outcome.to_json())
            .expect("a fresh temp store is writable");
        let loaded = PairOutcome::from_json(&store.load("abc123").expect("present"))
            .expect("a saved outcome decodes back");
        assert_eq!(loaded, outcome);
        assert_eq!(loaded.ls_uipc.to_bits(), outcome.ls_uipc.to_bits(), "f64 must be bit-exact");
        assert_eq!(store.entries().expect("the store directory is listable"), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn smt_and_server_outcomes_round_trip() {
        let smt = SmtOutcome {
            names: vec!["web-search".to_string(), "zeusmp".to_string(), "gcc".to_string()],
            uipcs: vec![0.7182818284590452, 0.3141592653589793, 0.5772156649015329],
        };
        let restored =
            SmtOutcome::from_json(&smt.to_json()).expect("an encoded outcome decodes back");
        assert_eq!(restored, smt);
        assert_eq!(restored.uipcs[0].to_bits(), smt.uipcs[0].to_bits(), "f64 must be bit-exact");

        let server = ServerOutcome {
            names: smt.names.clone(),
            cores: vec![vec![0], vec![1, 2]],
            uipcs: smt.uipcs.clone(),
        };
        let restored =
            ServerOutcome::from_json(&server.to_json()).expect("an encoded outcome decodes back");
        assert_eq!(restored, server);
        // A malformed placement is a miss, not a panic.
        assert!(ServerOutcome::from_json(&obj(vec![("names", Value::Null)])).is_none());
    }

    #[test]
    fn missing_and_corrupt_entries_are_misses() {
        let store = temp_store("corrupt");
        assert!(store.load("nope").is_none());
        fs::write(store.entry_path("bad"), "{not json").expect("the temp store dir is writable");
        assert!(store.load("bad").is_none());
        fs::write(store.entry_path("novalue"), "{\"key\":\"novalue\"}")
            .expect("the temp store dir is writable");
        assert!(store.load("novalue").is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn wipe_empties_the_store() {
        let store = temp_store("wipe");
        store.save("a", "x", &Value::from(1.0)).expect("a fresh temp store is writable");
        store.save("b", "y", &Value::from(2.0)).expect("a fresh temp store is writable");
        assert_eq!(store.entries().expect("the store directory is listable"), 2);
        assert_eq!(store.wipe().expect("wiping an existing store succeeds"), 2);
        assert_eq!(store.entries().expect("the store directory is listable"), 0);
        assert!(store.load("a").is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn histogram_codec_preserves_census() {
        let mut h = Histogram::new(6);
        h.record_weighted(0, 1000);
        h.record_weighted(2, 50);
        h.record_weighted(9, 3); // catch-all bin
        let restored =
            Histogram::from_json(&h.to_json()).expect("an encoded histogram decodes back");
        assert_eq!(restored, h);
        assert_eq!(restored.total(), h.total());
        assert_eq!(restored.fraction_at_least(2), h.fraction_at_least(2));
    }

    #[test]
    fn thread_run_result_round_trips() {
        let mut mlp = Histogram::new(4);
        mlp.record_weighted(1, 17);
        let r = ThreadRunResult {
            name: "zeusmp".to_string(),
            uipc: 1.5,
            committed: 100_000,
            cycles: 66_667,
            mlp,
        };
        let restored =
            ThreadRunResult::from_json(&r.to_json()).expect("an encoded run result decodes back");
        assert_eq!(restored.name, r.name);
        assert_eq!(restored.uipc.to_bits(), r.uipc.to_bits());
        assert_eq!(restored.committed, r.committed);
        assert_eq!(restored.cycles, r.cycles);
        assert_eq!(restored.mlp, r.mlp);
    }

    #[test]
    fn slack_point_codec_keeps_the_feasibility_flag() {
        let p = SlackPoint { load: 0.9, required_performance: 1.0, feasible: false };
        let restored =
            SlackPoint::from_json(&p.to_json()).expect("an encoded slack point decodes back");
        assert_eq!(restored, p);
        assert!(!restored.feasible);
    }

    #[test]
    fn fleet_report_codec_round_trips_bit_exactly() {
        let report = FleetReport {
            intervals: vec![FleetIntervalReport {
                hour: 0.25,
                load: 0.424242424242,
                engaged_servers: 7,
                measured_servers: 15,
                p99_ms: 81.52007759784479,
                batch_throughput: 1.0962499999999,
            }],
            servers: vec![ServerSummary {
                engaged_intervals: 39,
                starved_intervals: 3,
                p99_ms: 77.123456789,
                requests: 14_400,
                mode_changes: 4,
                throttle_events: 1,
            }],
            average_batch_throughput: 1.044973958333333,
            fraction_engaged: 0.408854166666,
            hours_engaged: 9.8125,
            violation_fraction: 0.0182291666,
            p50_ms: 16.25,
            p95_ms: 55.5,
            p99_ms: 81.52007759784479,
            requests: 115_200,
        };
        let restored = FleetReport::from_json(&report.to_json()).expect("decodes");
        assert_eq!(restored, report);
        assert_eq!(restored.p99_ms.to_bits(), report.p99_ms.to_bits());
        assert_eq!(
            restored.intervals[0].batch_throughput.to_bits(),
            report.intervals[0].batch_throughput.to_bits()
        );
        assert_eq!(restored.servers[0].mode_changes, 4);
    }
}
