//! Every figure and table of the paper as a renderer over the shared
//! [`Engine`].
//!
//! Each figure is a *declaration* of which experiment cells it needs
//! (matrix setups, stand-alone references, sweeps, queueing curves) plus the
//! formatting that turns them into the paper's tables. The engine memoises
//! the cells, so rendering several figures in one process — the `figures`
//! driver binary — computes the stand-alone reference and every shared
//! (setup, pair) cell exactly once. The `figureNN` binaries are thin
//! wrappers dispatching into the same [`registry`](all) via
//! [`run_standalone_binary`], which guarantees their output is identical to
//! the driver's.

use std::fmt::Write as _;

use baselines::{
    DynamicSharing, FetchThrottling, HybridThrottleSkew, IdealScheduling, FETCH_THROTTLING_RATIOS,
};
use cluster_sim::{CaseStudy, DiurnalPattern, FleetScale, LoadBalancer};
use cpu_sim::{
    AllocationPolicy, ColocationPolicy, EqualPartition, Greedy, RoundRobin, ServerSpec,
    StudiedResource, SymbiosisAware,
};
use sim_model::{CoreConfig, ThreadId};
use sim_qos::ServiceSpec;
use sim_stats::{det_sum, DistributionSummary};
use stretch::{PinnedStretch, RobSkew, StretchMode};

use crate::engine::Engine;
use crate::harness::{parallel_map, ExperimentConfig, PairOutcome};
use crate::report::{format_distribution_row, json, TableWriter};

macro_rules! w {
    ($out:expr) => { let _ = writeln!($out); };
    ($out:expr, $($arg:tt)*) => { let _ = writeln!($out, $($arg)*); };
}

/// One figure or table of the paper, as an entry in the registry.
pub struct FigureSpec {
    /// Binary / CLI name (`figure03`, `tables`).
    pub name: &'static str,
    /// One-line description shown by `figures --list`.
    pub title: &'static str,
    /// Renders the figure from engine-provided cells.
    pub render: fn(&Engine) -> String,
}

/// The full registry, in paper order.
pub fn all() -> &'static [FigureSpec] {
    const ALL: [FigureSpec; 16] = [
        FigureSpec {
            name: "figure01",
            title: "Web Search latency vs load against the QoS target",
            render: figure01,
        },
        FigureSpec {
            name: "figure02",
            title: "performance required to meet the QoS target (slack)",
            render: figure02,
        },
        FigureSpec {
            name: "figure03",
            title: "colocation slowdown on the baseline SMT core",
            render: figure03,
        },
        FigureSpec {
            name: "figure04",
            title: "per-resource sharing slowdown for Web Search colocations",
            render: figure04,
        },
        FigureSpec {
            name: "figure05",
            title: "average slowdown from sharing one resource",
            render: figure05,
        },
        FigureSpec { name: "figure06", title: "sensitivity to ROB capacity", render: figure06 },
        FigureSpec {
            name: "figure07",
            title: "memory-level parallelism of Web Search vs zeusmp",
            render: figure07,
        },
        FigureSpec {
            name: "figure09",
            title: "speedup under Stretch B-/Q-mode skews",
            render: figure09,
        },
        FigureSpec {
            name: "figure10",
            title: "per-benchmark batch speedup under B-mode 56-136",
            render: figure10,
        },
        FigureSpec {
            name: "figure11",
            title: "batch slowdown under dynamic ROB sharing",
            render: figure11,
        },
        FigureSpec { name: "figure12", title: "fetch throttling vs Stretch", render: figure12 },
        FigureSpec {
            name: "figure13",
            title: "ideal software scheduling vs Stretch vs both",
            render: figure13,
        },
        FigureSpec {
            name: "figure14",
            title: "diurnal load patterns and cluster case studies",
            render: figure14,
        },
        FigureSpec {
            name: "figure14_measured",
            title: "cluster case studies measured by the load-balanced fleet simulation",
            render: figure14_measured,
        },
        FigureSpec {
            name: "figure15_allocation",
            title: "allocation x colocation policies on a 2-core SMT4 server",
            render: figure15_allocation,
        },
        FigureSpec {
            name: "tables",
            title: "Tables I-III: workload and processor parameters",
            render: |engine| tables(engine, false),
        },
    ];
    &ALL
}

/// Looks up a figure by its registry name.
pub fn by_name(name: &str) -> Option<&'static FigureSpec> {
    all().iter().find(|f| f.name == name)
}

/// Renders `specs` against one shared engine with up to `workers` figures in
/// flight, returning the rendered strings in `specs` order.
///
/// The fan-out rides on [`parallel_map`]'s order-preserving merge, so the
/// result — and any concatenation of it — is byte-identical to rendering the
/// specs one by one; the [`Engine`]'s in-flight deduplication guarantees each
/// simulation cell is still computed exactly once even when figures that
/// share cells render concurrently. The merge is pure string collection (no
/// floating-point accumulation), keeping the `reduction-order` lint rule
/// satisfied by construction.
pub fn render_many(engine: &Engine, specs: &[&FigureSpec], workers: usize) -> Vec<String> {
    let indices: Vec<usize> = (0..specs.len()).collect();
    parallel_map(indices, workers, |&i| (specs[i].render)(engine))
}

/// Shared `main` of the thin `figureNN` binaries: parse `--quick`, build a
/// fresh (uncached) engine, render the named figure and print it. Because
/// this dispatches into the same registry as the `figures` driver, a
/// standalone binary's output is identical to the driver's for that figure.
///
/// # Panics
///
/// Panics if `name` is not in the registry.
pub fn run_standalone_binary(name: &str) {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExperimentConfig::quick() } else { ExperimentConfig::standard() };
    let engine = Engine::new(cfg);
    let spec = by_name(name).unwrap_or_else(|| panic!("unknown figure {name}"));
    print!("{}", (spec.render)(&engine));
}

/// Figure 1: Web Search average, 95th- and 99th-percentile latency as a
/// function of load, against the 100 ms QoS target.
pub fn figure01(engine: &Engine) -> String {
    let spec = ServiceSpec::web_search();
    let points = engine.latency_curve(&spec, 42, 0.05, 20);
    let mut table = TableWriter::new(
        &format!(
            "Figure 1: {} latency vs load (QoS target {} ms p99)",
            spec.name, spec.qos_target_ms
        ),
        &["load (% of max)", "average (ms)", "95th percentile (ms)", "99th percentile (ms)", "QoS"],
    );
    for p in &points {
        table.row(&[
            format!("{:.0}%", p.load * 100.0),
            format!("{:.1}", p.latency.mean_ms),
            format!("{:.1}", p.latency.p95_ms),
            format!("{:.1}", p.latency.p99_ms),
            if p.latency.p99_ms <= spec.qos_target_ms {
                "ok".to_string()
            } else {
                "VIOLATED".to_string()
            },
        ]);
    }
    let mut out = table.render();

    let first = points.first().expect("non-empty sweep");
    let last = points.last().expect("non-empty sweep");
    w!(out);
    w!(
        out,
        "Average latency grows {:.0}% from the lowest to the highest load point (paper: 43%);",
        (last.latency.mean_ms / first.latency.mean_ms - 1.0) * 100.0
    );
    w!(
        out,
        "the 99th percentile grows {:.1}x (paper: over 2.5x).",
        last.latency.p99_ms / first.latency.p99_ms
    );
    out
}

/// Figure 2: the minimum fraction of full single-thread performance each
/// latency-sensitive service needs to keep meeting its QoS target, by load.
pub fn figure02(engine: &Engine) -> String {
    let loads: Vec<f64> = (1..=10).map(|i| i as f64 * 0.1).collect();
    let specs = ServiceSpec::all();

    let mut table = TableWriter::new(
        "Figure 2: performance required to meet the QoS target (% of full core)",
        &["load (% of max)", "data-serving", "web-serving", "web-search", "media-streaming"],
    );
    let columns: Vec<_> = specs.iter().map(|spec| engine.slack_curve(spec, 7, &loads)).collect();
    for (i, &load) in loads.iter().enumerate() {
        let mut row = vec![format!("{:.0}%", load * 100.0)];
        for col in &columns {
            // An infeasible point means even full performance misses the
            // target — qualitatively different from "needs 100%".
            row.push(match col[i].required() {
                Some(required) => format!("{:.0}%", required * 100.0),
                None => "unmet".to_string(),
            });
        }
        table.row(&row);
    }
    let mut out = table.render();

    w!(out);
    let at = |target_load: f64| -> Vec<f64> {
        let idx = loads.iter().position(|&l| (l - target_load).abs() < 1e-9).expect("load on grid");
        columns.iter().map(|c| c[idx].slack()).collect()
    };
    let s20 = at(0.2);
    let s50 = at(0.5);
    w!(
        out,
        "At 20% load, {:.0}-{:.0}% of single-thread performance can be sacrificed (paper: 55-90%).",
        s20.iter().cloned().fold(f64::MAX, f64::min) * 100.0,
        s20.iter().cloned().fold(f64::MIN, f64::max) * 100.0
    );
    w!(
        out,
        "At 50% load, {:.0}-{:.0}% can be sacrificed (paper: 30-70%).",
        s50.iter().cloned().fold(f64::MAX, f64::min) * 100.0,
        s50.iter().cloned().fold(f64::MIN, f64::max) * 100.0
    );
    out
}

/// Figure 3: slowdown incurred by colocation on the baseline SMT core,
/// relative to stand-alone execution on a full core.
pub fn figure03(engine: &Engine) -> String {
    let mut out = String::new();
    w!(out, "Figure 3: colocation slowdown on the baseline SMT core");
    w!(out, "(positive = slower than stand-alone on a full core)");
    w!(out);

    let reference = engine.standalone_reference();
    let matrix = engine.matrix(&EqualPartition);

    let mut all_ls = Vec::new();
    let mut all_batch = Vec::new();
    for ls in engine.ls_names() {
        let ls_slow: Vec<f64> = matrix
            .iter()
            .filter(|p| &p.ls == ls)
            .map(|p| 1.0 - p.ls_uipc / reference[&p.ls])
            .collect();
        let batch_slow: Vec<f64> = matrix
            .iter()
            .filter(|p| &p.ls == ls)
            .map(|p| 1.0 - p.batch_uipc / reference[&p.batch])
            .collect();
        w!(
            out,
            "{}",
            format_distribution_row(
                &format!("{ls} (LS thread)"),
                &DistributionSummary::from_samples(&ls_slow)
            )
        );
        w!(
            out,
            "{}",
            format_distribution_row(
                &format!("{ls} (batch co-runners)"),
                &DistributionSummary::from_samples(&batch_slow)
            )
        );
        all_ls.extend(ls_slow);
        all_batch.extend(batch_slow);
    }

    w!(out);
    let ls_summary = DistributionSummary::from_samples(&all_ls);
    let batch_summary = DistributionSummary::from_samples(&all_batch);
    w!(out, "{}", format_distribution_row("ALL latency-sensitive", &ls_summary));
    w!(out, "{}", format_distribution_row("ALL batch", &batch_summary));
    w!(out);
    w!(out, "Paper: latency-sensitive 14% average / 28% max; batch 24% average / 46% max.");
    out
}

/// Figure 4: slowdown of Web Search and of each batch co-runner when exactly
/// one core resource is shared between the SMT threads.
pub fn figure04(engine: &Engine) -> String {
    let ls = "web-search";

    let mut table = TableWriter::new(
        "Figure 4: per-resource sharing slowdown for Web Search colocations",
        &[
            "batch co-runner",
            "WS|ROB",
            "WS|L1-I",
            "WS|L1-D",
            "WS|BTB+BP",
            "batch|ROB",
            "batch|L1-I",
            "batch|L1-D",
            "batch|BTB+BP",
        ],
    );

    // Flatten (batch, resource) so every cell runs in the shared pool; the
    // engine dedupes any cell another figure already computed.
    let cells: Vec<(String, StudiedResource)> = engine
        .batch_names()
        .iter()
        .flat_map(|b| StudiedResource::ALL.iter().map(move |&r| (b.clone(), r)))
        .collect();
    let outcomes = parallel_map(cells, engine.cfg().workers(), |(batch, resource)| {
        engine.pair(resource, ls, batch)
    });
    let ws_reference = engine.standalone(ls).uipc;

    let mut rob_losses = Vec::new();
    let n_resources = StudiedResource::ALL.len();
    for (i, batch) in engine.batch_names().iter().enumerate() {
        let batch_reference = engine.standalone(batch).uipc;
        let row_outcomes = &outcomes[i * n_resources..(i + 1) * n_resources];
        let ls_cells: Vec<f64> =
            row_outcomes.iter().map(|o| 1.0 - o.ls_uipc / ws_reference).collect();
        let batch_cells: Vec<f64> =
            row_outcomes.iter().map(|o| 1.0 - o.batch_uipc / batch_reference).collect();
        rob_losses.push(batch_cells[0]);
        let mut row = vec![batch.clone()];
        row.extend(ls_cells.iter().map(|v| format!("{:.1}%", v * 100.0)));
        row.extend(batch_cells.iter().map(|v| format!("{:.1}%", v * 100.0)));
        table.row(&row);
    }
    let mut out = table.render();

    let over_15 = rob_losses.iter().filter(|&&v| v > 0.15).count();
    let max = rob_losses.iter().cloned().fold(f64::MIN, f64::max);
    w!(out);
    w!(
        out,
        "Batch co-runners losing more than 15% in the shared ROB: {over_15} of {} (paper: 15 of 29); \
         worst case {:.1}% (paper: 31%).",
        rob_losses.len(),
        max * 100.0
    );
    out
}

/// Figure 5: average slowdown caused by sharing each core resource, for all
/// latency-sensitive services and their batch co-runners.
pub fn figure05(engine: &Engine) -> String {
    let reference = engine.standalone_reference();

    let mut table = TableWriter::new(
        "Figure 5: average slowdown from sharing one resource (LS thread | batch co-runners)",
        &["latency-sensitive", "side", "ROB", "L1-I", "L1-D", "BTB+BP"],
    );

    // Flatten (ls, resource, batch) into one pool-wide cell list.
    let cells: Vec<(String, StudiedResource, String)> = engine
        .ls_names()
        .iter()
        .flat_map(|ls| {
            StudiedResource::ALL.iter().flat_map(move |&r| {
                engine.batch_names().iter().map(move |b| (ls.clone(), r, b.clone()))
            })
        })
        .collect();
    let outcomes = parallel_map(cells.clone(), engine.cfg().workers(), |(ls, resource, batch)| {
        engine.pair(resource, ls, batch)
    });

    let n_batch = engine.batch_names().len() as f64;
    for ls in engine.ls_names() {
        let mut ls_row = vec![ls.clone(), "LS".to_string()];
        let mut batch_row = vec![ls.clone(), "batch".to_string()];
        for resource in StudiedResource::ALL {
            // Cell order is fixed by the `cells` list, so det_sum pins the
            // reduction tree regardless of which worker finished first.
            let mut ls_slow = Vec::new();
            let mut batch_slow = Vec::new();
            for ((cell_ls, cell_resource, cell_batch), outcome) in cells.iter().zip(&outcomes) {
                if cell_ls == ls && *cell_resource == resource {
                    ls_slow.push(1.0 - outcome.ls_uipc / reference[cell_ls]);
                    batch_slow.push(1.0 - outcome.batch_uipc / reference[cell_batch]);
                }
            }
            let ls_sum = det_sum(&ls_slow);
            let batch_sum = det_sum(&batch_slow);
            ls_row.push(format!("{:.1}%", ls_sum / n_batch * 100.0));
            batch_row.push(format!("{:.1}%", batch_sum / n_batch * 100.0));
        }
        table.row(&ls_row);
        table.row(&batch_row);
    }
    let mut out = table.render();
    w!(out);
    w!(out, "Paper: the ROB is the consistent source of batch degradation (19% avg, 31% max);");
    w!(out, "no single resource dominates latency-sensitive slowdown except lbm's L1-D pressure.");
    out
}

/// Figure 6: sensitivity to ROB capacity, normalised to the 192-entry point.
pub fn figure06(engine: &Engine) -> String {
    let rob_sizes: Vec<usize> = vec![16, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192];
    let last = rob_sizes.len() - 1;

    // De-duplicate across the whole list (zeusmp is plotted explicitly AND
    // is one of the batch names; `Vec::dedup` would miss the non-adjacent
    // repeat and double-count it in the batch average).
    let mut series: Vec<String> = engine.ls_names().to_vec();
    series.push("zeusmp".to_string());
    for name in engine.batch_names() {
        if !series.contains(name) {
            series.push(name.clone());
        }
    }

    // Flatten (series, rob) into the shared pool; the 192-entry endpoint is
    // the same cell as the stand-alone reference run.
    let cells: Vec<(String, usize)> = series
        .iter()
        .flat_map(|name| rob_sizes.iter().map(move |&rob| (name.clone(), rob)))
        .collect();
    let uipcs = parallel_map(cells, engine.cfg().workers(), |(name, rob)| {
        engine.standalone_with_rob(name, *rob).uipc
    });
    let curves: Vec<(String, Vec<f64>)> = series
        .iter()
        .enumerate()
        .map(|(i, name)| {
            (name.clone(), uipcs[i * rob_sizes.len()..(i + 1) * rob_sizes.len()].to_vec())
        })
        .collect();

    let batch_set: Vec<&(String, Vec<f64>)> =
        curves.iter().filter(|(n, _)| engine.batch_names().contains(n)).collect();
    let batch_avg: Vec<f64> = (0..rob_sizes.len())
        .map(|i| batch_set.iter().map(|(_, c)| c[i]).sum::<f64>() / batch_set.len() as f64)
        .collect();

    let mut header: Vec<String> = vec!["ROB entries".to_string()];
    header.extend(engine.ls_names().iter().cloned());
    header.push("batch (avg)".to_string());
    header.push("zeusmp".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TableWriter::new(
        "Figure 6: slowdown vs ROB size (normalised to 192 entries; higher = worse)",
        &header_refs,
    );
    let lookup = |name: &str| -> &Vec<f64> {
        &curves.iter().find(|(n, _)| n == name).expect("series present").1
    };
    for (i, rob) in rob_sizes.iter().enumerate() {
        let mut row = vec![rob.to_string()];
        for name in engine.ls_names() {
            let c = lookup(name);
            row.push(format!("{:.1}%", (1.0 - c[i] / c[last]) * 100.0));
        }
        row.push(format!("{:.1}%", (1.0 - batch_avg[i] / batch_avg[last]) * 100.0));
        let z = lookup("zeusmp");
        row.push(format!("{:.1}%", (1.0 - z[i] / z[last]) * 100.0));
        table.row(&row);
    }
    let mut out = table.render();

    // The headline numbers quoted in §III-C.
    let idx_96 = rob_sizes.iter().position(|&r| r == 96).expect("96 in sweep");
    let idx_48 = rob_sizes.iter().position(|&r| r == 48).expect("48 in sweep");
    let batch_loss_96 = 1.0 - batch_avg[idx_96] / batch_avg[last];
    let batch_worst_96 =
        batch_set.iter().map(|(_, c)| 1.0 - c[idx_96] / c[last]).fold(f64::MIN, f64::max);
    let ls_loss_48: Vec<f64> = engine
        .ls_names()
        .iter()
        .map(|n| {
            let c = lookup(n);
            1.0 - c[idx_48] / c[last]
        })
        .collect();
    w!(out);
    w!(
        out,
        "Batch loss at 96 entries: {:.1}% average, {:.1}% worst case (paper: 19% / 31%)",
        batch_loss_96 * 100.0,
        batch_worst_96 * 100.0
    );
    w!(
        out,
        "Latency-sensitive loss at 48 entries: {:.1}%..{:.1}% (paper: within 23%)",
        ls_loss_48.iter().cloned().fold(f64::MAX, f64::min) * 100.0,
        ls_loss_48.iter().cloned().fold(f64::MIN, f64::max) * 100.0
    );
    out
}

/// Figure 7: memory-level parallelism of Web Search versus zeusmp.
pub fn figure07(engine: &Engine) -> String {
    let ws = engine.standalone("web-search");
    let zeusmp = engine.standalone("zeusmp");

    let mut table = TableWriter::new(
        "Figure 7: fraction of time with >= N memory requests in flight",
        &["N (in-flight requests)", "web-search", "zeusmp"],
    );
    for n in 1..=5usize {
        table.row(&[
            format!(">={n}"),
            format!("{:.1}%", ws.mlp.fraction_at_least(n) * 100.0),
            format!("{:.1}%", zeusmp.mlp.fraction_at_least(n) * 100.0),
        ]);
    }
    let mut out = table.render();

    w!(out);
    w!(
        out,
        "Web Search exhibits MLP (>=2 in flight) {:.0}% of the time vs {:.0}% for zeusmp \
         (paper: 9% vs 55%); >=3 in flight: {:.0}% vs {:.0}% (paper: 3% vs 21%).",
        ws.mlp.fraction_at_least(2) * 100.0,
        zeusmp.mlp.fraction_at_least(2) * 100.0,
        ws.mlp.fraction_at_least(3) * 100.0,
        zeusmp.mlp.fraction_at_least(3) * 100.0
    );
    out
}

fn speedups(base: &[PairOutcome], other: &[PairOutcome]) -> (Vec<f64>, Vec<f64>) {
    let mut ls = Vec::new();
    let mut batch = Vec::new();
    for (b, o) in base.iter().zip(other) {
        assert_eq!((&b.ls, &b.batch), (&o.ls, &o.batch), "matrices must be aligned");
        ls.push(o.ls_uipc / b.ls_uipc - 1.0);
        batch.push(o.batch_uipc / b.batch_uipc - 1.0);
    }
    (ls, batch)
}

/// Figure 9: performance change under the Stretch B-mode and Q-mode skews,
/// relative to the baseline equal ROB partitioning.
pub fn figure09(engine: &Engine) -> String {
    let mut out = String::new();
    w!(out, "Figure 9: speedup over the equally partitioned baseline");
    w!(out);
    let baseline = engine.matrix(&EqualPartition);

    let report_skew = |out: &mut String, mode: StretchMode| {
        let result = engine.matrix(&PinnedStretch::new(mode));
        let (ls, batch) = speedups(&baseline, &result);
        w!(
            out,
            "{}",
            format_distribution_row(
                &format!("{mode} (LS)"),
                &DistributionSummary::from_samples(&ls)
            )
        );
        w!(
            out,
            "{}",
            format_distribution_row(
                &format!("{mode} (batch)"),
                &DistributionSummary::from_samples(&batch)
            )
        );
    };

    w!(out, "B-modes (ROB skew LS-batch):");
    for skew in RobSkew::b_mode_sweep() {
        report_skew(&mut out, StretchMode::BatchBoost(skew));
    }
    w!(out);
    w!(out, "Q-modes (ROB skew LS-batch):");
    for skew in RobSkew::q_mode_sweep() {
        report_skew(&mut out, StretchMode::QosBoost(skew));
    }
    w!(out);
    w!(out, "Paper headline: B-mode 56-136 gives batch +13% avg (+30% max) at a 7% avg LS cost;");
    w!(out, "B-mode 32-160 gives +18% avg (+40% max); Q-mode 136-56 gives LS +7% avg (+18% max)");
    w!(out, "while costing batch 21% avg.");
    out
}

/// Figure 10: per-benchmark speedup of batch applications under B-mode
/// 56-136, for each latency-sensitive co-runner, sorted as in the paper.
pub fn figure10(engine: &Engine) -> String {
    let baseline = engine.matrix(&EqualPartition);
    let b_mode =
        engine.matrix(&PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode())));

    let mut out = String::new();
    w!(out, "Figure 10: batch speedup from B-mode 56-136 over the equal-partition baseline");
    w!(out, "(per latency-sensitive co-runner, sorted from largest to smallest)");
    w!(out);

    for ls in engine.ls_names() {
        let mut speedups: Vec<(String, f64)> = baseline
            .iter()
            .zip(&b_mode)
            .filter(|(b, _)| &b.ls == ls)
            .map(|(b, s)| (b.batch.clone(), s.batch_uipc / b.batch_uipc - 1.0))
            .collect();
        speedups.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN speedups"));
        let mut table = TableWriter::new(
            &format!("batch speedups when colocated with {ls}"),
            &["rank", "benchmark", "speedup"],
        );
        for (i, (name, s)) in speedups.iter().enumerate() {
            table.row(&[format!("{}", i + 1), name.clone(), format!("{:+.1}%", s * 100.0)]);
        }
        let _ = write!(out, "{}", table.render());
        let over_15 = speedups.iter().filter(|(_, s)| *s > 0.15).count();
        let over_10 = speedups.iter().filter(|(_, s)| *s > 0.10).count();
        w!(
            out,
            "  -> {over_15} benchmarks gain more than 15%, {over_10} more than 10% \
             (paper: at least 10 over 15%, 12 over 10%)"
        );
        w!(out);
    }
    out
}

/// Figure 11: slowdown of batch applications under a dynamically shared ROB,
/// relative to equal static partitioning.
pub fn figure11(engine: &Engine) -> String {
    let baseline = engine.matrix(&EqualPartition);
    let dynamic = engine.matrix(&DynamicSharing);

    let mut out = String::new();
    w!(out, "Figure 11: batch slowdown under dynamic ROB sharing vs equal partitioning");
    w!(out, "(positive = dynamic sharing is worse for the batch thread)");
    w!(out);

    let mut all_batch = Vec::new();
    let mut all_ls = Vec::new();
    for ls in engine.ls_names() {
        let batch_slow: Vec<f64> = baseline
            .iter()
            .zip(&dynamic)
            .filter(|(b, _)| &b.ls == ls)
            .map(|(b, d)| 1.0 - d.batch_uipc / b.batch_uipc)
            .collect();
        let ls_speed: Vec<f64> = baseline
            .iter()
            .zip(&dynamic)
            .filter(|(b, _)| &b.ls == ls)
            .map(|(b, d)| d.ls_uipc / b.ls_uipc - 1.0)
            .collect();
        w!(
            out,
            "{}",
            format_distribution_row(
                &format!("{ls} co-runners"),
                &DistributionSummary::from_samples(&batch_slow)
            )
        );
        all_batch.extend(batch_slow);
        all_ls.extend(ls_speed);
    }
    w!(out);
    w!(
        out,
        "{}",
        format_distribution_row(
            "ALL batch slowdown",
            &DistributionSummary::from_samples(&all_batch)
        )
    );
    w!(
        out,
        "{}",
        format_distribution_row(
            "ALL latency-sensitive speedup",
            &DistributionSummary::from_samples(&all_ls)
        )
    );
    w!(out);
    w!(out, "Paper: batch loses 8% on average (49% max) under dynamic sharing, while");
    w!(out, "latency-sensitive workloads gain ~4% (11% max); Data Serving co-runners suffer most.");
    out
}

fn per_ls_average(baseline: &[PairOutcome], other: &[PairOutcome], ls: &str) -> (f64, f64) {
    let pairs: Vec<(&PairOutcome, &PairOutcome)> =
        baseline.iter().zip(other).filter(|(b, _)| b.ls == ls).collect();
    let n = pairs.len() as f64;
    let ls_slow = pairs.iter().map(|(b, o)| 1.0 - o.ls_uipc / b.ls_uipc).sum::<f64>() / n;
    let batch_speed = pairs.iter().map(|(b, o)| o.batch_uipc / b.batch_uipc - 1.0).sum::<f64>() / n;
    (ls_slow, batch_speed)
}

/// Figure 12: fetch throttling (1:2 to 1:16) versus Stretch B-mode 56-136,
/// both relative to the equally partitioned baseline.
pub fn figure12(engine: &Engine) -> String {
    let baseline = engine.matrix(&EqualPartition);

    let mut configs: Vec<(String, Vec<PairOutcome>)> = Vec::new();
    for ratio in FETCH_THROTTLING_RATIOS {
        let matrix = engine.matrix(&FetchThrottling::new(ThreadId::T0, ratio));
        configs.push((format!("FT 1:{ratio}"), matrix));
    }
    configs.push((
        "Stretch 56-136".to_string(),
        engine.matrix(&PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode()))),
    ));
    // Not a paper configuration: the hybrid fetch-throttle + ROB-skew policy,
    // included to show what combining the two knobs buys (and that adding a
    // policy to the study is a one-line change here).
    configs.push((
        "Hybrid 1:2+56-136 (extra)".to_string(),
        engine.matrix(&HybridThrottleSkew::recommended()),
    ));

    let mut header: Vec<String> = vec!["configuration".to_string()];
    header.extend(engine.ls_names().iter().cloned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut slow_table = TableWriter::new(
        "Figure 12 (top): average slowdown of the latency-sensitive thread (lower is better)",
        &header_refs,
    );
    let mut speed_table = TableWriter::new(
        "Figure 12 (bottom): average speedup of the batch thread (higher is better)",
        &header_refs,
    );
    for (name, matrix) in &configs {
        let mut slow_row = vec![name.clone()];
        let mut speed_row = vec![name.clone()];
        for ls in engine.ls_names() {
            let (ls_slow, batch_speed) = per_ls_average(&baseline, matrix, ls);
            slow_row.push(format!("{:.1}%", ls_slow * 100.0));
            speed_row.push(format!("{:+.1}%", batch_speed * 100.0));
        }
        slow_table.row(&slow_row);
        speed_table.row(&speed_row);
    }
    let mut out = slow_table.render();
    w!(out);
    let _ = write!(out, "{}", speed_table.render());
    w!(out);
    w!(out, "Paper: fetch throttling 1:8/1:16 costs latency-sensitive threads 48%/68% while");
    w!(out, "buying batch only 4%/6%; Stretch delivers +13% batch for a 7% LS cost.");
    out
}

fn average_batch_speedup(baseline: &[PairOutcome], other: &[PairOutcome], ls: &str) -> f64 {
    let pairs: Vec<(&PairOutcome, &PairOutcome)> =
        baseline.iter().zip(other).filter(|(b, _)| b.ls == ls).collect();
    pairs.iter().map(|(b, o)| o.batch_uipc / b.batch_uipc - 1.0).sum::<f64>() / pairs.len() as f64
}

/// Figure 13: ideal software scheduling versus Stretch versus both combined.
pub fn figure13(engine: &Engine) -> String {
    let skew = RobSkew::recommended_b_mode();

    let baseline = engine.matrix(&EqualPartition);
    let ideal = engine.matrix(&IdealScheduling::new());
    let stretch_only = engine.matrix(&PinnedStretch::new(StretchMode::BatchBoost(skew)));
    let combined = engine.matrix(&IdealScheduling::with_stretch(
        ThreadId::T0,
        skew.ls_entries,
        skew.batch_entries,
    ));

    let mut table = TableWriter::new(
        "Figure 13: average batch speedup over the baseline core",
        &[
            "latency-sensitive",
            "ideal software scheduling",
            "Stretch",
            "Stretch + ideal scheduling",
        ],
    );
    let mut sums = [0.0f64; 3];
    for ls in engine.ls_names() {
        let a = average_batch_speedup(&baseline, &ideal, ls);
        let b = average_batch_speedup(&baseline, &stretch_only, ls);
        let c = average_batch_speedup(&baseline, &combined, ls);
        sums[0] += a;
        sums[1] += b;
        sums[2] += c;
        table.row(&[
            ls.clone(),
            format!("{:+.1}%", a * 100.0),
            format!("{:+.1}%", b * 100.0),
            format!("{:+.1}%", c * 100.0),
        ]);
    }
    let n = engine.ls_names().len() as f64;
    table.row(&[
        "Average".to_string(),
        format!("{:+.1}%", sums[0] / n * 100.0),
        format!("{:+.1}%", sums[1] / n * 100.0),
        format!("{:+.1}%", sums[2] / n * 100.0),
    ]);
    let mut out = table.render();
    w!(out);
    w!(out, "Paper: ideal software scheduling +8%, Stretch +13%, combined +21% — the two");
    w!(out, "techniques address different sources of loss and compose additively.");
    out
}

/// Figure 14 and the §VI-D case studies: diurnal load patterns and the
/// resulting 24-hour cluster throughput gains.
pub fn figure14(_engine: &Engine) -> String {
    let mut table = TableWriter::new(
        "Figure 14: diurnal load (fraction of peak) and B-mode engagement (<85% of peak)",
        &["hour", "web-search load", "B-mode", "youtube load", "B-mode"],
    );
    for hour in 0..24 {
        let ws = DiurnalPattern::WebSearch.load_at(hour as f64);
        let yt = DiurnalPattern::YouTube.load_at(hour as f64);
        table.row(&[
            format!("{hour:02}:00"),
            format!("{:.0}%", ws * 100.0),
            if ws < 0.85 { "engaged".into() } else { "-".to_string() },
            format!("{:.0}%", yt * 100.0),
            if yt < 0.85 { "engaged".into() } else { "-".to_string() },
        ]);
    }
    let mut out = table.render();
    w!(out);

    let mut summary = TableWriter::new(
        "Cluster case studies (B-mode 56-136 engaged below 85% of peak load)",
        &["cluster", "hours engaged / day", "24-hour batch throughput gain", "paper"],
    );
    let ws = CaseStudy::web_search().run();
    let yt = CaseStudy::youtube().run();
    summary.row(&[
        "Web Search".to_string(),
        format!("{:.1} h", ws.hours_engaged),
        format!("{:+.1}%", ws.gain() * 100.0),
        "~11 h, +5%".to_string(),
    ]);
    summary.row(&[
        "YouTube".to_string(),
        format!("{:.1} h", yt.hours_engaged),
        format!("{:+.1}%", yt.gain() * 100.0),
        "~17 h, +11%".to_string(),
    ]);
    let _ = write!(out, "{}", summary.render());
    out
}

/// Figure 14 (measured): the §VI-D cluster case studies re-done as a
/// load-balanced fleet simulation — B-mode engagement decided by each
/// server's own measured tail latency through the closed-loop Stretch
/// monitor, not by a load threshold applied by fiat — plus a dispatcher
/// comparison. The analytical accounting of `figure14` is printed alongside
/// as the cross-check; the two land within two percentage points.
pub fn figure14_measured(engine: &Engine) -> String {
    let scale =
        if engine.cfg().is_quick() { FleetScale::quick(42) } else { FleetScale::standard(42) };
    let studies = [("Web Search", CaseStudy::web_search()), ("YouTube", CaseStudy::youtube())];
    let default_balancer = LoadBalancer::LeastLoaded;

    // One job per distinct fleet cell: both clusters under the default
    // dispatcher, plus the full balancer sweep for the Web Search cluster.
    // All cells run through the engine's pool and result cache; the shared
    // (Web Search, least-loaded) cell is computed once.
    let mut jobs: Vec<(CaseStudy, LoadBalancer)> =
        studies.iter().map(|(_, study)| (*study, default_balancer)).collect();
    for balancer in LoadBalancer::ALL {
        if balancer != default_balancer {
            jobs.push((studies[0].1, balancer));
        }
    }
    let reports = parallel_map(jobs.clone(), engine.cfg().workers(), |(study, balancer)| {
        engine.fleet_study(study, *balancer, scale)
    });
    // Look cells up by (study, balancer) rather than by position, so the
    // job-construction order above can change without mislabelling rows.
    let report_for = |study: &CaseStudy, balancer: LoadBalancer| -> &cluster_sim::FleetReport {
        jobs.iter()
            .zip(&reports)
            .find(|((s, b), _)| s == study && *b == balancer)
            .map(|(_, report)| report)
            .expect("fleet cell was scheduled")
    };

    let mut table = TableWriter::new(
        &format!(
            "Figure 14 (measured): {} servers, {} requests/server-interval, {} dispatch",
            scale.servers, scale.requests_per_server, default_balancer
        ),
        &[
            "cluster",
            "hours engaged",
            "analytical",
            "24-hour gain",
            "analytical",
            "paper",
            "fleet p99",
            "QoS violations",
        ],
    );
    for (name, study) in &studies {
        let measured = report_for(study, default_balancer);
        let analytical = study.run();
        table.row(&[
            (*name).to_string(),
            format!("{:.1} h", measured.hours_engaged),
            format!("{:.1} h", analytical.hours_engaged),
            format!("{:+.1}%", measured.gain() * 100.0),
            format!("{:+.1}%", analytical.gain() * 100.0),
            if *name == "Web Search" { "+5%" } else { "+11%" }.to_string(),
            format!("{:.0} ms", measured.p99_ms),
            format!("{:.1}%", measured.violation_fraction * 100.0),
        ]);
    }
    let mut out = table.render();
    w!(out);

    let mut balancers = TableWriter::new(
        "Dispatcher comparison (Web Search cluster)",
        &["balancer", "hours engaged", "24-hour gain", "fleet p50", "fleet p99", "QoS violations"],
    );
    for balancer in LoadBalancer::ALL {
        let report = report_for(&studies[0].1, balancer);
        balancers.row(&[
            balancer.to_string(),
            format!("{:.1} h", report.hours_engaged),
            format!("{:+.1}%", report.gain() * 100.0),
            format!("{:.0} ms", report.p50_ms),
            format!("{:.0} ms", report.p99_ms),
            format!("{:.1}%", report.violation_fraction * 100.0),
        ]);
    }
    let _ = write!(out, "{}", balancers.render());
    w!(out);
    w!(out, "Engagement is decided per server by its own measured tail latency (thresholds");
    w!(out, "calibrated on the fleet at the paper's 85%-of-peak rule); the analytical columns");
    w!(out, "apply the load threshold directly. Queue-aware dispatchers cut the fleet tail");
    w!(out, "and QoS violations relative to round-robin at the same offered load.");
    out
}

/// Figure 15 (extension): the two policy layers composed on one server.
/// A 2-core SMT4 machine is offered the paper's "1 LS + 3 batch" population;
/// every [`AllocationPolicy`] (which thread lands on which core) is crossed
/// with every core-level partitioning (baseline equal shares vs Stretch
/// B-mode), and each whole-server run is one cached engine cell.
pub fn figure15_allocation(engine: &Engine) -> String {
    let spec = ServerSpec::new(2, 4);
    let batch_pool = engine.batch_names();
    // Three batch co-runners drawn from the engine's batch list, cycling so
    // the figure also renders under a reduced --matrix sub-study.
    let batches: Vec<String> = (0..3).map(|i| batch_pool[i % batch_pool.len()].clone()).collect();
    let allocations: [(&str, &dyn AllocationPolicy); 3] =
        [("greedy", &Greedy), ("round-robin", &RoundRobin), ("symbiosis-aware", &SymbiosisAware)];
    let b_mode = PinnedStretch::new(StretchMode::BatchBoost(RobSkew::recommended_b_mode()));
    let colocations: [(&str, &dyn ColocationPolicy); 2] =
        [("baseline equal", &EqualPartition), ("Stretch B-mode", &b_mode)];

    let jobs: Vec<(String, usize, usize)> = engine
        .ls_names()
        .iter()
        .flat_map(|ls| {
            (0..allocations.len()).flat_map(move |a| {
                let ls = ls.clone();
                (0..colocations.len()).map(move |c| (ls.clone(), a, c))
            })
        })
        .collect();
    let outcomes = parallel_map(jobs.clone(), engine.cfg().workers(), |(ls, a, c)| {
        engine.server(spec, allocations[*a].1, colocations[*c].1, ls, &batches)
    });

    let placement_label = |outcome: &crate::harness::ServerOutcome| -> String {
        outcome
            .cores
            .iter()
            .map(|core| {
                if core.is_empty() {
                    "-".to_string()
                } else {
                    core.iter()
                        .map(|&t| if t == 0 { "LS".to_string() } else { format!("B{t}") })
                        .collect::<Vec<_>>()
                        .join("+")
                }
            })
            .collect::<Vec<_>>()
            .join(" | ")
    };

    let mut table = TableWriter::new(
        &format!(
            "Figure 15: allocation x partitioning on {} cores x SMT{} (1 LS + {} batch)",
            spec.cores,
            spec.threads_per_core,
            batches.len()
        ),
        &["LS service", "allocation", "partitioning", "placement", "LS retained", "batch thrpt"],
    );
    for ((ls, a, c), outcome) in jobs.iter().zip(&outcomes) {
        let standalone = engine.standalone(ls).uipc;
        table.row(&[
            ls.clone(),
            allocations[*a].0.to_string(),
            colocations[*c].0.to_string(),
            placement_label(outcome),
            format!("{:.1}%", outcome.ls_uipc() / standalone * 100.0),
            format!("{:.3} uIPC", outcome.batch_throughput()),
        ]);
    }
    let mut out = table.render();
    w!(out);
    w!(out, "Greedy spreads the service onto its own core and packs the batch jobs together;");
    w!(out, "round-robin deals threads across cores so the service always shares; the");
    w!(out, "symbiosis-aware allocator pairs the fastest and slowest batch jobs with the");
    w!(out, "service. The partitioning column then chooses how each occupied core splits its");
    w!(out, "ROB/LSQ between its resident threads (static shares: an isolated service still");
    w!(out, "holds only its partition). Each row is one whole-server engine cell, keyed by");
    w!(out, "allocation identity, partitioning identity and the chosen placement.");
    out
}

/// Tables I, II and III: workload specifications and simulated processor
/// parameters. With `as_json` the tables are emitted as JSON documents for
/// plotting scripts instead of fixed-width text.
pub fn tables(_engine: &Engine, as_json: bool) -> String {
    use workloads::{batch, latency_sensitive};

    let mut out = String::new();
    let emit = |out: &mut String, table: &TableWriter| {
        if as_json {
            w!(out, "{}", json::render(table));
        } else {
            let _ = write!(out, "{}", table.render());
        }
    };

    // Table I: latency-sensitive workloads and their QoS targets.
    let mut t1 = TableWriter::new(
        "Table I: latency-sensitive workloads and QoS targets",
        &["workload", "QoS target", "tail metric", "service median (ms)", "CPU fraction"],
    );
    for s in ServiceSpec::all() {
        t1.row(&[
            s.name.clone(),
            format!("{} ms", s.qos_target_ms),
            format!("{:?}", s.tail_metric),
            format!("{}", s.service_median_ms),
            format!("{:.0}%", s.cpu_fraction * 100.0),
        ]);
    }
    emit(&mut out, &t1);
    w!(out);

    // Table II: simulated processor parameters.
    let cfg = CoreConfig::default();
    let mut t2 =
        TableWriter::new("Table II: simulated processor parameters", &["parameter", "value"]);
    t2.row(&[
        "Fetch width".into(),
        format!(
            "{} instructions, up to {} blocks, {} branch",
            cfg.fetch_width, cfg.fetch_blocks_per_cycle, cfg.fetch_branches_per_cycle
        ),
    ]);
    t2.row(&[
        "L1-I".into(),
        format!(
            "{} KB, {}-way, {} banks",
            cfg.l1i.capacity_bytes / 1024,
            cfg.l1i.ways,
            cfg.l1i.banks
        ),
    ]);
    t2.row(&[
        "Branch predictor".into(),
        format!(
            "hybrid ({}K gShare + {}K bimodal), {}-entry BTB",
            cfg.branch.gshare_entries / 1024,
            cfg.branch.bimodal_entries / 1024,
            cfg.branch.btb_entries
        ),
    ]);
    t2.row(&["Pipeline flush".into(), format!("{} cycles", cfg.pipeline_flush_cycles)]);
    t2.row(&[
        "ROB".into(),
        format!("{} entries total, {} per thread", cfg.rob_capacity, cfg.rob_capacity / 2),
    ]);
    t2.row(&[
        "LSQ".into(),
        format!("{} entries total, {} per thread", cfg.lsq_capacity, cfg.lsq_capacity / 2),
    ]);
    t2.row(&[
        "L1-D".into(),
        format!(
            "{} KB, {}-way, {} MSHRs per thread, stride prefetcher ({} PCs)",
            cfg.l1d.capacity_bytes / 1024,
            cfg.l1d.ways,
            cfg.mshrs_per_thread,
            cfg.prefetcher_pc_slots
        ),
    ]);
    t2.row(&[
        "Functional units".into(),
        format!(
            "{} int ALU + {} mul, {} FPU, {} LSU",
            cfg.fus.int_alu, cfg.fus.int_mul, cfg.fus.fpu, cfg.fus.lsu
        ),
    ]);
    t2.row(&[
        "Dispatch/commit width".into(),
        format!("{} / {}", cfg.dispatch_width, cfg.commit_width),
    ]);
    t2.row(&[
        "LLC".into(),
        format!(
            "{} MB, {}-way, {}-cycle average access",
            cfg.uncore.llc_capacity_bytes / (1024 * 1024),
            cfg.uncore.llc_ways,
            cfg.uncore.llc_latency
        ),
    ]);
    t2.row(&[
        "Memory".into(),
        format!(
            "{} ns ({} cycles at {} GHz)",
            cfg.uncore.mem_latency_ns,
            cfg.uncore.mem_latency_cycles(),
            cfg.uncore.freq_ghz
        ),
    ]);
    emit(&mut out, &t2);
    w!(out);

    // Table III: workload profiles used for the microarchitectural studies.
    let mut t3 = TableWriter::new(
        "Table III: workload profiles (synthetic substitutes)",
        &[
            "workload",
            "class",
            "code footprint",
            "data footprint",
            "dependent loads",
            "stride frac",
        ],
    );
    for p in latency_sensitive::all_profiles().into_iter().chain(batch::all_profiles()) {
        t3.row(&[
            p.name.clone(),
            format!("{}", p.class),
            format!("{} KB", p.code_footprint_bytes / 1024),
            format!("{} MB", p.data_footprint_bytes / (1024 * 1024)),
            format!("{:.0}%", p.dependent_load_frac * 100.0),
            format!("{:.0}%", p.stride_frac * 100.0),
        ]);
    }
    emit(&mut out, &t3);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_binary() {
        let names: Vec<&str> = all().iter().map(|f| f.name).collect();
        assert_eq!(names.len(), 16);
        for expected in [
            "figure01",
            "figure02",
            "figure03",
            "figure04",
            "figure05",
            "figure06",
            "figure07",
            "figure09",
            "figure10",
            "figure11",
            "figure12",
            "figure13",
            "figure14",
            "figure14_measured",
            "figure15_allocation",
            "tables",
        ] {
            assert!(names.contains(&expected), "{expected} missing from registry");
        }
        assert!(by_name("figure03").is_some());
        assert!(by_name("figure08").is_none(), "the paper has no figure 8 evaluation plot");
    }

    #[test]
    fn figure14_and_tables_render_without_simulating() {
        let engine = Engine::new(ExperimentConfig::quick());
        let fig14 = figure14(&engine);
        assert!(fig14.contains("Figure 14"));
        assert!(fig14.contains("Web Search"));
        let t = tables(&engine, false);
        assert!(t.contains("Table I"));
        assert!(t.contains("Table II"));
        assert!(t.contains("Table III"));
        let tj = tables(&engine, true);
        assert!(tj.contains("\"title\""));
        assert_eq!(engine.sim_runs(), 0, "static figures must not simulate");
    }
}
