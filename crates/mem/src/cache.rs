//! Set-associative caches with LRU replacement and optional per-thread
//! privatisation.

use serde::{Deserialize, Serialize};
use sim_model::{CacheConfig, CanonicalKey, KeyEncoder, ThreadId};

/// How a cache structure is shared between the two SMT threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sharing {
    /// One physical structure, dynamically shared: either thread can allocate
    /// into any entry (the baseline SMT core of §V-A).
    Shared,
    /// Each thread is given its own full-size copy. This idealisation removes
    /// all inter-thread contention for the structure and is used by the
    /// per-resource study (Figures 4/5) and the ideal-software-scheduling
    /// baseline (Figure 13).
    PrivatePerThread,
}

impl CanonicalKey for Sharing {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.tag(match self {
            Sharing::Shared => 0,
            Sharing::PrivatePerThread => 1,
        });
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// One bank-agnostic set-associative cache with true-LRU replacement.
///
/// Tags are full block addresses; capacity and associativity come from a
/// [`CacheConfig`]. Banking is modelled only as a port constraint in the core
/// front-end, not here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`, `None` when invalid.
    tags: Vec<Option<u64>>,
    /// LRU stamps, larger = more recently used.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache from a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::sets`]).
    pub fn new(cfg: &CacheConfig) -> SetAssocCache {
        let sets = cfg.sets();
        let line_shift = cfg.line_bytes.trailing_zeros();
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        SetAssocCache {
            sets,
            ways: cfg.ways,
            line_shift,
            tags: vec![None; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Builds a cache with an explicit number of sets and ways and a 64-byte
    /// line, used for LLC partitions.
    pub fn with_geometry(sets: usize, ways: usize) -> SetAssocCache {
        assert!(sets > 0 && ways > 0, "cache must have at least one set and one way");
        SetAssocCache {
            sets,
            ways,
            line_shift: 6,
            tags: vec![None; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_index(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    /// Accesses byte address `addr`; on a miss the block is allocated
    /// (write-allocate for both reads and writes). Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        self.access_block(block)
    }

    /// Accesses a pre-computed block address.
    pub fn access_block(&mut self, block: u64) -> bool {
        self.clock += 1;
        let set = self.set_index(block);
        let base = set * self.ways;
        // Hit?
        for way in 0..self.ways {
            if self.tags[base + way] == Some(block) {
                self.stamps[base + way] = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: fill into LRU way.
        self.stats.misses += 1;
        self.fill_block(block);
        false
    }

    /// Looks up byte address `addr`, updating LRU state and hit/miss counters,
    /// but **without** allocating on a miss. Used for demand loads, whose fill
    /// only lands when the corresponding miss completes (see the MSHR file).
    pub fn lookup(&mut self, addr: u64) -> bool {
        let block = addr >> self.line_shift;
        self.clock += 1;
        let set = self.set_index(block);
        let base = set * self.ways;
        for way in 0..self.ways {
            if self.tags[base + way] == Some(block) {
                self.stamps[base + way] = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Probes for a block without updating LRU state or statistics.
    pub fn probe_block(&self, block: u64) -> bool {
        let set = self.set_index(block);
        let base = set * self.ways;
        (0..self.ways).any(|way| self.tags[base + way] == Some(block))
    }

    /// Installs a block (e.g. a prefetch fill) without counting an access.
    pub fn fill_block(&mut self, block: u64) {
        self.clock += 1;
        let set = self.set_index(block);
        let base = set * self.ways;
        // Already present: refresh.
        for way in 0..self.ways {
            if self.tags[base + way] == Some(block) {
                self.stamps[base + way] = self.clock;
                return;
            }
        }
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for way in 0..self.ways {
            match self.tags[base + way] {
                None => {
                    victim = way;
                    break;
                }
                Some(_) => {
                    if self.stamps[base + way] < oldest {
                        oldest = self.stamps[base + way];
                        victim = way;
                    }
                }
            }
        }
        self.tags[base + victim] = Some(block);
        self.stamps[base + victim] = self.clock;
    }

    /// Hit/miss statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears statistics (e.g. at the end of a warm-up window) but keeps
    /// cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

/// A cache structure that can be configured as shared or private per thread.
///
/// In `Shared` mode both threads access the same underlying cache (index 0);
/// in `PrivatePerThread` mode each thread gets its own full-size copy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadedCache {
    sharing: Sharing,
    caches: Vec<SetAssocCache>,
}

impl ThreadedCache {
    /// Builds the structure for the classic dual-threaded core.
    pub fn new(cfg: &CacheConfig, sharing: Sharing) -> ThreadedCache {
        ThreadedCache::with_threads(cfg, sharing, 2)
    }

    /// Builds the structure for an SMT-`threads` core: one shared copy, or
    /// one full-size private copy per hardware thread.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(cfg: &CacheConfig, sharing: Sharing, threads: usize) -> ThreadedCache {
        assert!(threads >= 1, "a cache needs at least one thread");
        let copies = match sharing {
            Sharing::Shared => 1,
            Sharing::PrivatePerThread => threads,
        };
        let caches = (0..copies).map(|_| SetAssocCache::new(cfg)).collect();
        ThreadedCache { sharing, caches }
    }

    #[inline]
    fn cache_mut(&mut self, thread: ThreadId) -> &mut SetAssocCache {
        match self.sharing {
            Sharing::Shared => &mut self.caches[0],
            Sharing::PrivatePerThread => &mut self.caches[thread.index()],
        }
    }

    #[inline]
    fn cache(&self, thread: ThreadId) -> &SetAssocCache {
        match self.sharing {
            Sharing::Shared => &self.caches[0],
            Sharing::PrivatePerThread => &self.caches[thread.index()],
        }
    }

    /// Accesses `addr` on behalf of `thread`; allocates on miss.
    pub fn access(&mut self, thread: ThreadId, addr: u64) -> bool {
        self.cache_mut(thread).access(addr)
    }

    /// Looks up `addr` on behalf of `thread` without allocating on a miss.
    pub fn lookup(&mut self, thread: ThreadId, addr: u64) -> bool {
        self.cache_mut(thread).lookup(addr)
    }

    /// Installs a block on behalf of `thread` without counting an access.
    pub fn fill_block(&mut self, thread: ThreadId, block: u64) {
        self.cache_mut(thread).fill_block(block);
    }

    /// Probes without side effects.
    pub fn probe_block(&self, thread: ThreadId, block: u64) -> bool {
        self.cache(thread).probe_block(block)
    }

    /// Combined statistics across the structure.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for c in &self.caches {
            out.hits += c.stats().hits;
            out.misses += c.stats().misses;
        }
        out
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        for c in &mut self.caches {
            c.reset_stats();
        }
    }

    /// Sharing mode.
    pub fn sharing(&self) -> Sharing {
        self.sharing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_model::CacheConfig;

    fn small_cfg() -> CacheConfig {
        // 4 sets x 2 ways x 64B = 512 B.
        CacheConfig { capacity_bytes: 512, line_bytes: 64, ways: 2, banks: 1, hit_latency: 1 }
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = SetAssocCache::new(&small_cfg());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same block
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = SetAssocCache::with_geometry(1, 2);
        // Blocks 1, 2 fill both ways; touching 1 makes 2 the LRU victim for 3.
        c.access_block(1);
        c.access_block(2);
        c.access_block(1);
        c.access_block(3);
        assert!(c.probe_block(1), "block 1 was recently used and must survive");
        assert!(!c.probe_block(2), "block 2 was LRU and must be evicted");
        assert!(c.probe_block(3));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = small_cfg();
        let mut c = SetAssocCache::new(&cfg);
        // Stream over 4x the capacity twice; second pass should still miss
        // (LRU with a cyclic pattern larger than capacity never hits).
        let blocks: Vec<u64> = (0..32).collect();
        for &b in &blocks {
            c.access_block(b);
        }
        let misses_before = c.stats().misses;
        for &b in &blocks {
            c.access_block(b);
        }
        assert_eq!(c.stats().misses, misses_before + blocks.len() as u64);
    }

    #[test]
    fn working_set_smaller_than_cache_hits() {
        let cfg = small_cfg();
        let mut c = SetAssocCache::new(&cfg);
        let blocks: Vec<u64> = (0..8).collect(); // exactly capacity
        for &b in &blocks {
            c.access_block(b);
        }
        for &b in &blocks {
            assert!(c.access_block(b), "block {b} should hit on the second pass");
        }
    }

    #[test]
    fn fill_does_not_count_stats() {
        let mut c = SetAssocCache::new(&small_cfg());
        c.fill_block(42);
        assert_eq!(c.stats().hits + c.stats().misses, 0);
        assert!(c.probe_block(42));
    }

    #[test]
    fn shared_mode_causes_cross_thread_interference() {
        let cfg =
            CacheConfig { capacity_bytes: 128, line_bytes: 64, ways: 1, banks: 1, hit_latency: 1 };
        let mut shared = ThreadedCache::new(&cfg, Sharing::Shared);
        // T0 loads block 0 (set 0); T1 loads block 2 (also set 0, 2 sets x 1 way),
        // evicting T0's line.
        shared.access(ThreadId::T0, 0);
        shared.access(ThreadId::T1, 2 * 64);
        assert!(!shared.access(ThreadId::T0, 0), "shared cache: T1 evicted T0's block");

        let mut private = ThreadedCache::new(&cfg, Sharing::PrivatePerThread);
        private.access(ThreadId::T0, 0);
        private.access(ThreadId::T1, 2 * 64);
        assert!(private.access(ThreadId::T0, 0), "private cache: no interference");
    }

    #[test]
    fn threaded_cache_stats_aggregate() {
        let cfg = small_cfg();
        let mut c = ThreadedCache::new(&cfg, Sharing::PrivatePerThread);
        c.access(ThreadId::T0, 0x0);
        c.access(ThreadId::T1, 0x0);
        assert_eq!(c.stats().misses, 2);
        c.reset_stats();
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn miss_ratio_bounds() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }
}
