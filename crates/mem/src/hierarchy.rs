//! The complete memory hierarchy seen by the SMT core.
//!
//! Combines the L1 instruction and data caches, the per-thread MSHRs, the
//! stride prefetcher, the per-thread LLC partitions and the DRAM latency into
//! the interface the core model uses:
//!
//! * [`MemoryHierarchy::fetch`] — instruction fetch of a cache block.
//! * [`MemoryHierarchy::load`] / [`MemoryHierarchy::store`] — data accesses.
//! * [`MemoryHierarchy::tick`] — advance time: complete outstanding misses
//!   and prefetches, filling the caches.
//!
//! The LLC is always partitioned per thread (the paper partitions it with
//! Intel CAT-style way partitioning to take LLC contention out of the
//! picture); the L1s can be shared or private per thread (see
//! [`crate::cache::Sharing`]).

use crate::cache::{SetAssocCache, Sharing, ThreadedCache};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::prefetch::StridePrefetcher;
use serde::{Deserialize, Serialize};
use sim_model::{CacheConfig, CoreConfig, Cycle, ThreadId};

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of SMT hardware threads sharing the hierarchy (T >= 1).
    pub threads: usize,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Sharing mode of the L1-I between SMT threads.
    pub l1i_sharing: Sharing,
    /// Sharing mode of the L1-D between SMT threads.
    pub l1d_sharing: Sharing,
    /// Demand-miss MSHRs per thread.
    pub mshrs_per_thread: usize,
    /// Stride prefetcher PC slots per thread (0 disables prefetching).
    pub prefetcher_pc_slots: usize,
    /// Total LLC capacity in bytes (split equally per thread).
    pub llc_capacity_bytes: usize,
    /// Total LLC associativity (split equally per thread).
    pub llc_ways: usize,
    /// Average LLC access latency in cycles.
    pub llc_latency: u64,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// Maximum in-flight prefetch fills per thread.
    pub prefetch_queue_depth: usize,
}

impl HierarchyConfig {
    /// Derives the hierarchy configuration from a [`CoreConfig`] (Table II
    /// defaults) with both L1s dynamically shared, as in the baseline core.
    pub fn from_core(core: &CoreConfig) -> HierarchyConfig {
        HierarchyConfig {
            threads: 2,
            l1i: core.l1i,
            l1d: core.l1d,
            l1i_sharing: Sharing::Shared,
            l1d_sharing: Sharing::Shared,
            mshrs_per_thread: core.mshrs_per_thread,
            prefetcher_pc_slots: core.prefetcher_pc_slots,
            llc_capacity_bytes: core.uncore.llc_capacity_bytes,
            llc_ways: core.uncore.llc_ways,
            llc_latency: core.uncore.llc_latency,
            mem_latency: core.uncore.mem_latency_cycles(),
            l1_hit_latency: core.l1d.hit_latency,
            prefetch_queue_depth: 8,
        }
    }

    /// Same as [`HierarchyConfig::from_core`] but with private (contention
    /// free) L1 caches, used by the ideal-software-scheduling baseline and the
    /// per-resource study.
    pub fn from_core_private_l1(core: &CoreConfig) -> HierarchyConfig {
        let mut cfg = HierarchyConfig::from_core(core);
        cfg.l1i_sharing = Sharing::PrivatePerThread;
        cfg.l1d_sharing = Sharing::PrivatePerThread;
        cfg
    }
}

/// Outcome of a data-load access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadResult {
    /// L1-D hit; data available after `latency` cycles.
    Hit {
        /// Cycles until the data is available.
        latency: u64,
    },
    /// L1-D miss tracked by an MSHR; data available at the `completion` cycle.
    Miss {
        /// Absolute cycle at which the fill completes.
        completion: Cycle,
    },
    /// No MSHR was available; the load must retry on a later cycle.
    NoMshr,
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Demand loads observed.
    pub loads: u64,
    /// Stores observed.
    pub stores: u64,
    /// Loads that hit in the L1-D.
    pub l1d_load_hits: u64,
    /// Loads that missed in the L1-D.
    pub l1d_load_misses: u64,
    /// L1-D misses that also missed the LLC (went to memory).
    pub llc_misses: u64,
    /// Instruction-fetch blocks that missed the L1-I.
    pub l1i_misses: u64,
    /// Prefetch fills installed.
    pub prefetch_fills: u64,
    /// Loads rejected because no MSHR was free.
    pub mshr_rejections: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PendingPrefetch {
    block: u64,
    completion: Cycle,
}

/// The complete memory hierarchy for one SMT core (`cfg.threads` contexts).
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1i: ThreadedCache,
    l1d: ThreadedCache,
    /// Per-thread LLC partitions (way-partitioned equal shares).
    llc: Vec<SetAssocCache>,
    mshrs: MshrFile,
    prefetcher: StridePrefetcher,
    pending_prefetch: Vec<Vec<PendingPrefetch>>,
    /// Earliest cycle at which any outstanding miss or pending prefetch can
    /// fill ([`Cycle::MAX`] when nothing is in flight). The per-cycle
    /// [`MemoryHierarchy::tick`] returns immediately before this watermark,
    /// so a quiescent hierarchy costs ~zero per cycle. The watermark is
    /// conservative — never later than the true next fill, though it may be
    /// earlier after a flush (one wasted scan, never a missed event).
    next_event: Cycle,
    stats: HierarchyStats,
    /// Reusable buffer for completed demand-miss blocks: `tick` runs every
    /// simulated cycle, so it must not allocate on the fill path.
    scratch_fills: Vec<u64>,
    /// Reusable buffer for landed prefetch blocks, same reasoning.
    scratch_landed: Vec<u64>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the LLC geometry is inconsistent (zero ways or capacity).
    pub fn new(cfg: HierarchyConfig) -> MemoryHierarchy {
        assert!(cfg.threads >= 1, "a hierarchy needs at least one thread");
        let share_ways = (cfg.llc_ways / cfg.threads).max(1);
        let share_capacity = cfg.llc_capacity_bytes / cfg.threads;
        assert!(share_capacity > 0, "LLC capacity must be non-zero");
        let sets = share_capacity / (share_ways * 64);
        assert!(sets > 0, "LLC partition has no sets: {cfg:?}");
        MemoryHierarchy {
            l1i: ThreadedCache::with_threads(&cfg.l1i, cfg.l1i_sharing, cfg.threads),
            l1d: ThreadedCache::with_threads(&cfg.l1d, cfg.l1d_sharing, cfg.threads),
            llc: (0..cfg.threads).map(|_| SetAssocCache::with_geometry(sets, share_ways)).collect(),
            mshrs: MshrFile::with_threads(cfg.mshrs_per_thread, cfg.threads),
            prefetcher: StridePrefetcher::with_threads(cfg.prefetcher_pc_slots, cfg.threads),
            pending_prefetch: vec![Vec::new(); cfg.threads],
            next_event: Cycle::MAX,
            stats: HierarchyStats::default(),
            scratch_fills: Vec::new(),
            scratch_landed: Vec::new(),
            cfg,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Latency beyond the L1 for a block, consulting (and filling) the
    /// thread's LLC partition.
    fn beyond_l1_latency(&mut self, thread: ThreadId, block: u64) -> u64 {
        let llc_hit = self.llc[thread.index()].access_block(block);
        if llc_hit {
            self.cfg.llc_latency
        } else {
            self.stats.llc_misses += 1;
            self.cfg.mem_latency
        }
    }

    /// Instruction fetch of the block containing `pc`. Returns the latency in
    /// cycles before the block is available (the front-end stalls the thread
    /// for that long on a miss).
    pub fn fetch(&mut self, thread: ThreadId, pc: u64, _now: Cycle) -> u64 {
        let hit = self.l1i.access(thread, pc);
        if hit {
            self.cfg.l1_hit_latency
        } else {
            self.stats.l1i_misses += 1;
            self.cfg.l1_hit_latency + self.beyond_l1_latency(thread, pc >> 6)
        }
    }

    /// Data load by `thread` at byte address `addr` issued from instruction
    /// `pc` at cycle `now`.
    pub fn load(&mut self, thread: ThreadId, addr: u64, pc: u64, now: Cycle) -> LoadResult {
        self.stats.loads += 1;
        self.train_prefetcher(thread, pc, addr, now);
        let block = addr >> 6;
        if self.l1d.lookup(thread, addr) {
            self.stats.l1d_load_hits += 1;
            return LoadResult::Hit { latency: self.cfg.l1_hit_latency };
        }
        self.stats.l1d_load_misses += 1;
        // Check for an already-outstanding miss to the same block first so a
        // full MSHR file still allows coalescing.
        if let Some(completion) = self.mshrs.lookup(thread, block) {
            return LoadResult::Miss { completion };
        }
        let latency = self.cfg.l1_hit_latency + self.beyond_l1_latency(thread, block);
        match self.mshrs.request(thread, block, now + latency) {
            MshrOutcome::Allocated(c) | MshrOutcome::Coalesced(c) => {
                self.next_event = self.next_event.min(c);
                LoadResult::Miss { completion: c }
            }
            MshrOutcome::Full => {
                self.stats.mshr_rejections += 1;
                LoadResult::NoMshr
            }
        }
    }

    /// Store by `thread` to `addr`. Stores are modelled as draining through a
    /// store buffer at commit: they allocate in the L1-D (write-allocate,
    /// write-back) but never block the pipeline or consume demand MSHRs.
    pub fn store(&mut self, thread: ThreadId, addr: u64, pc: u64, now: Cycle) {
        self.stats.stores += 1;
        self.train_prefetcher(thread, pc, addr, now);
        let hit = self.l1d.access(thread, addr);
        if !hit {
            // Fill path updates the thread's LLC partition contents.
            let _ = self.beyond_l1_latency(thread, addr >> 6);
        }
    }

    fn train_prefetcher(&mut self, thread: ThreadId, pc: u64, addr: u64, now: Cycle) {
        if self.cfg.prefetcher_pc_slots == 0 {
            return;
        }
        if let Some(pf_addr) = self.prefetcher.observe(thread, pc, addr) {
            let block = pf_addr >> 6;
            let queue = &mut self.pending_prefetch[thread.index()];
            if queue.len() >= self.cfg.prefetch_queue_depth {
                return;
            }
            if self.l1d.probe_block(thread, block) || queue.iter().any(|p| p.block == block) {
                return;
            }
            let latency = if self.llc[thread.index()].probe_block(block) {
                self.cfg.llc_latency
            } else {
                self.cfg.mem_latency
            };
            queue.push(PendingPrefetch { block, completion: now + latency });
            self.next_event = self.next_event.min(now + latency);
        }
    }

    /// Advances time to `now`: completes outstanding demand misses (filling
    /// the L1-D) and lands prefetch fills.
    pub fn tick(&mut self, now: Cycle) {
        // Quiescence skip: nothing in flight can fill before the watermark,
        // so the tick is a no-op (bit-exact — a full scan would find nothing).
        if now < self.next_event {
            return;
        }
        let mut fills = std::mem::take(&mut self.scratch_fills);
        let mut landed = std::mem::take(&mut self.scratch_landed);
        let mut next_event = Cycle::MAX;
        for thread in ThreadId::first_n(self.cfg.threads) {
            fills.clear();
            self.mshrs.drain_completed_into(thread, now, &mut fills);
            for &block in &fills {
                self.l1d.fill_block(thread, block);
            }
            let idx = thread.index();
            landed.clear();
            self.pending_prefetch[idx].retain(|p| {
                if p.completion <= now {
                    landed.push(p.block);
                    false
                } else {
                    true
                }
            });
            for &block in &landed {
                self.stats.prefetch_fills += 1;
                self.l1d.fill_block(thread, block);
                self.llc[idx].fill_block(block);
            }
            if let Some(c) = self.mshrs.next_completion(thread) {
                next_event = next_event.min(c);
            }
            for p in &self.pending_prefetch[idx] {
                next_event = next_event.min(p.completion);
            }
        }
        self.next_event = next_event;
        self.scratch_fills = fills;
        self.scratch_landed = landed;
    }

    /// Number of outstanding demand misses for `thread` (instantaneous MLP).
    pub fn outstanding_misses(&self, thread: ThreadId) -> usize {
        self.mshrs.outstanding(thread)
    }

    /// Clears per-thread outstanding state on a pipeline flush.
    pub fn flush_thread(&mut self, thread: ThreadId) {
        self.mshrs.clear_thread(thread);
        self.pending_prefetch[thread.index()].clear();
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Resets statistics (e.g. after warm-up) while keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        for c in &mut self.llc {
            c.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hierarchy(l1d_sharing: Sharing) -> MemoryHierarchy {
        let core = CoreConfig::default();
        let mut cfg = HierarchyConfig::from_core(&core);
        cfg.l1d_sharing = l1d_sharing;
        // Shrink the caches so tests exercise misses quickly.
        cfg.l1d =
            CacheConfig { capacity_bytes: 1024, line_bytes: 64, ways: 2, banks: 1, hit_latency: 2 };
        cfg.l1i = cfg.l1d;
        cfg.llc_capacity_bytes = 16 * 1024;
        MemoryHierarchy::new(cfg)
    }

    #[test]
    fn load_hit_after_fill() {
        let mut mem = small_hierarchy(Sharing::Shared);
        let r = mem.load(ThreadId::T0, 0x1_0000, 0x400, 0);
        let completion = match r {
            LoadResult::Miss { completion } => completion,
            other => panic!("expected a miss on a cold cache, got {other:?}"),
        };
        assert!(completion > 0);
        mem.tick(completion);
        match mem.load(ThreadId::T0, 0x1_0000, 0x400, completion + 1) {
            LoadResult::Hit { latency } => assert_eq!(latency, 2),
            other => panic!("expected a hit after the fill, got {other:?}"),
        }
    }

    #[test]
    fn mshr_limit_rejects_excess_misses() {
        let mut mem = small_hierarchy(Sharing::Shared);
        let per_thread = mem.config().mshrs_per_thread;
        let mut rejections = 0;
        for i in 0..(per_thread + 3) as u64 {
            match mem.load(ThreadId::T0, 0x10_0000 + i * 4096, 0x400 + i * 4, 0) {
                LoadResult::NoMshr => rejections += 1,
                LoadResult::Miss { .. } => {}
                LoadResult::Hit { .. } => panic!("cold cache cannot hit"),
            }
        }
        assert_eq!(rejections, 3);
        assert_eq!(mem.outstanding_misses(ThreadId::T0), per_thread);
        // The other thread still has its own MSHRs.
        assert!(matches!(mem.load(ThreadId::T1, 0x20_0000, 0x500, 0), LoadResult::Miss { .. }));
    }

    #[test]
    fn coalesced_loads_share_a_completion() {
        let mut mem = small_hierarchy(Sharing::Shared);
        let a = mem.load(ThreadId::T0, 0x4_0000, 0x100, 0);
        let b = mem.load(ThreadId::T0, 0x4_0008, 0x104, 1);
        let (LoadResult::Miss { completion: ca }, LoadResult::Miss { completion: cb }) = (a, b)
        else {
            panic!("both accesses should miss");
        };
        assert_eq!(ca, cb, "same-block misses must coalesce");
        assert_eq!(mem.outstanding_misses(ThreadId::T0), 1);
    }

    #[test]
    fn llc_hit_is_faster_than_memory() {
        let mut mem = small_hierarchy(Sharing::Shared);
        // First access goes to memory and fills LLC + L1D.
        let LoadResult::Miss { completion: c1 } = mem.load(ThreadId::T0, 0x8_0000, 0x200, 0) else {
            panic!("cold miss expected");
        };
        mem.tick(c1);
        // Evict it from the tiny L1-D by touching conflicting blocks, then
        // re-access: it should now hit in the LLC partition (shorter latency).
        for i in 1..5u64 {
            mem.store(ThreadId::T0, 0x8_0000 + i * 512, 0x300, c1 + i);
        }
        let now = c1 + 100;
        let LoadResult::Miss { completion: c2 } = mem.load(ThreadId::T0, 0x8_0000, 0x200, now)
        else {
            panic!("expected an L1 miss after eviction");
        };
        let llc_lat = mem.config().llc_latency + mem.config().l1_hit_latency;
        assert_eq!(c2 - now, llc_lat, "second access should be an LLC hit");
        assert!(c1 > llc_lat, "first access should have paid the memory latency");
    }

    #[test]
    fn shared_l1d_lets_threads_interfere_private_does_not() {
        // Thread 1 streams over a large working set; thread 0 repeatedly
        // touches one block. Under a shared L1-D the streaming evicts thread
        // 0's block; under private L1-Ds it cannot.
        let run = |sharing: Sharing| -> u64 {
            let mut mem = small_hierarchy(sharing);
            let mut t0_misses = 0;
            let mut now = 0;
            // Prime thread 0's block.
            let _ = mem.load(ThreadId::T0, 0x1000, 0x40, now);
            mem.tick(now + 500);
            now += 500;
            for round in 0..50u64 {
                for i in 0..32u64 {
                    mem.store(ThreadId::T1, 0x100_0000 + (round * 32 + i) * 64, 0x80, now);
                    now += 1;
                }
                match mem.load(ThreadId::T0, 0x1000, 0x40, now) {
                    LoadResult::Hit { .. } => {}
                    _ => t0_misses += 1,
                }
                mem.tick(now + 500);
                now += 500;
            }
            t0_misses
        };
        let shared_misses = run(Sharing::Shared);
        let private_misses = run(Sharing::PrivatePerThread);
        assert!(
            shared_misses > private_misses,
            "shared L1-D should cause more misses for the victim thread \
             (shared={shared_misses}, private={private_misses})"
        );
        assert_eq!(private_misses, 0);
    }

    #[test]
    fn prefetcher_fills_ahead_of_stride_stream() {
        let mut mem = small_hierarchy(Sharing::Shared);
        let mut now = 0;
        // Walk a stride-1-block stream; after the stride locks on, later
        // accesses should increasingly hit thanks to prefetch fills.
        let mut late_hits = 0;
        for i in 0..40u64 {
            let addr = 0x50_0000 + i * 64;
            match mem.load(ThreadId::T0, addr, 0x900, now) {
                LoadResult::Hit { .. } => {
                    if i > 10 {
                        late_hits += 1;
                    }
                }
                LoadResult::Miss { completion } => now = completion,
                LoadResult::NoMshr => {}
            }
            now += 1;
            mem.tick(now);
        }
        assert!(
            late_hits > 5,
            "stride prefetcher should convert later accesses to hits (got {late_hits})"
        );
        assert!(mem.stats().prefetch_fills > 0);
    }

    #[test]
    fn fetch_miss_pays_llc_or_memory_latency() {
        let mut mem = small_hierarchy(Sharing::Shared);
        let cold = mem.fetch(ThreadId::T0, 0x7777_0000, 0);
        let warm = mem.fetch(ThreadId::T0, 0x7777_0000, 1);
        assert!(cold > warm);
        assert_eq!(warm, mem.config().l1_hit_latency);
        assert_eq!(mem.stats().l1i_misses, 1);
    }

    #[test]
    fn flush_clears_outstanding_state() {
        let mut mem = small_hierarchy(Sharing::Shared);
        let _ = mem.load(ThreadId::T0, 0x9_0000, 0x100, 0);
        assert_eq!(mem.outstanding_misses(ThreadId::T0), 1);
        mem.flush_thread(ThreadId::T0);
        assert_eq!(mem.outstanding_misses(ThreadId::T0), 0);
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut mem = small_hierarchy(Sharing::Shared);
        let LoadResult::Miss { completion } = mem.load(ThreadId::T0, 0x3_0000, 0x10, 0) else {
            panic!("cold miss expected");
        };
        mem.tick(completion);
        mem.reset_stats();
        assert_eq!(mem.stats().loads, 0);
        // Content retained: the block still hits.
        assert!(matches!(
            mem.load(ThreadId::T0, 0x3_0000, 0x10, completion + 1),
            LoadResult::Hit { .. }
        ));
    }
}
