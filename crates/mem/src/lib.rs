//! Memory hierarchy model for the Stretch (HPCA'19) reproduction.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! The hierarchy matches Table II of the paper:
//!
//! * split 64 KB, 8-way, 2-bank L1 instruction and data caches with LRU
//!   replacement;
//! * 10 data MSHRs, statically split 5 per hardware thread;
//! * a stride prefetcher tracking up to 32 load/store PCs;
//! * an 8 MB, 16-way NUCA LLC reached over a mesh (28-cycle average access),
//!   way-partitioned between the two threads to mirror the paper's use of
//!   cache partitioning for LLC isolation;
//! * 75 ns main memory.
//!
//! The L1 caches (and, in the core crate, the branch predictor) can be
//! configured as *shared* between the two SMT threads or *private per thread*
//! — the latter is used by the per-resource contention study (Figures 4/5)
//! and by the "ideal software scheduling" baseline (Figure 13).
//!
//! # Example
//!
//! ```
//! use mem_sim::{MemoryHierarchy, HierarchyConfig, LoadResult};
//! use sim_model::{CoreConfig, ThreadId};
//!
//! let cfg = CoreConfig::default();
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::from_core(&cfg));
//! match mem.load(ThreadId::T0, 0x1000, 0x400, 0) {
//!     LoadResult::Hit { .. } | LoadResult::Miss { .. } | LoadResult::NoMshr => {}
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;

pub use cache::{CacheStats, SetAssocCache, Sharing};
pub use hierarchy::{HierarchyConfig, HierarchyStats, LoadResult, MemoryHierarchy};
pub use mshr::MshrFile;
pub use prefetch::StridePrefetcher;
