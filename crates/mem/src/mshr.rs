//! Miss status holding registers (MSHRs).
//!
//! The modelled L1-D has 10 MSHRs, statically split 5 per hardware thread
//! (Table II). MSHRs bound the number of outstanding demand misses a thread
//! can have in flight and therefore bound its memory-level parallelism — the
//! property Figure 7 measures.

use serde::{Deserialize, Serialize};
use sim_model::{Cycle, ThreadId};

/// One outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    block: u64,
    completion: Cycle,
}

/// A per-thread file of miss status holding registers.
///
/// Requests to a block that is already outstanding for the same thread are
/// coalesced onto the existing entry (they complete at the same time and do
/// not consume an additional register), mirroring real hardware behaviour and
/// the paper's note that accesses to the same cache block are coalesced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MshrFile {
    per_thread_capacity: usize,
    entries: Vec<Vec<Entry>>,
    /// Peak simultaneous occupancy observed per thread (for reporting).
    peak: Vec<usize>,
}

/// Result of attempting to allocate an MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the miss completes at the given cycle.
    Allocated(Cycle),
    /// The block was already outstanding; the request coalesces and completes
    /// at the given cycle.
    Coalesced(Cycle),
    /// No register available; the requester must retry later.
    Full,
}

impl MshrFile {
    /// Creates a file with `per_thread_capacity` registers for each of the
    /// classic pair's two hardware threads.
    pub fn new(per_thread_capacity: usize) -> MshrFile {
        MshrFile::with_threads(per_thread_capacity, 2)
    }

    /// Creates a file with `per_thread_capacity` registers for each of
    /// `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(per_thread_capacity: usize, threads: usize) -> MshrFile {
        assert!(threads >= 1, "an MSHR file needs at least one thread");
        MshrFile { per_thread_capacity, entries: vec![Vec::new(); threads], peak: vec![0; threads] }
    }

    /// Attempts to track a miss for `block` completing at `completion`.
    pub fn request(&mut self, thread: ThreadId, block: u64, completion: Cycle) -> MshrOutcome {
        let list = &mut self.entries[thread.index()];
        if let Some(e) = list.iter().find(|e| e.block == block) {
            return MshrOutcome::Coalesced(e.completion);
        }
        if list.len() >= self.per_thread_capacity {
            return MshrOutcome::Full;
        }
        list.push(Entry { block, completion });
        self.peak[thread.index()] = self.peak[thread.index()].max(list.len());
        MshrOutcome::Allocated(completion)
    }

    /// Checks whether `block` is already outstanding for `thread`, returning
    /// its completion cycle.
    pub fn lookup(&self, thread: ThreadId, block: u64) -> Option<Cycle> {
        self.entries[thread.index()].iter().find(|e| e.block == block).map(|e| e.completion)
    }

    /// Releases every entry whose completion time is at or before `now`.
    /// Returns the blocks that completed (so the caller can fill caches).
    ///
    /// Allocates a fresh vector per call; the per-cycle hierarchy tick uses
    /// [`MshrFile::drain_completed_into`] with a reused buffer instead.
    pub fn drain_completed(&mut self, thread: ThreadId, now: Cycle) -> Vec<u64> {
        let mut done = Vec::new();
        self.drain_completed_into(thread, now, &mut done);
        done
    }

    /// As [`MshrFile::drain_completed`], but appends the completed blocks to
    /// a caller-provided buffer so the every-cycle drain never allocates.
    pub fn drain_completed_into(&mut self, thread: ThreadId, now: Cycle, done: &mut Vec<u64>) {
        let list = &mut self.entries[thread.index()];
        list.retain(|e| {
            if e.completion <= now {
                done.push(e.block);
                false
            } else {
                true
            }
        });
    }

    /// Current number of outstanding misses for `thread` — the instantaneous
    /// MLP used by the Figure 7 census.
    pub fn outstanding(&self, thread: ThreadId) -> usize {
        self.entries[thread.index()].len()
    }

    /// Earliest completion cycle among `thread`'s outstanding misses, if any —
    /// the hierarchy's next-interesting-cycle watermark source, which lets the
    /// per-cycle tick skip entirely while every MSHR file is quiescent.
    pub fn next_completion(&self, thread: ThreadId) -> Option<Cycle> {
        self.entries[thread.index()].iter().map(|e| e.completion).min()
    }

    /// Peak simultaneous occupancy seen for `thread`.
    pub fn peak(&self, thread: ThreadId) -> usize {
        self.peak[thread.index()]
    }

    /// Per-thread capacity.
    pub fn capacity(&self) -> usize {
        self.per_thread_capacity
    }

    /// Removes all outstanding entries (used on pipeline flushes that squash
    /// speculative loads; conservative but simple).
    pub fn clear_thread(&mut self, thread: ThreadId) {
        self.entries[thread.index()].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_until_full() {
        let mut m = MshrFile::new(2);
        assert!(matches!(m.request(ThreadId::T0, 1, 100), MshrOutcome::Allocated(100)));
        assert!(matches!(m.request(ThreadId::T0, 2, 120), MshrOutcome::Allocated(120)));
        assert!(matches!(m.request(ThreadId::T0, 3, 130), MshrOutcome::Full));
        // The other thread has its own registers.
        assert!(matches!(m.request(ThreadId::T1, 3, 130), MshrOutcome::Allocated(130)));
    }

    #[test]
    fn coalescing_same_block() {
        let mut m = MshrFile::new(1);
        assert!(matches!(m.request(ThreadId::T0, 7, 50), MshrOutcome::Allocated(50)));
        assert!(matches!(m.request(ThreadId::T0, 7, 90), MshrOutcome::Coalesced(50)));
        assert_eq!(m.outstanding(ThreadId::T0), 1);
    }

    #[test]
    fn drain_releases_entries_at_completion() {
        let mut m = MshrFile::new(4);
        m.request(ThreadId::T0, 1, 10);
        m.request(ThreadId::T0, 2, 20);
        let done = m.drain_completed(ThreadId::T0, 10);
        assert_eq!(done, vec![1]);
        assert_eq!(m.outstanding(ThreadId::T0), 1);
        let done = m.drain_completed(ThreadId::T0, 25);
        assert_eq!(done, vec![2]);
        assert_eq!(m.outstanding(ThreadId::T0), 0);
    }

    #[test]
    fn peak_tracks_maximum_occupancy() {
        let mut m = MshrFile::new(3);
        m.request(ThreadId::T0, 1, 10);
        m.request(ThreadId::T0, 2, 10);
        m.drain_completed(ThreadId::T0, 10);
        m.request(ThreadId::T0, 3, 20);
        assert_eq!(m.peak(ThreadId::T0), 2);
        assert_eq!(m.peak(ThreadId::T1), 0);
    }

    #[test]
    fn lookup_and_clear() {
        let mut m = MshrFile::new(2);
        m.request(ThreadId::T1, 9, 33);
        assert_eq!(m.lookup(ThreadId::T1, 9), Some(33));
        assert_eq!(m.lookup(ThreadId::T0, 9), None);
        m.clear_thread(ThreadId::T1);
        assert_eq!(m.outstanding(ThreadId::T1), 0);
    }
}
