//! Stride prefetcher.
//!
//! Table II specifies "stride prefetcher tracking up to 32 load/store PCs".
//! The implementation is a classic reference-prediction table: each entry
//! remembers the last address and the last stride observed for one PC; after
//! two consecutive accesses with the same non-zero stride the entry enters a
//! steady state and issues a prefetch for the next predicted block.

use serde::{Deserialize, Serialize};
use sim_model::ThreadId;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum EntryState {
    Initial,
    Transient,
    Steady,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    state: EntryState,
    lru: u64,
}

/// A per-thread stride prefetcher (reference prediction table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StridePrefetcher {
    slots: usize,
    tables: Vec<Vec<Entry>>,
    clock: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `slots` PC-tracking entries per thread, for
    /// the classic dual-threaded core.
    pub fn new(slots: usize) -> StridePrefetcher {
        StridePrefetcher::with_threads(slots, 2)
    }

    /// Creates a prefetcher with `slots` PC-tracking entries for each of
    /// `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(slots: usize, threads: usize) -> StridePrefetcher {
        assert!(threads >= 1, "a prefetcher needs at least one thread");
        StridePrefetcher { slots, tables: vec![Vec::new(); threads], clock: 0, issued: 0 }
    }

    /// Observes a demand access by `pc` to byte address `addr` and returns the
    /// byte address to prefetch, if the stride pattern is established.
    pub fn observe(&mut self, thread: ThreadId, pc: u64, addr: u64) -> Option<u64> {
        if self.slots == 0 {
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        let slots = self.slots;
        let table = &mut self.tables[thread.index()];

        if let Some(entry) = table.iter_mut().find(|e| e.pc == pc) {
            let new_stride = addr as i64 - entry.last_addr as i64;
            entry.lru = clock;
            let prediction = match entry.state {
                EntryState::Initial => {
                    entry.state = EntryState::Transient;
                    None
                }
                EntryState::Transient | EntryState::Steady => {
                    if new_stride == entry.stride && new_stride != 0 {
                        entry.state = EntryState::Steady;
                        Some((addr as i64 + new_stride) as u64)
                    } else {
                        entry.state = EntryState::Transient;
                        None
                    }
                }
            };
            entry.stride = new_stride;
            entry.last_addr = addr;
            if prediction.is_some() {
                self.issued += 1;
            }
            return prediction;
        }

        // Allocate a new entry, evicting LRU if the table is full.
        if table.len() >= slots {
            if let Some(pos) = table.iter().enumerate().min_by_key(|(_, e)| e.lru).map(|(i, _)| i) {
                table.swap_remove(pos);
            }
        }
        table.push(Entry {
            pc,
            last_addr: addr,
            stride: 0,
            state: EntryState::Initial,
            lru: clock,
        });
        None
    }

    /// Number of prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of PC slots per thread.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stride_predicts_next_address() {
        let mut p = StridePrefetcher::new(8);
        let pc = 0x400;
        assert_eq!(p.observe(ThreadId::T0, pc, 0x1000), None); // allocate
        assert_eq!(p.observe(ThreadId::T0, pc, 0x1040), None); // learn stride
        assert_eq!(p.observe(ThreadId::T0, pc, 0x1080), Some(0x10C0));
        assert_eq!(p.observe(ThreadId::T0, pc, 0x10C0), Some(0x1100));
        assert!(p.issued() >= 2);
    }

    #[test]
    fn irregular_pattern_predicts_nothing() {
        let mut p = StridePrefetcher::new(8);
        let pc = 0x400;
        let addrs = [0x1000u64, 0x9000, 0x2000, 0x7000, 0x3000];
        let mut predictions = 0;
        for a in addrs {
            if p.observe(ThreadId::T1, pc, a).is_some() {
                predictions += 1;
            }
        }
        assert_eq!(predictions, 0);
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = StridePrefetcher::new(4);
        for _ in 0..5 {
            assert_eq!(p.observe(ThreadId::T0, 0x10, 0x5000), None);
        }
    }

    #[test]
    fn table_capacity_is_bounded() {
        let mut p = StridePrefetcher::new(2);
        for i in 0..10u64 {
            p.observe(ThreadId::T0, 0x100 + i * 4, 0x1000 + i * 64);
        }
        assert!(p.tables[0].len() <= 2);
    }

    #[test]
    fn threads_have_independent_tables() {
        let mut p = StridePrefetcher::new(4);
        p.observe(ThreadId::T0, 0x400, 0x1000);
        p.observe(ThreadId::T0, 0x400, 0x1040);
        // T1 with the same PC has no history; no prediction on its second access.
        p.observe(ThreadId::T1, 0x400, 0x2000);
        assert_eq!(p.observe(ThreadId::T1, 0x400, 0x2040), None);
        // T0 continues its streak.
        assert_eq!(p.observe(ThreadId::T0, 0x400, 0x1080), Some(0x10C0));
    }

    #[test]
    fn disabled_prefetcher_with_zero_slots() {
        let mut p = StridePrefetcher::new(0);
        for i in 0..4 {
            assert_eq!(p.observe(ThreadId::T0, 0x1, 0x1000 + i * 64), None);
        }
    }
}
