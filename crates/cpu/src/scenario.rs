//! The [`Scenario`] builder: the single entry point for running workloads on
//! the simulated SMT core under a [`ColocationPolicy`].
//!
//! A scenario names *what* runs (one workload stand-alone, or a
//! latency-sensitive / batch pair), *how* the core is shared (the policy) and
//! *how long / how seeded* the run is. It replaces the old
//! `run_setup` / `run_pair` / `run_standalone` / `run_standalone_with_rob`
//! free functions, which duplicated trace spawning and seed derivation at
//! every call site:
//!
//! ```
//! use cpu_sim::{EqualPartition, Scenario, SimLength};
//! use workloads::profile_by_name;
//!
//! let ls = profile_by_name("web-search").expect("web-search is a built-in profile");
//! let batch = profile_by_name("zeusmp").expect("zeusmp is a built-in profile");
//! let result = Scenario::colocate(ls, batch)
//!     .policy(EqualPartition)
//!     .length(SimLength::quick())
//!     .seed(42)
//!     .run();
//! assert!(result.uipc(sim_model::ThreadId::T0).expect("thread 0 ran") > 0.0);
//! ```
//!
//! Workloads are given either as [`TraceSource`]s (the normal case: the
//! scenario derives each thread's seed with [`pair_seed`], so the same
//! pairing sees the same instruction streams under every policy — the paired
//! comparisons every figure relies on) or as pre-spawned traces
//! ([`Scenario::colocate_traces`]) when the caller wants full control.

use crate::core::SmtCoreBuilder;
use crate::policy::{ColocationPolicy, ColocationTopology, EqualPartition, PrivateCore};
use crate::runner::{run_core, ColocationResult, SimLength, ThreadRunResult};
use sim_model::{BoxedTrace, CoreConfig, ThreadId, TraceSource};

/// The seed-stream label used for stand-alone runs (no co-runner name to mix
/// into [`pair_seed`]).
const STANDALONE_LABEL: &str = "standalone";

/// Derives a per-colocation seed from the full slot-ordered name list, so the
/// same workload grouping always sees the same instruction streams across
/// policies (paired comparisons).
///
/// Each name is length-prefixed before it enters the FNV loop, so distinct
/// groupings can never alias onto the same byte stream (a bare concatenation
/// would collide for e.g. `("ab", "c")` and `("a", "bc")`, silently sharing
/// instruction streams between different experiments). For exactly two names
/// this is byte-for-byte [`pair_seed`].
pub fn colocation_seed<S: AsRef<str>>(base: u64, names: &[S]) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for name in names {
        let name = name.as_ref();
        for b in (name.len() as u64).to_le_bytes() {
            mix(b);
        }
        for b in name.bytes() {
            mix(b);
        }
    }
    h
}

/// Derives a per-pairing seed for the classic LS/batch pair — the two-name
/// case of [`colocation_seed`].
pub fn pair_seed(base: u64, ls: &str, batch_name: &str) -> u64 {
    colocation_seed(base, &[ls, batch_name])
}

/// One thread's workload: a spawnable source (seeded by the scenario) or a
/// pre-spawned trace (used as-is).
enum Workload {
    Source(Box<dyn TraceSource + Send + Sync>),
    Trace(BoxedTrace),
}

impl Workload {
    fn name(&self) -> String {
        match self {
            Workload::Source(s) => s.source_name().to_string(),
            Workload::Trace(t) => t.name().to_string(),
        }
    }

    fn into_trace(self, seed: u64) -> BoxedTrace {
        match self {
            Workload::Source(s) => s.spawn_trace(seed),
            Workload::Trace(t) => t,
        }
    }
}

/// A declarative simulation run. See the [module docs](self).
pub struct Scenario {
    cfg: CoreConfig,
    policy: Box<dyn ColocationPolicy>,
    length: SimLength,
    seed: u64,
    threads: Vec<Option<Workload>>,
}

impl Scenario {
    fn new(threads: Vec<Option<Workload>>, policy: Box<dyn ColocationPolicy>) -> Scenario {
        Scenario {
            cfg: CoreConfig::default(),
            policy,
            length: SimLength::standard(),
            seed: 42,
            threads,
        }
    }

    /// A colocation: the latency-sensitive workload on thread 0, the batch
    /// workload on thread 1. Defaults to the [`EqualPartition`] baseline
    /// policy, the standard simulation length and base seed 42.
    ///
    /// This is the classic T = 2 case of [`Scenario::colocate_n`].
    pub fn colocate(
        ls: impl TraceSource + Send + Sync + 'static,
        batch: impl TraceSource + Send + Sync + 'static,
    ) -> Scenario {
        Scenario::colocate_n(ls, vec![Box::new(batch)])
    }

    /// A colocation on an SMT core with `1 + batches.len()` hardware threads:
    /// the latency-sensitive workload on thread 0 and the batch workloads on
    /// threads 1..T, in order. Defaults to the [`EqualPartition`] baseline
    /// policy, the standard simulation length and base seed 42.
    ///
    /// # Examples
    ///
    /// Web Search and two batch workloads on an SMT-3 core:
    ///
    /// ```
    /// use cpu_sim::{Scenario, SimLength};
    /// use sim_model::{ThreadId, TraceSource};
    /// use workloads::profile_by_name;
    ///
    /// let ls = profile_by_name("web-search").expect("built-in profile");
    /// let batches: Vec<Box<dyn TraceSource + Send + Sync>> = vec![
    ///     Box::new(profile_by_name("zeusmp").expect("built-in profile")),
    ///     Box::new(profile_by_name("gcc").expect("built-in profile")),
    /// ];
    /// let result = Scenario::colocate_n(ls, batches).length(SimLength::quick()).run();
    /// for t in ThreadId::first_n(3) {
    ///     assert!(result.uipc(t).expect("all three threads ran") > 0.0);
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `batches` is empty (use [`Scenario::standalone`] for a
    /// single workload).
    pub fn colocate_n(
        ls: impl TraceSource + Send + Sync + 'static,
        batches: Vec<Box<dyn TraceSource + Send + Sync>>,
    ) -> Scenario {
        assert!(!batches.is_empty(), "a colocation needs at least one batch workload");
        let mut threads: Vec<Option<Workload>> = Vec::with_capacity(1 + batches.len());
        threads.push(Some(Workload::Source(Box::new(ls))));
        threads.extend(batches.into_iter().map(|b| Some(Workload::Source(b))));
        Scenario::new(threads, Box::new(EqualPartition))
    }

    /// A colocation over pre-spawned traces. The scenario's
    /// [`seed`](Scenario::seed) is *not* applied to the traces (they carry
    /// their own); use this when the caller manages seeding itself.
    pub fn colocate_traces(ls: BoxedTrace, batch: BoxedTrace) -> Scenario {
        Scenario::new(
            vec![Some(Workload::Trace(ls)), Some(Workload::Trace(batch))],
            Box::new(EqualPartition),
        )
    }

    /// A stand-alone run on a fully private core (the paper's "stand-alone
    /// execution on a full core" reference point). The default policy is
    /// [`PrivateCore::full`]; cap the window with
    /// `.policy(PrivateCore::with_rob(n))` for the Figure 6 sweep.
    pub fn standalone(workload: impl TraceSource + Send + Sync + 'static) -> Scenario {
        Scenario::new(
            vec![Some(Workload::Source(Box::new(workload))), None],
            Box::new(PrivateCore::full()),
        )
    }

    /// A stand-alone run over a pre-spawned trace (seed not applied).
    pub fn standalone_trace(trace: BoxedTrace) -> Scenario {
        Scenario::new(vec![Some(Workload::Trace(trace)), None], Box::new(PrivateCore::full()))
    }

    /// A scenario over explicit per-slot workload sources (`None` marks an
    /// idle hardware thread). Used by the server-level allocation layer to
    /// realise one core of a [`crate::allocation::Placement`]; defaults to
    /// the [`EqualPartition`] policy.
    pub(crate) fn from_slots(slots: Vec<Option<Box<dyn TraceSource + Send + Sync>>>) -> Scenario {
        let threads = slots.into_iter().map(|s| s.map(Workload::Source)).collect();
        Scenario::new(threads, Box::new(EqualPartition))
    }

    /// Sets the core configuration (default: Table II).
    pub fn config(mut self, cfg: CoreConfig) -> Scenario {
        self.cfg = cfg;
        self
    }

    /// Sets the colocation policy.
    pub fn policy(mut self, policy: impl ColocationPolicy + 'static) -> Scenario {
        self.policy = Box::new(policy);
        self
    }

    /// Sets an already-boxed policy (for callers holding `dyn` policies,
    /// e.g. the experiment engine).
    pub fn boxed_policy(mut self, policy: Box<dyn ColocationPolicy>) -> Scenario {
        self.policy = policy;
        self
    }

    /// Sets the simulation length.
    pub fn length(mut self, length: SimLength) -> Scenario {
        self.length = length;
        self
    }

    /// Sets the base seed. Each sourced thread derives its own stream from it
    /// via [`pair_seed`] over the workload names, so the same pairing sees
    /// identical instruction streams under every policy.
    pub fn seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Runs the scenario to completion of its measurement windows.
    ///
    /// # Panics
    ///
    /// Panics if no thread has a workload, or if both threads have one under
    /// a policy whose [`ColocationPolicy::supports_colocation`] is `false`
    /// (e.g. Elfen, whose time-sharing happens above the core model).
    pub fn run(self) -> ColocationResult {
        let Scenario { cfg, policy, length, seed, threads } = self;
        let width = threads.len();
        let names: Vec<Option<String>> =
            threads.iter().map(|w| w.as_ref().map(Workload::name)).collect();
        // Seed derivation matches the historical harness exactly: colocations
        // mix all slot-ordered names (each thread's stream then gets its index
        // XORed in, so no two threads share a stream); stand-alone runs mix
        // the workload name against a fixed label.
        let active_names: Vec<&String> = names.iter().flatten().collect();
        let (base, colocated) = match active_names.as_slice() {
            [] => panic!("a scenario needs at least one workload"),
            [only] => (pair_seed(seed, only, STANDALONE_LABEL), false),
            many => (colocation_seed(seed, many), true),
        };
        assert!(
            !colocated || policy.supports_colocation(),
            "policy '{}' does not model colocation on the core (its sharing happens above \
             the cycle model); run it through Scenario::standalone instead",
            policy.name()
        );
        let topology = ColocationTopology::new(width, ThreadId::T0);
        let setup = policy.setup_for(&cfg, &topology);
        let mut builder = setup.apply(SmtCoreBuilder::new(cfg)).smt_width(width);
        for (idx, workload) in threads.into_iter().enumerate() {
            let Some(w) = workload else { continue };
            // In a colocation each thread's stream gets its index XORed into
            // the base (on the pair: the batch stream flips the low bit) so
            // no two threads share a stream; a lone workload is a stand-alone
            // run and must see the same reference stream on every thread.
            let thread_seed = if colocated { base ^ idx as u64 } else { base };
            builder = builder.thread(ThreadId::from_index(idx), w.into_trace(thread_seed));
        }
        let mut core = builder.build();
        run_core(&mut core, names, length)
    }

    /// Runs a stand-alone scenario and returns thread 0's result directly.
    ///
    /// # Panics
    ///
    /// Panics if thread 0 has no workload.
    pub fn run_thread0(self) -> ThreadRunResult {
        let mut result = self.run();
        result.threads[0].take().expect("thread 0 was active")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EqualPartition, PrivateCore};
    use sim_model::uop::OpKind;
    use sim_model::{MicroOp, TraceGenerator, WorkloadClass};

    struct AluLoop {
        pc: u64,
    }

    impl TraceGenerator for AluLoop {
        fn next_op(&mut self) -> MicroOp {
            self.pc = 0x1000 + (self.pc + 4 - 0x1000) % 512;
            MicroOp::alu(self.pc, OpKind::IntAlu, [None, None], Some(1))
        }
        fn name(&self) -> &str {
            "alu-loop"
        }
        fn class(&self) -> WorkloadClass {
            WorkloadClass::Batch
        }
        fn reset(&mut self) {
            self.pc = 0x1000;
        }
    }

    struct AluSource;

    impl TraceSource for AluSource {
        fn source_name(&self) -> &str {
            "alu-loop"
        }
        fn spawn_trace(&self, _seed: u64) -> BoxedTrace {
            Box::new(AluLoop { pc: 0x1000 })
        }
    }

    #[test]
    fn standalone_scenario_produces_sane_uipc() {
        let cfg = CoreConfig::default();
        let r = Scenario::standalone(AluSource).length(SimLength::quick()).run_thread0();
        assert!(r.uipc > 1.0 && r.uipc <= cfg.commit_width as f64, "uipc {:.2}", r.uipc);
        assert_eq!(r.committed, SimLength::quick().measured_instructions);
        assert_eq!(r.name, "alu-loop");
    }

    #[test]
    fn colocated_scenario_reports_both_threads() {
        let r = Scenario::colocate(AluSource, AluSource)
            .policy(EqualPartition)
            .length(SimLength::quick())
            .run();
        assert!(r.thread(ThreadId::T0).is_some());
        assert!(r.thread(ThreadId::T1).is_some());
        assert!(r.uipc(ThreadId::T0).expect("thread 0 ran") > 0.5);
        assert!(r.uipc(ThreadId::T1).expect("thread 1 ran") > 0.5);
    }

    #[test]
    fn trace_and_source_scenarios_agree_for_seed_blind_workloads() {
        // AluSource ignores its seed, so the sourced and pre-spawned paths
        // must produce identical runs.
        let sourced = Scenario::colocate(AluSource, AluSource).length(SimLength::quick()).run();
        let traced = Scenario::colocate_traces(
            Box::new(AluLoop { pc: 0x1000 }),
            Box::new(AluLoop { pc: 0x1000 }),
        )
        .length(SimLength::quick())
        .run();
        let bits = |r: &ColocationResult, t| r.uipc(t).expect("thread ran").to_bits();
        assert_eq!(bits(&sourced, ThreadId::T0), bits(&traced, ThreadId::T0));
        assert_eq!(bits(&sourced, ThreadId::T1), bits(&traced, ThreadId::T1));
    }

    #[test]
    fn rob_capped_private_core_is_a_policy_choice() {
        let small = Scenario::standalone(AluSource)
            .policy(PrivateCore::with_rob(16))
            .length(SimLength::quick())
            .run_thread0();
        let large = Scenario::standalone(AluSource)
            .policy(PrivateCore::with_rob(192))
            .length(SimLength::quick())
            .run_thread0();
        // An ALU loop is not ROB sensitive; both should be close.
        let ratio = large.uipc / small.uipc;
        assert!(ratio < 1.5, "ALU loop should be ROB-insensitive (ratio {ratio:.2})");
    }

    #[test]
    fn colocation_seed_on_two_names_is_pair_seed() {
        assert_eq!(
            colocation_seed(42, &["web-search", "zeusmp"]),
            pair_seed(42, "web-search", "zeusmp")
        );
        // A longer name list derives a distinct stream family.
        assert_ne!(
            colocation_seed(42, &["web-search", "zeusmp", "milc"]),
            pair_seed(42, "web-search", "zeusmp")
        );
    }

    #[test]
    fn colocate_n_with_one_batch_equals_the_pair_api() {
        let bits = |r: &ColocationResult, t| r.uipc(t).expect("thread ran").to_bits();
        let pair = Scenario::colocate(AluSource, AluSource).length(SimLength::quick()).run();
        let n = Scenario::colocate_n(AluSource, vec![Box::new(AluSource)])
            .length(SimLength::quick())
            .run();
        assert_eq!(bits(&pair, ThreadId::T0), bits(&n, ThreadId::T0));
        assert_eq!(bits(&pair, ThreadId::T1), bits(&n, ThreadId::T1));
    }

    #[test]
    fn smt4_colocation_reports_all_four_threads() {
        let batches: Vec<Box<dyn TraceSource + Send + Sync>> =
            vec![Box::new(AluSource), Box::new(AluSource), Box::new(AluSource)];
        let r = Scenario::colocate_n(AluSource, batches).length(SimLength::quick()).run();
        assert_eq!(r.threads.len(), 4);
        for t in sim_model::ThreadId::first_n(4) {
            assert!(r.uipc(t).expect("thread ran") > 0.1, "thread {t} made no progress");
        }
        // Deterministic across identical invocations.
        let batches: Vec<Box<dyn TraceSource + Send + Sync>> =
            vec![Box::new(AluSource), Box::new(AluSource), Box::new(AluSource)];
        let again = Scenario::colocate_n(AluSource, batches).length(SimLength::quick()).run();
        for t in sim_model::ThreadId::first_n(4) {
            let bits = |r: &ColocationResult| r.uipc(t).expect("thread ran").to_bits();
            assert_eq!(bits(&r), bits(&again));
        }
    }

    #[test]
    fn pair_seed_is_stable_and_distinct() {
        assert_eq!(pair_seed(1, "a", "b"), pair_seed(1, "a", "b"));
        assert_ne!(pair_seed(1, "a", "b"), pair_seed(1, "a", "c"));
        assert_ne!(pair_seed(1, "a", "b"), pair_seed(2, "a", "b"));
    }

    #[test]
    fn pair_seed_does_not_collide_on_name_boundaries() {
        // Regression: bare byte concatenation made these four pairings hash
        // identically, silently sharing instruction streams across distinct
        // experiments. Length prefixes keep every split of the same byte
        // soup distinct.
        let adversarial = [("ab", "c"), ("a", "bc"), ("abc", ""), ("", "abc")];
        for (i, a) in adversarial.iter().enumerate() {
            for b in &adversarial[i + 1..] {
                assert_ne!(
                    pair_seed(42, a.0, a.1),
                    pair_seed(42, b.0, b.1),
                    "({:?}, {:?}) must not collide with ({:?}, {:?})",
                    a.0,
                    a.1,
                    b.0,
                    b.1
                );
            }
        }
        // Swapping roles must also produce a different stream.
        assert_ne!(pair_seed(42, "web-search", "zeusmp"), pair_seed(42, "zeusmp", "web-search"));
    }

    #[test]
    fn standalone_on_thread1_sees_the_thread0_reference_stream() {
        // A lone workload must get the same derived seed whichever hardware
        // thread it occupies — stand-alone references are thread-agnostic.
        use std::sync::{Arc, Mutex};

        struct SeedProbe(Arc<Mutex<Vec<u64>>>);
        impl TraceSource for SeedProbe {
            fn source_name(&self) -> &str {
                "seed-probe"
            }
            fn spawn_trace(&self, seed: u64) -> BoxedTrace {
                self.0.lock().expect("probe lock").push(seed);
                Box::new(AluLoop { pc: 0x1000 })
            }
        }

        let seen = Arc::new(Mutex::new(Vec::new()));
        let _ = Scenario::standalone(SeedProbe(seen.clone())).length(SimLength::quick()).run();
        let mut on_t1 = Scenario::standalone(SeedProbe(seen.clone())).length(SimLength::quick());
        let probe = on_t1.threads[0].take();
        on_t1.threads = vec![None, probe];
        let _ = on_t1.run();
        let seen = seen.lock().expect("probe lock");
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], seen[1], "thread placement must not change the reference seed");
        assert_eq!(seen[0], pair_seed(42, "seed-probe", STANDALONE_LABEL));
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_scenario_rejected() {
        let _ = Scenario { threads: vec![None, None], ..Scenario::standalone(AluSource) }.run();
    }
}
