//! ROB / LSQ partitioning control.
//!
//! This module models the limit/usage-register mechanism of §IV-B: each of the
//! ROB and LSQ carries, per thread, a *limit register* (maximum entries the
//! thread may occupy) and a *usage register* (entries currently occupied).
//! Dispatch for a thread is blocked when usage reaches the limit. The baseline
//! core partitions both structures equally; Stretch reprograms the limit
//! registers to asymmetric values; dynamic sharing sets both limits to the
//! full capacity (bounded only by total occupancy).
//!
//! The limit registers are per-thread *vectors* sized to the core's SMT width
//! (T ≥ 1); the dual-threaded constructors ([`PartitionPolicy::equal`],
//! [`PartitionPolicy::rob_split`]) remain as thin T=2 wrappers. All share
//! vectors are validated at construction time: a partitioning must cover at
//! least one thread, and explicit splits must fit the physical capacity.

use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};

/// How the ROB and LSQ are divided between the core's hardware threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionPolicy {
    /// Static partitioning with explicit per-thread limits.
    ///
    /// The equal split (96/96 ROB entries on the Table II core) is the
    /// baseline; asymmetric splits are the Stretch B-/Q-modes.
    Static {
        /// ROB entries available to each thread, indexed by [`ThreadId::index`].
        rob: Vec<usize>,
        /// LSQ entries available to each thread.
        lsq: Vec<usize>,
    },
    /// Fully dynamic sharing: any thread may occupy any entry; only the
    /// total capacity constrains occupancy (the Figure 11 configuration).
    Dynamic,
}

impl PartitionPolicy {
    /// The baseline equal partitioning of the classic dual-threaded core.
    pub fn equal(cfg: &CoreConfig) -> PartitionPolicy {
        PartitionPolicy::equal_n(cfg, 2)
    }

    /// Equal partitioning across `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn equal_n(cfg: &CoreConfig, threads: usize) -> PartitionPolicy {
        assert!(threads >= 1, "a partition must cover at least one thread");
        PartitionPolicy::Static {
            rob: vec![cfg.rob_capacity / threads; threads],
            lsq: vec![cfg.lsq_capacity / threads; threads],
        }
    }

    /// Static partitioning with an explicit ROB split for the classic pair;
    /// the LSQ is split in proportion to the ROB, as the paper does.
    ///
    /// # Panics
    ///
    /// Panics if the requested ROB entries exceed the core's ROB capacity.
    pub fn rob_split(cfg: &CoreConfig, t0_rob: usize, t1_rob: usize) -> PartitionPolicy {
        PartitionPolicy::rob_shares(cfg, &[t0_rob, t1_rob])
    }

    /// Static partitioning from an explicit per-thread ROB share vector; the
    /// LSQ share of each thread is derived in proportion to its ROB share.
    ///
    /// # Panics
    ///
    /// Panics if the share vector is empty or the shares exceed the ROB
    /// capacity in total.
    pub fn rob_shares(cfg: &CoreConfig, shares: &[usize]) -> PartitionPolicy {
        assert!(!shares.is_empty(), "a partition must cover at least one thread");
        let total: usize = shares.iter().sum();
        assert!(
            total <= cfg.rob_capacity,
            "ROB split {total} exceeds capacity {}",
            cfg.rob_capacity
        );
        PartitionPolicy::Static {
            rob: shares.to_vec(),
            lsq: shares.iter().map(|&rob| cfg.lsq_entries_for_rob(rob)).collect(),
        }
    }

    /// Static partitioning that gives the designated latency-sensitive thread
    /// `ls_rob` entries and splits a `batch_rob` *total* evenly among the
    /// remaining `threads - 1` batch threads. With `threads == 2` this is
    /// exactly [`PartitionPolicy::rob_split`] in either thread order.
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2`, if the LS index is out of range, or if the
    /// shares exceed the ROB capacity in total.
    pub fn ls_split(
        cfg: &CoreConfig,
        threads: usize,
        ls_thread: ThreadId,
        ls_rob: usize,
        batch_rob: usize,
    ) -> PartitionPolicy {
        assert!(threads >= 2, "an LS/batch split needs at least two threads, got {threads}");
        assert!(
            ls_thread.index() < threads,
            "LS thread {ls_thread} out of range for an SMT-{threads} core"
        );
        let per_batch = batch_rob / (threads - 1);
        let shares: Vec<usize> =
            (0..threads).map(|i| if i == ls_thread.index() { ls_rob } else { per_batch }).collect();
        PartitionPolicy::rob_shares(cfg, &shares)
    }

    /// Per-thread full-size private structures for the classic pair, used by
    /// the per-resource contention study when the ROB is *not* the resource
    /// under study (each thread behaves as if it had the whole window).
    pub fn private_full(cfg: &CoreConfig) -> PartitionPolicy {
        PartitionPolicy::private_full_n(cfg, 2)
    }

    /// Per-thread full-size private structures across `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn private_full_n(cfg: &CoreConfig, threads: usize) -> PartitionPolicy {
        assert!(threads >= 1, "a partition must cover at least one thread");
        PartitionPolicy::Static {
            rob: vec![cfg.rob_capacity; threads],
            lsq: vec![cfg.lsq_capacity; threads],
        }
    }

    /// Number of threads the partition describes, or `None` for the
    /// thread-count-agnostic [`PartitionPolicy::Dynamic`].
    pub fn threads(&self) -> Option<usize> {
        match self {
            PartitionPolicy::Static { rob, .. } => Some(rob.len()),
            PartitionPolicy::Dynamic => None,
        }
    }

    /// The ROB limit register value for `thread`.
    ///
    /// # Panics
    ///
    /// Panics if a static partition does not cover `thread`.
    pub fn rob_limit(&self, cfg: &CoreConfig, thread: ThreadId) -> usize {
        match self {
            PartitionPolicy::Static { rob, .. } => rob[thread.index()],
            PartitionPolicy::Dynamic => cfg.rob_capacity,
        }
    }

    /// The LSQ limit register value for `thread`.
    ///
    /// # Panics
    ///
    /// Panics if a static partition does not cover `thread`.
    pub fn lsq_limit(&self, cfg: &CoreConfig, thread: ThreadId) -> usize {
        match self {
            PartitionPolicy::Static { lsq, .. } => lsq[thread.index()],
            PartitionPolicy::Dynamic => cfg.lsq_capacity,
        }
    }

    /// Whether total occupancy must also be bounded by the physical capacity.
    ///
    /// For static partitions whose limits sum to at most the capacity this is
    /// redundant; for [`PartitionPolicy::Dynamic`] and for the private-full
    /// idealisation it is the only (respectively: a deliberately absent)
    /// constraint.
    pub fn enforce_total_capacity(&self) -> bool {
        match self {
            PartitionPolicy::Static { .. } => false,
            PartitionPolicy::Dynamic => true,
        }
    }
}

impl CanonicalKey for PartitionPolicy {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match self {
            PartitionPolicy::Static { rob, lsq } => {
                // Length-prefixed share vectors: an SMT2 and an SMT4 setup can
                // never alias, even when their flattened scalars would agree.
                enc.tag(0).list(rob).list(lsq);
            }
            PartitionPolicy::Dynamic => {
                enc.tag(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_matches_table_ii() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::equal(&cfg);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 96);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T1), 96);
        assert_eq!(p.lsq_limit(&cfg, ThreadId::T0), 32);
        assert_eq!(p.threads(), Some(2));
    }

    #[test]
    fn equal_split_generalises_to_smt4() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::equal_n(&cfg, 4);
        for t in ThreadId::first_n(4) {
            assert_eq!(p.rob_limit(&cfg, t), 48);
            assert_eq!(p.lsq_limit(&cfg, t), 16);
        }
        assert_eq!(p.threads(), Some(4));
    }

    #[test]
    fn rob_split_scales_lsq() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::rob_split(&cfg, 56, 136);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 56);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T1), 136);
        // 56/192 * 64 = 18.67 -> 18; 136/192 * 64 = 45.33 -> 45.
        assert_eq!(p.lsq_limit(&cfg, ThreadId::T0), 18);
        assert_eq!(p.lsq_limit(&cfg, ThreadId::T1), 45);
    }

    #[test]
    fn ls_split_reduces_to_rob_split_on_the_pair() {
        let cfg = CoreConfig::default();
        assert_eq!(
            PartitionPolicy::ls_split(&cfg, 2, ThreadId::T0, 56, 136),
            PartitionPolicy::rob_split(&cfg, 56, 136)
        );
        assert_eq!(
            PartitionPolicy::ls_split(&cfg, 2, ThreadId::T1, 56, 136),
            PartitionPolicy::rob_split(&cfg, 136, 56)
        );
    }

    #[test]
    fn ls_split_spreads_the_batch_share_on_smt4() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::ls_split(&cfg, 4, ThreadId::T0, 56, 136);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 56);
        for t in ThreadId::first_n(4).skip(1) {
            assert_eq!(p.rob_limit(&cfg, t), 136 / 3);
        }
    }

    #[test]
    fn dynamic_limits_are_full_capacity() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::Dynamic;
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 192);
        assert_eq!(p.lsq_limit(&cfg, ThreadId::T1), 64);
        assert!(p.enforce_total_capacity());
        assert_eq!(p.threads(), None);
    }

    #[test]
    fn private_full_gives_each_thread_everything() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::private_full(&cfg);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 192);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T1), 192);
        assert!(!p.enforce_total_capacity());
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversubscribed_split_rejected() {
        let cfg = CoreConfig::default();
        let _ = PartitionPolicy::rob_split(&cfg, 128, 128);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversubscribed_share_vector_rejected() {
        let cfg = CoreConfig::default();
        let _ = PartitionPolicy::rob_shares(&cfg, &[64, 64, 64, 64]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_share_vector_rejected() {
        let cfg = CoreConfig::default();
        let _ = PartitionPolicy::rob_shares(&cfg, &[]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_thread_equal_partition_rejected() {
        let _ = PartitionPolicy::equal_n(&CoreConfig::default(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ls_split_rejects_out_of_range_ls_thread() {
        let cfg = CoreConfig::default();
        let _ = PartitionPolicy::ls_split(&cfg, 2, ThreadId::from_index(2), 56, 136);
    }

    #[test]
    fn smt2_and_smt4_partitions_are_distinct_keys() {
        let cfg = CoreConfig { rob_capacity: 384, ..CoreConfig::default() };
        let digest = |p: &PartitionPolicy| {
            let mut enc = KeyEncoder::new();
            p.encode_key(&mut enc);
            enc.digest()
        };
        let smt2 = PartitionPolicy::equal_n(&cfg, 2);
        let smt4 = PartitionPolicy::equal_n(&cfg, 4);
        assert_ne!(digest(&smt2), digest(&smt4));
    }
}
