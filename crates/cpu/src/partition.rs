//! ROB / LSQ partitioning control.
//!
//! This module models the limit/usage-register mechanism of §IV-B: each of the
//! ROB and LSQ carries, per thread, a *limit register* (maximum entries the
//! thread may occupy) and a *usage register* (entries currently occupied).
//! Dispatch for a thread is blocked when usage reaches the limit. The baseline
//! core partitions both structures equally; Stretch reprograms the limit
//! registers to asymmetric values; dynamic sharing sets both limits to the
//! full capacity (bounded only by total occupancy).

use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};

/// How the ROB and LSQ are divided between the two hardware threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionPolicy {
    /// Static partitioning with explicit per-thread limits.
    ///
    /// The equal split (96/96 ROB entries on the Table II core) is the
    /// baseline; asymmetric splits are the Stretch B-/Q-modes.
    Static {
        /// ROB entries available to each thread, indexed by [`ThreadId::index`].
        rob: [usize; 2],
        /// LSQ entries available to each thread.
        lsq: [usize; 2],
    },
    /// Fully dynamic sharing: either thread may occupy any entry; only the
    /// total capacity constrains occupancy (the Figure 11 configuration).
    Dynamic,
}

impl PartitionPolicy {
    /// The baseline equal partitioning for a given core configuration.
    pub fn equal(cfg: &CoreConfig) -> PartitionPolicy {
        PartitionPolicy::Static {
            rob: [cfg.rob_capacity / 2, cfg.rob_capacity / 2],
            lsq: [cfg.lsq_capacity / 2, cfg.lsq_capacity / 2],
        }
    }

    /// Static partitioning with an explicit ROB split; the LSQ is split in
    /// proportion to the ROB, as the paper does.
    ///
    /// # Panics
    ///
    /// Panics if the requested ROB entries exceed the core's ROB capacity.
    pub fn rob_split(cfg: &CoreConfig, t0_rob: usize, t1_rob: usize) -> PartitionPolicy {
        assert!(
            t0_rob + t1_rob <= cfg.rob_capacity,
            "ROB split {t0_rob}+{t1_rob} exceeds capacity {}",
            cfg.rob_capacity
        );
        PartitionPolicy::Static {
            rob: [t0_rob, t1_rob],
            lsq: [cfg.lsq_entries_for_rob(t0_rob), cfg.lsq_entries_for_rob(t1_rob)],
        }
    }

    /// Per-thread full-size private structures, used by the per-resource
    /// contention study when the ROB is *not* the resource under study
    /// (each thread behaves as if it had the whole instruction window).
    pub fn private_full(cfg: &CoreConfig) -> PartitionPolicy {
        PartitionPolicy::Static {
            rob: [cfg.rob_capacity, cfg.rob_capacity],
            lsq: [cfg.lsq_capacity, cfg.lsq_capacity],
        }
    }

    /// The ROB limit register value for `thread`.
    pub fn rob_limit(&self, cfg: &CoreConfig, thread: ThreadId) -> usize {
        match self {
            PartitionPolicy::Static { rob, .. } => rob[thread.index()],
            PartitionPolicy::Dynamic => cfg.rob_capacity,
        }
    }

    /// The LSQ limit register value for `thread`.
    pub fn lsq_limit(&self, cfg: &CoreConfig, thread: ThreadId) -> usize {
        match self {
            PartitionPolicy::Static { lsq, .. } => lsq[thread.index()],
            PartitionPolicy::Dynamic => cfg.lsq_capacity,
        }
    }

    /// Whether total occupancy must also be bounded by the physical capacity.
    ///
    /// For static partitions whose limits sum to at most the capacity this is
    /// redundant; for [`PartitionPolicy::Dynamic`] and for the private-full
    /// idealisation it is the only (respectively: a deliberately absent)
    /// constraint.
    pub fn enforce_total_capacity(&self) -> bool {
        match self {
            PartitionPolicy::Static { .. } => false,
            PartitionPolicy::Dynamic => true,
        }
    }
}

impl CanonicalKey for PartitionPolicy {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match self {
            PartitionPolicy::Static { rob, lsq } => {
                enc.tag(0).usize(rob[0]).usize(rob[1]).usize(lsq[0]).usize(lsq[1]);
            }
            PartitionPolicy::Dynamic => {
                enc.tag(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_matches_table_ii() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::equal(&cfg);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 96);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T1), 96);
        assert_eq!(p.lsq_limit(&cfg, ThreadId::T0), 32);
    }

    #[test]
    fn rob_split_scales_lsq() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::rob_split(&cfg, 56, 136);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 56);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T1), 136);
        // 56/192 * 64 = 18.67 -> 18; 136/192 * 64 = 45.33 -> 45.
        assert_eq!(p.lsq_limit(&cfg, ThreadId::T0), 18);
        assert_eq!(p.lsq_limit(&cfg, ThreadId::T1), 45);
    }

    #[test]
    fn dynamic_limits_are_full_capacity() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::Dynamic;
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 192);
        assert_eq!(p.lsq_limit(&cfg, ThreadId::T1), 64);
        assert!(p.enforce_total_capacity());
    }

    #[test]
    fn private_full_gives_each_thread_everything() {
        let cfg = CoreConfig::default();
        let p = PartitionPolicy::private_full(&cfg);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T0), 192);
        assert_eq!(p.rob_limit(&cfg, ThreadId::T1), 192);
        assert!(!p.enforce_total_capacity());
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversubscribed_split_rejected() {
        let cfg = CoreConfig::default();
        let _ = PartitionPolicy::rob_split(&cfg, 128, 128);
    }
}
