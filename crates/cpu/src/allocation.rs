//! Server-level thread-to-core allocation: the policy layer *above*
//! [`ColocationPolicy`].
//!
//! A Stretch deployment answers two questions. Per core, how are the shared
//! structures divided between the resident threads? — that is the
//! [`ColocationPolicy`]. Across the server, *which* threads become residents
//! of *which* core? — that is the [`AllocationPolicy`] defined here. The two
//! compose through [`ServerScenario`] (also reachable as
//! [`Scenario::server`]): an allocation policy produces a [`Placement`] of
//! the offered threads onto `M` cores × `T` SMT threads, and every occupied
//! core then runs under one shared colocation policy, with the core's
//! latency-sensitive thread (if any) in slot T0.
//!
//! Three reference allocators ship with the crate:
//!
//! * [`Greedy`] — isolate latency-sensitive threads on their own cores and
//!   pack batch threads densely onto the remaining ones;
//! * [`RoundRobin`] — deal threads across cores in arrival order, the
//!   class-blind default of a naive scheduler;
//! * [`SymbiosisAware`] — spread latency-sensitive threads, then co-locate
//!   batch threads by complementarity of their measured stand-alone UIPC
//!   (pairing window-hungry with compute-bound jobs, in the spirit of
//!   symbiotic job scheduling).
//!
//! Like colocation policies, allocation policies carry a [`CanonicalKey`]
//! identity so cached experiment cells can never alias across policies whose
//! placements happen to coincide on one input.

use crate::policy::ColocationPolicy;
use crate::runner::{ColocationResult, SimLength, ThreadRunResult};
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, TraceSource, WorkloadClass};

/// What the allocator knows about one schedulable thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadSpec {
    /// Workload name (used for labels and seed derivation).
    pub name: String,
    /// Latency-sensitive service or batch job.
    pub class: WorkloadClass,
    /// Measured stand-alone UIPC on a private core, when available; the
    /// signal [`SymbiosisAware`] pairs by.
    pub standalone_uipc: Option<f64>,
}

impl ThreadSpec {
    /// A latency-sensitive thread.
    pub fn latency_sensitive(name: impl Into<String>) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            class: WorkloadClass::LatencySensitive,
            standalone_uipc: None,
        }
    }

    /// A batch thread.
    pub fn batch(name: impl Into<String>) -> ThreadSpec {
        ThreadSpec { name: name.into(), class: WorkloadClass::Batch, standalone_uipc: None }
    }

    /// Attaches a measured stand-alone UIPC reference.
    pub fn with_standalone_uipc(mut self, uipc: f64) -> ThreadSpec {
        self.standalone_uipc = Some(uipc);
        self
    }
}

impl CanonicalKey for ThreadSpec {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str(&self.name).tag(if self.class.is_latency_sensitive() { 0 } else { 1 });
        match self.standalone_uipc {
            None => enc.tag(0),
            Some(v) => enc.tag(1).f64(v),
        };
    }
}

/// The hardware shape of one server: `cores` SMT cores of `threads_per_core`
/// hardware threads each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Number of cores.
    pub cores: usize,
    /// SMT width of each core (T ≥ 1).
    pub threads_per_core: usize,
}

impl ServerSpec {
    /// A server of `cores` cores × `threads_per_core` SMT threads.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cores: usize, threads_per_core: usize) -> ServerSpec {
        assert!(cores >= 1, "a server needs at least one core");
        assert!(threads_per_core >= 1, "a core needs at least one hardware thread");
        ServerSpec { cores, threads_per_core }
    }

    /// Total hardware-thread capacity.
    pub fn capacity(&self) -> usize {
        self.cores * self.threads_per_core
    }
}

impl CanonicalKey for ServerSpec {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.cores).usize(self.threads_per_core);
    }
}

/// An assignment of threads to cores: `cores()[c]` lists the thread indices
/// resident on core `c`.
///
/// Construction validates the placement, so a `Placement` in hand is always
/// well-formed: every thread placed exactly once, no core over its SMT width.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    cores: Vec<Vec<usize>>,
}

impl Placement {
    /// Validates and wraps a per-core thread-index assignment for
    /// `thread_count` threads on `server`.
    ///
    /// # Panics
    ///
    /// Panics if the core count disagrees with the server, a core exceeds the
    /// SMT width, or any thread index is missing, duplicated or out of range.
    pub fn new(cores: Vec<Vec<usize>>, thread_count: usize, server: &ServerSpec) -> Placement {
        assert!(
            cores.len() == server.cores,
            "placement describes {} cores but the server has {}",
            cores.len(),
            server.cores
        );
        let mut seen = vec![false; thread_count];
        for (c, members) in cores.iter().enumerate() {
            assert!(
                members.len() <= server.threads_per_core,
                "core {c} holds {} threads but its SMT width is {}",
                members.len(),
                server.threads_per_core
            );
            for &t in members {
                assert!(t < thread_count, "thread index {t} out of range ({thread_count} threads)");
                assert!(!seen[t], "thread {t} placed more than once");
                seen[t] = true;
            }
        }
        let unplaced = seen.iter().filter(|&&s| !s).count();
        assert!(unplaced == 0, "{unplaced} threads were left unplaced");
        Placement { cores }
    }

    /// Per-core thread-index lists.
    pub fn cores(&self) -> &[Vec<usize>] {
        &self.cores
    }

    /// The core a thread resides on.
    pub fn core_of(&self, thread: usize) -> Option<usize> {
        self.cores.iter().position(|members| members.contains(&thread))
    }
}

impl CanonicalKey for Placement {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        // Nested length-prefixed lists: placements with different per-core
        // groupings of the same thread set can never alias.
        enc.list(&self.cores);
    }
}

/// A server-level thread-to-core allocation policy.
///
/// Mirrors the shape of [`ColocationPolicy`] one level up: a pure placement
/// function plus a [`CanonicalKey`] identity and an object-safe clone.
pub trait AllocationPolicy: CanonicalKey + Send + Sync {
    /// Human-readable policy name (used in logs and result labels).
    fn name(&self) -> String;

    /// Places `threads` onto the cores of `server`.
    ///
    /// # Panics
    ///
    /// Implementations panic when the threads do not fit the server.
    fn assign(&self, threads: &[ThreadSpec], server: &ServerSpec) -> Placement;

    /// Clones the policy behind a box (object-safe `Clone`).
    fn clone_policy(&self) -> Box<dyn AllocationPolicy>;
}

impl Clone for Box<dyn AllocationPolicy> {
    fn clone(&self) -> Box<dyn AllocationPolicy> {
        self.clone_policy()
    }
}

/// Splits thread indices into (latency-sensitive, batch) in index order.
fn split_by_class(threads: &[ThreadSpec]) -> (Vec<usize>, Vec<usize>) {
    let mut ls = Vec::new();
    let mut batch = Vec::new();
    for (i, t) in threads.iter().enumerate() {
        if t.class.is_latency_sensitive() {
            ls.push(i);
        } else {
            batch.push(i);
        }
    }
    (ls, batch)
}

/// Index of the emptiest core with a free slot (ties to the lowest index).
fn emptiest_core(cores: &[Vec<usize>], width: usize) -> usize {
    let mut best = usize::MAX;
    for (c, members) in cores.iter().enumerate() {
        if members.len() < width && (best == usize::MAX || members.len() < cores[best].len()) {
            best = c;
        }
    }
    assert!(best != usize::MAX, "no core has a free hardware thread");
    best
}

/// Isolate latency-sensitive threads, pack batch threads.
///
/// LS threads are spread one per core (emptiest first); batch threads then
/// fill the LS-free cores to capacity before spilling onto LS cores. With
/// enough cores, every LS service runs alone — the most protective static
/// allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Greedy;

impl CanonicalKey for Greedy {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("alloc/greedy");
    }
}

impl AllocationPolicy for Greedy {
    fn name(&self) -> String {
        "greedy isolation".to_string()
    }

    fn assign(&self, threads: &[ThreadSpec], server: &ServerSpec) -> Placement {
        assert!(threads.len() <= server.capacity(), "threads exceed server capacity");
        let width = server.threads_per_core;
        let mut cores: Vec<Vec<usize>> = vec![Vec::new(); server.cores];
        let (ls, batch) = split_by_class(threads);
        for t in ls {
            let c = emptiest_core(&cores, width);
            cores[c].push(t);
        }
        let ls_core: Vec<bool> = cores.iter().map(|m| !m.is_empty()).collect();
        let mut batch = batch.into_iter();
        'pack: for c in 0..server.cores {
            if ls_core[c] {
                continue;
            }
            while cores[c].len() < width {
                let Some(t) = batch.next() else { break 'pack };
                cores[c].push(t);
            }
        }
        for t in batch {
            let c = emptiest_core(&cores, width);
            cores[c].push(t);
        }
        Placement::new(cores, threads.len(), server)
    }

    fn clone_policy(&self) -> Box<dyn AllocationPolicy> {
        Box::new(*self)
    }
}

/// Deal threads across cores in arrival order, blind to class — the naive
/// scheduler baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl CanonicalKey for RoundRobin {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("alloc/round-robin");
    }
}

impl AllocationPolicy for RoundRobin {
    fn name(&self) -> String {
        "round-robin".to_string()
    }

    fn assign(&self, threads: &[ThreadSpec], server: &ServerSpec) -> Placement {
        assert!(threads.len() <= server.capacity(), "threads exceed server capacity");
        let width = server.threads_per_core;
        let mut cores: Vec<Vec<usize>> = vec![Vec::new(); server.cores];
        for t in 0..threads.len() {
            let mut c = t % server.cores;
            while cores[c].len() >= width {
                c = (c + 1) % server.cores;
            }
            cores[c].push(t);
        }
        Placement::new(cores, threads.len(), server)
    }

    fn clone_policy(&self) -> Box<dyn AllocationPolicy> {
        Box::new(*self)
    }
}

/// Spread latency-sensitive threads, then co-locate batch threads by UIPC
/// complementarity.
///
/// Batch threads are ordered by their measured stand-alone UIPC (missing
/// references sort lowest) and dealt onto cores alternating between the
/// low-UIPC end (memory-bound, window-hungry) and the high-UIPC end
/// (compute-bound) — so each core mixes jobs that stress different
/// resources rather than contending for the same one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymbiosisAware;

impl CanonicalKey for SymbiosisAware {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("alloc/symbiosis-aware");
    }
}

impl AllocationPolicy for SymbiosisAware {
    fn name(&self) -> String {
        "symbiosis-aware".to_string()
    }

    fn assign(&self, threads: &[ThreadSpec], server: &ServerSpec) -> Placement {
        assert!(threads.len() <= server.capacity(), "threads exceed server capacity");
        let width = server.threads_per_core;
        let mut cores: Vec<Vec<usize>> = vec![Vec::new(); server.cores];
        let (ls, batch) = split_by_class(threads);
        for t in ls {
            let c = emptiest_core(&cores, width);
            cores[c].push(t);
        }
        // Sort batch threads by stand-alone UIPC (bit-ordered for
        // determinism; None sorts lowest), then alternate between the two
        // extremes of the ordering.
        let mut sorted = batch;
        sorted.sort_by_key(|&t| (threads[t].standalone_uipc.map(f64::to_bits).unwrap_or(0), t));
        let mut sorted = std::collections::VecDeque::from(sorted);
        let mut take_low = true;
        for c in 0..server.cores {
            while cores[c].len() < width && !sorted.is_empty() {
                let t = if take_low {
                    sorted.pop_front().expect("checked non-empty")
                } else {
                    sorted.pop_back().expect("checked non-empty")
                };
                take_low = !take_low;
                cores[c].push(t);
            }
        }
        Placement::new(cores, threads.len(), server)
    }

    fn clone_policy(&self) -> Box<dyn AllocationPolicy> {
        Box::new(*self)
    }
}

/// One schedulable thread offered to a [`ServerScenario`]: its spec plus the
/// trace source that realises it.
pub struct ServerThread {
    spec: ThreadSpec,
    source: Box<dyn TraceSource + Send + Sync>,
}

impl ServerThread {
    /// Pairs an allocator-visible spec with its workload source.
    pub fn new(spec: ThreadSpec, source: Box<dyn TraceSource + Send + Sync>) -> ServerThread {
        ServerThread { spec, source }
    }
}

/// A declarative server-level run: `M` cores × `T` threads under one
/// [`AllocationPolicy`] (which core does a thread land on?) and one
/// [`ColocationPolicy`] (how does each core share its structures?).
pub struct ServerScenario {
    cfg: CoreConfig,
    server: ServerSpec,
    allocation: Box<dyn AllocationPolicy>,
    colocation: Box<dyn ColocationPolicy>,
    threads: Vec<ServerThread>,
    length: SimLength,
    seed: u64,
}

impl ServerScenario {
    /// Starts a server scenario with [`Greedy`] allocation and the
    /// [`crate::EqualPartition`] colocation baseline.
    pub fn new(server: ServerSpec) -> ServerScenario {
        ServerScenario {
            cfg: CoreConfig::default(),
            server,
            allocation: Box::new(Greedy),
            colocation: Box::new(crate::policy::EqualPartition),
            threads: Vec::new(),
            length: SimLength::standard(),
            seed: 42,
        }
    }

    /// Sets the core configuration (default: Table II).
    pub fn config(mut self, cfg: CoreConfig) -> ServerScenario {
        self.cfg = cfg;
        self
    }

    /// Sets the allocation policy.
    pub fn allocation(mut self, policy: impl AllocationPolicy + 'static) -> ServerScenario {
        self.allocation = Box::new(policy);
        self
    }

    /// Sets an already-boxed allocation policy.
    pub fn boxed_allocation(mut self, policy: Box<dyn AllocationPolicy>) -> ServerScenario {
        self.allocation = policy;
        self
    }

    /// Sets the per-core colocation policy.
    pub fn colocation(mut self, policy: impl ColocationPolicy + 'static) -> ServerScenario {
        self.colocation = Box::new(policy);
        self
    }

    /// Sets an already-boxed per-core colocation policy.
    pub fn boxed_colocation(mut self, policy: Box<dyn ColocationPolicy>) -> ServerScenario {
        self.colocation = policy;
        self
    }

    /// Offers one thread to the server.
    pub fn thread(mut self, thread: ServerThread) -> ServerScenario {
        self.threads.push(thread);
        self
    }

    /// Sets the simulation length.
    pub fn length(mut self, length: SimLength) -> ServerScenario {
        self.length = length;
        self
    }

    /// Sets the base seed (per-core streams derive from it as in
    /// [`Scenario::seed`]).
    pub fn seed(mut self, seed: u64) -> ServerScenario {
        self.seed = seed;
        self
    }

    /// The allocation this scenario would use, without running anything.
    pub fn placement(&self) -> Placement {
        let specs: Vec<ThreadSpec> = self.threads.iter().map(|t| t.spec.clone()).collect();
        self.allocation.assign(&specs, &self.server)
    }

    /// Places the threads and simulates every occupied core.
    ///
    /// Within a core, latency-sensitive threads occupy the lowest slots (so a
    /// core's LS service sits at T0, matching what a pinned colocation policy
    /// protects); batch threads follow in placement order; unused hardware
    /// threads stay idle.
    ///
    /// # Panics
    ///
    /// Panics if no thread was offered, or if the allocation does not fit.
    pub fn run(self) -> ServerRunResult {
        let ServerScenario { cfg, server, allocation, colocation, threads, length, seed } = self;
        assert!(!threads.is_empty(), "a server scenario needs at least one thread");
        let specs: Vec<ThreadSpec> = threads.iter().map(|t| t.spec.clone()).collect();
        let placement = allocation.assign(&specs, &server);
        let mut sources: Vec<Option<Box<dyn TraceSource + Send + Sync>>> =
            threads.into_iter().map(|t| Some(t.source)).collect();

        let mut cores = Vec::with_capacity(server.cores);
        let mut core_slots = Vec::with_capacity(server.cores);
        for members in placement.cores() {
            if members.is_empty() {
                cores.push(None);
                core_slots.push(vec![None; server.threads_per_core]);
                continue;
            }
            let mut ordered: Vec<usize> = members
                .iter()
                .copied()
                .filter(|&t| specs[t].class.is_latency_sensitive())
                .collect();
            ordered.extend(
                members.iter().copied().filter(|&t| !specs[t].class.is_latency_sensitive()),
            );
            let mut slots: Vec<Option<usize>> = ordered.into_iter().map(Some).collect();
            slots.resize(server.threads_per_core, None);
            let slot_sources = slots
                .iter()
                .map(|s| s.map(|t| sources[t].take().expect("thread placed exactly once")))
                .collect();
            let result = Scenario::from_slots(slot_sources)
                .config(cfg)
                .boxed_policy(colocation.clone_policy())
                .length(length)
                .seed(seed)
                .run();
            cores.push(Some(result));
            core_slots.push(slots);
        }
        ServerRunResult { threads: specs, placement, core_slots, cores }
    }
}

impl Scenario {
    /// Starts a server-level scenario — see [`ServerScenario`].
    pub fn server(server: ServerSpec) -> ServerScenario {
        ServerScenario::new(server)
    }
}

/// Result of a [`ServerScenario`] run.
#[derive(Debug, Clone)]
pub struct ServerRunResult {
    /// The offered threads, in offer order (indices match the placement).
    pub threads: Vec<ThreadSpec>,
    /// Where each thread was placed.
    pub placement: Placement,
    /// Per core: which thread occupies each hardware-thread slot.
    pub core_slots: Vec<Vec<Option<usize>>>,
    /// Per core: the simulated result (`None` for an idle core).
    pub cores: Vec<Option<ColocationResult>>,
}

impl ServerRunResult {
    /// The per-thread run result for an offered thread index.
    pub fn thread_result(&self, thread: usize) -> Option<&ThreadRunResult> {
        for (core, slots) in self.core_slots.iter().enumerate() {
            if let Some(slot) = slots.iter().position(|&s| s == Some(thread)) {
                return self.cores[core].as_ref().and_then(|r| r.threads[slot].as_ref());
            }
        }
        None
    }

    /// UIPC of an offered thread.
    pub fn thread_uipc(&self, thread: usize) -> Option<f64> {
        self.thread_result(thread).map(|r| r.uipc)
    }

    /// Aggregate batch throughput: the sum of every batch thread's UIPC.
    pub fn batch_throughput(&self) -> f64 {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].class.is_batch())
            .filter_map(|t| self.thread_uipc(t))
            .sum()
    }

    /// The worst (lowest) UIPC among latency-sensitive threads, if any ran.
    pub fn min_ls_uipc(&self) -> Option<f64> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].class.is_latency_sensitive())
            .filter_map(|t| self.thread_uipc(t))
            .min_by(|a, b| a.total_cmp(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_model::{BoxedTrace, MicroOp, OpKind, TraceGenerator};

    fn specs(ls: usize, batch: usize) -> Vec<ThreadSpec> {
        let mut out = Vec::new();
        for i in 0..ls {
            out.push(ThreadSpec::latency_sensitive(format!("ls-{i}")));
        }
        for i in 0..batch {
            out.push(ThreadSpec::batch(format!("batch-{i}")));
        }
        out
    }

    #[test]
    fn greedy_isolates_ls_threads_when_cores_allow() {
        let server = ServerSpec::new(4, 2);
        let threads = specs(2, 4);
        let p = Greedy.assign(&threads, &server);
        // LS threads 0 and 1 land alone on cores 0 and 1; batch fills 2, 3.
        assert_eq!(p.cores()[0], vec![0]);
        assert_eq!(p.cores()[1], vec![1]);
        assert_eq!(p.cores()[2], vec![2, 3]);
        assert_eq!(p.cores()[3], vec![4, 5]);
    }

    #[test]
    fn greedy_spills_batch_onto_ls_cores_only_when_full() {
        let server = ServerSpec::new(2, 2);
        let threads = specs(1, 3);
        let p = Greedy.assign(&threads, &server);
        // Core 0: LS + one spilled batch; core 1: two batch threads.
        assert_eq!(p.cores()[1], vec![1, 2]);
        assert_eq!(p.cores()[0], vec![0, 3]);
    }

    #[test]
    fn round_robin_deals_in_order() {
        let server = ServerSpec::new(3, 2);
        let threads = specs(1, 4);
        let p = RoundRobin.assign(&threads, &server);
        assert_eq!(p.cores()[0], vec![0, 3]);
        assert_eq!(p.cores()[1], vec![1, 4]);
        assert_eq!(p.cores()[2], vec![2]);
    }

    #[test]
    fn symbiosis_pairs_extremes() {
        let server = ServerSpec::new(2, 2);
        let mut threads = specs(0, 4);
        for (i, uipc) in [0.1, 2.0, 0.5, 3.0].iter().enumerate() {
            threads[i] = threads[i].clone().with_standalone_uipc(*uipc);
        }
        let p = SymbiosisAware.assign(&threads, &server);
        // Sorted by UIPC: 0 (0.1), 2 (0.5), 1 (2.0), 3 (3.0). Core 0 takes
        // the lowest and the highest; core 1 takes the middle pair.
        assert_eq!(p.cores()[0], vec![0, 3]);
        assert_eq!(p.cores()[1], vec![2, 1]);
    }

    #[test]
    fn allocation_policies_have_distinct_keys() {
        let digest = |p: &dyn AllocationPolicy| {
            let mut enc = KeyEncoder::new();
            p.encode_key(&mut enc);
            enc.digest()
        };
        let a = digest(&Greedy);
        let b = digest(&RoundRobin);
        let c = digest(&SymbiosisAware);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Boxed clones keep the identity.
        assert_eq!(digest(Greedy.clone_policy().as_ref()), a);
    }

    #[test]
    fn distinct_placements_have_distinct_keys() {
        let digest = |p: &Placement| {
            let mut enc = KeyEncoder::new();
            p.encode_key(&mut enc);
            enc.digest()
        };
        let server = ServerSpec::new(2, 2);
        let grouped = Placement::new(vec![vec![0, 1], vec![2]], 3, &server);
        let spread = Placement::new(vec![vec![0], vec![1, 2]], 3, &server);
        assert_ne!(digest(&grouped), digest(&spread));
    }

    #[test]
    #[should_panic(expected = "placed more than once")]
    fn placement_rejects_duplicates() {
        let server = ServerSpec::new(2, 2);
        let _ = Placement::new(vec![vec![0, 1], vec![1]], 2, &server);
    }

    #[test]
    #[should_panic(expected = "left unplaced")]
    fn placement_rejects_missing_threads() {
        let server = ServerSpec::new(2, 2);
        let _ = Placement::new(vec![vec![0], vec![]], 2, &server);
    }

    #[test]
    #[should_panic(expected = "SMT width")]
    fn placement_rejects_overfull_cores() {
        let server = ServerSpec::new(1, 2);
        let _ = Placement::new(vec![vec![0, 1, 2]], 3, &server);
    }

    struct AluLoop {
        pc: u64,
    }

    impl TraceGenerator for AluLoop {
        fn next_op(&mut self) -> MicroOp {
            self.pc = 0x1000 + (self.pc + 4 - 0x1000) % 512;
            MicroOp::alu(self.pc, OpKind::IntAlu, [None, None], Some(1))
        }
        fn name(&self) -> &str {
            "alu-loop"
        }
        fn class(&self) -> WorkloadClass {
            WorkloadClass::Batch
        }
        fn reset(&mut self) {
            self.pc = 0x1000;
        }
    }

    struct AluSource(&'static str);

    impl TraceSource for AluSource {
        fn source_name(&self) -> &str {
            self.0
        }
        fn spawn_trace(&self, _seed: u64) -> BoxedTrace {
            Box::new(AluLoop { pc: 0x1000 })
        }
    }

    fn server_thread(spec: ThreadSpec) -> ServerThread {
        let name: &'static str = Box::leak(spec.name.clone().into_boxed_str());
        ServerThread::new(spec, Box::new(AluSource(name)))
    }

    #[test]
    fn server_scenario_runs_every_thread() {
        let server = ServerSpec::new(2, 2);
        let mut scenario = Scenario::server(server).length(SimLength::quick());
        for spec in specs(1, 2) {
            scenario = scenario.thread(server_thread(spec));
        }
        let result = scenario.run();
        for t in 0..3 {
            assert!(
                result.thread_uipc(t).expect("thread ran") > 0.1,
                "thread {t} made no progress"
            );
        }
        assert!(result.batch_throughput() > 0.0);
        assert!(result.min_ls_uipc().expect("one LS thread") > 0.1);
        // Greedy isolation: the LS thread runs alone on core 0.
        assert_eq!(result.placement.cores()[0], vec![0]);
    }

    #[test]
    fn server_scenario_is_deterministic() {
        let run = || {
            let server = ServerSpec::new(2, 2);
            let mut scenario =
                Scenario::server(server).allocation(RoundRobin).length(SimLength::quick()).seed(7);
            for spec in specs(1, 2) {
                scenario = scenario.thread(server_thread(spec));
            }
            let result = scenario.run();
            (0..3).map(|t| result.thread_uipc(t).unwrap().to_bits()).collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }
}
