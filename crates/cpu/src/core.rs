//! The SMT out-of-order core model (T hardware threads; the paper's core is
//! the T = 2 instance).
//!
//! The pipeline implements the Table II core: a 6-wide front end with ICOUNT
//! thread selection, a hybrid branch predictor, shared or private L1 caches,
//! a 192-entry ROB and 64-entry LSQ with per-thread limit/usage registers
//! (the structures Stretch reprograms), a Table II functional-unit mix, and
//! 6-wide round-robin commit. The SMT width is set at build time via
//! [`SmtCoreBuilder::smt_width`]; every arbiter (fetch selection, dispatch
//! preference, issue and commit round-robin) rotates over all T threads and
//! reduces exactly to the classic pair behaviour at T = 2.
//!
//! The model is trace-driven and cycle-level: every cycle it completes
//! finished instructions, commits from the ROB heads, issues ready
//! instructions subject to functional-unit and MSHR constraints, dispatches
//! from the per-thread fetch buffers subject to the ROB/LSQ partition limits,
//! and fetches from the workload trace generators subject to I-cache misses,
//! branch redirects and fetch-bandwidth limits.

use crate::branch::{BranchPredictor, BranchStats, Prediction};
use crate::fetch::{FetchPolicy, FetchScheduler};
use crate::partition::PartitionPolicy;
use mem_sim::{HierarchyConfig, HierarchyStats, LoadResult, MemoryHierarchy, Sharing};
use sim_model::{
    BoxedTrace, CoreConfig, Cycle, MicroOp, OpKind, ThreadId, TraceGenerator, NUM_LOGICAL_REGS,
};
use sim_stats::Histogram;
use std::collections::{HashSet, VecDeque}; // simlint: allow(nondet-collections, "IdSet below is membership-only")
use std::hash::{BuildHasherDefault, Hasher};

pub use sim_model::trace::BoxedTrace as ThreadTrace;

/// A deterministic multiply hasher for instruction ids.
///
/// The `incomplete` set is probed several times per ROB entry per cycle (the
/// wake-up check in `issue` and the dependence capture in `dispatch`), which
/// made the default SipHash state the single hottest allocation-free cost of
/// the simulation loop. Ids are dense sequential counters, so one Fibonacci
/// multiply spreads them perfectly well; only set membership is ever
/// observed, so the hash function cannot affect simulation results.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, id: u64) {
        self.0 = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Set of in-flight instruction ids, keyed by the multiply hasher above.
/// Never iterated — membership tests only — so hash order cannot reach any
/// simulation result; the hot wakeup path needs the O(1) probe.
type IdSet = HashSet<u64, BuildHasherDefault<IdHasher>>; // simlint: allow(nondet-collections, "membership-only probe set, never iterated")

/// Status of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryStatus {
    /// In the ROB, waiting for operands or a functional unit.
    Dispatched,
    /// Executing; result available at `completion`.
    Issued,
    /// Finished execution; eligible for commit when it reaches the ROB head.
    Completed,
}

/// Sentinel for an absent dependence slot. Instruction ids are dense
/// sequential counters starting at zero, so `u64::MAX` can never collide
/// with a real id.
const NO_DEP: u64 = u64::MAX;

/// A reorder buffer in structure-of-arrays layout.
///
/// The issue stage scans only `status` + `deps` and the complete stage only
/// `status` + `completion`; keeping each field in its own queue means those
/// every-cycle scans walk dense homogeneous memory instead of striding over
/// full entries (the `MicroOp` payload alone dominates the entry size and is
/// only touched when an instruction actually issues or commits). All queues
/// move in lock-step: entries enter at the back in dispatch order and leave
/// from the front at commit, so index `i` addresses one instruction across
/// every field.
#[derive(Debug, Default)]
struct Rob {
    ids: VecDeque<u64>,
    uops: VecDeque<MicroOp>,
    status: VecDeque<EntryStatus>,
    completion: VecDeque<Cycle>,
    /// Producer ids per source operand, [`NO_DEP`] when absent.
    deps: VecDeque<[u64; 2]>,
    mispredicted: VecDeque<bool>,
    in_lsq: VecDeque<bool>,
}

impl Rob {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn push_back(
        &mut self,
        id: u64,
        uop: MicroOp,
        deps: [u64; 2],
        mispredicted: bool,
        in_lsq: bool,
    ) {
        self.ids.push_back(id);
        self.uops.push_back(uop);
        self.status.push_back(EntryStatus::Dispatched);
        self.completion.push_back(0);
        self.deps.push_back(deps);
        self.mispredicted.push_back(mispredicted);
        self.in_lsq.push_back(in_lsq);
    }

    /// Pops the head entry, returning the fields commit needs.
    fn pop_front(&mut self) -> Option<(MicroOp, bool)> {
        let uop = self.uops.pop_front()?;
        self.ids.pop_front();
        self.status.pop_front();
        self.completion.pop_front();
        self.deps.pop_front();
        self.mispredicted.pop_front();
        let in_lsq = self.in_lsq.pop_front().expect("rob queues move in lock-step");
        Some((uop, in_lsq))
    }
}

#[derive(Debug, Clone)]
struct FetchedOp {
    id: u64,
    uop: MicroOp,
    mispredicted: bool,
}

/// Per-thread execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThreadStats {
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Branches committed.
    pub branches: u64,
    /// Pipeline flushes caused by mispredicted branches of this thread.
    pub branch_flushes: u64,
    /// Pipeline flushes caused by Stretch mode changes.
    pub mode_change_flushes: u64,
}

/// Per-thread state: its trace, ROB partition occupancy, fetch buffer and
/// register scoreboard.
struct ThreadState {
    trace: Option<BoxedTrace>,
    rob: Rob,
    lsq_occupancy: usize,
    fetch_buffer: VecDeque<FetchedOp>,
    /// Micro-ops squashed by a mode-change flush, awaiting re-fetch.
    replay: VecDeque<MicroOp>,
    /// One micro-op pulled from the trace but not yet accepted by fetch
    /// (bandwidth or stall limits); retried first on the next fetch cycle.
    pending_fetch: Option<MicroOp>,
    last_writer: [Option<u64>; NUM_LOGICAL_REGS],
    fetch_stall_until: Cycle,
    /// Id of an unresolved mispredicted branch blocking fetch, if any.
    waiting_branch: Option<u64>,
    /// Earliest completion cycle among this thread's `Issued` entries
    /// ([`Cycle::MAX`] when none are executing). The complete stage skips the
    /// thread's ROB scan entirely before this watermark — a scan that early
    /// would find nothing, so the skip is bit-exact. Maintained exactly: the
    /// issue stage min-updates it and every real complete scan recomputes it.
    next_completion: Cycle,
    /// True when the last issue scan found zero ready-to-issue entries and no
    /// wake event has occurred since, so the scan can be skipped. Wake events
    /// (which clear the flag) are a dispatch into this thread, a completion
    /// of this thread's instruction (dependences are intra-thread), and a
    /// pipeline flush. The flag is conservative: it is only set when a scan
    /// actually came up empty, never when entries were merely budget- or
    /// FU-starved.
    issue_idle: bool,
    stats: ThreadStats,
    mlp: Histogram,
}

impl ThreadState {
    fn new() -> ThreadState {
        ThreadState {
            trace: None,
            rob: Rob::default(),
            lsq_occupancy: 0,
            fetch_buffer: VecDeque::new(),
            replay: VecDeque::new(),
            pending_fetch: None,
            last_writer: [None; NUM_LOGICAL_REGS],
            fetch_stall_until: 0,
            waiting_branch: None,
            next_completion: Cycle::MAX,
            issue_idle: false,
            stats: ThreadStats::default(),
            mlp: Histogram::new(10),
        }
    }

    fn in_flight(&self) -> usize {
        self.rob.len() + self.fetch_buffer.len()
    }

    fn active(&self) -> bool {
        self.trace.is_some()
    }
}

/// The simulated SMT core.
pub struct SmtCore {
    cfg: CoreConfig,
    mem: MemoryHierarchy,
    bp: BranchPredictor,
    fetch_policy: FetchPolicy,
    scheduler: FetchScheduler,
    partition: PartitionPolicy,
    now: Cycle,
    next_id: u64,
    threads: Vec<ThreadState>,
    /// Ids of instructions that have not yet completed execution.
    incomplete: IdSet,
    /// Round-robin commit preference (rotates each cycle).
    commit_preference: usize,
    total_cycles_run: u64,
    /// Reusable scratch for `issue`'s ready-entry positions; allocating it
    /// fresh every cycle dominated the issue stage's cost.
    scratch_ready: Vec<usize>,
    /// Reusable scratch for `fetch_thread`'s touched I-cache blocks.
    scratch_blocks: Vec<u64>,
    /// Reusable scratch for `flush_thread`'s squashed micro-ops.
    scratch_squashed: Vec<MicroOp>,
    /// Reusable scratch for `fetch`'s per-thread in-flight counts.
    scratch_in_flight: Vec<usize>,
    /// Reusable scratch for `fetch`'s per-thread activity flags.
    scratch_active: Vec<bool>,
}

/// Builder for [`SmtCore`].
pub struct SmtCoreBuilder {
    cfg: CoreConfig,
    fetch_policy: FetchPolicy,
    partition: Option<PartitionPolicy>,
    l1i_sharing: Sharing,
    l1d_sharing: Sharing,
    bp_sharing: Sharing,
    smt_width: usize,
    traces: Vec<Option<BoxedTrace>>,
}

impl SmtCoreBuilder {
    /// Starts a builder with the given core configuration, the baseline
    /// ICOUNT fetch policy, equal ROB/LSQ partitioning, shared L1s and branch
    /// predictor, and the classic SMT-2 width — the §V-A baseline core.
    pub fn new(cfg: CoreConfig) -> SmtCoreBuilder {
        SmtCoreBuilder {
            cfg,
            fetch_policy: FetchPolicy::ICount,
            partition: None,
            l1i_sharing: Sharing::Shared,
            l1d_sharing: Sharing::Shared,
            bp_sharing: Sharing::Shared,
            smt_width: 2,
            traces: vec![None, None],
        }
    }

    /// Sets the number of hardware threads (SMT width, T ≥ 1).
    ///
    /// Traces already attached to threads at or above the new width are
    /// dropped. Unless an explicit [`SmtCoreBuilder::partition`] is given,
    /// the default partition becomes the equal T-way split.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn smt_width(mut self, width: usize) -> SmtCoreBuilder {
        assert!(width >= 1, "a core needs at least one hardware thread");
        self.smt_width = width;
        self.traces.resize_with(width, || None);
        self
    }

    /// Sets the fetch (thread selection) policy.
    pub fn fetch_policy(mut self, policy: FetchPolicy) -> SmtCoreBuilder {
        self.fetch_policy = policy;
        self
    }

    /// Sets the ROB/LSQ partitioning policy. When not called, the core uses
    /// the equal split across its SMT width.
    pub fn partition(mut self, partition: PartitionPolicy) -> SmtCoreBuilder {
        self.partition = Some(partition);
        self
    }

    /// Sets the L1-I sharing mode.
    pub fn l1i_sharing(mut self, sharing: Sharing) -> SmtCoreBuilder {
        self.l1i_sharing = sharing;
        self
    }

    /// Sets the L1-D sharing mode.
    pub fn l1d_sharing(mut self, sharing: Sharing) -> SmtCoreBuilder {
        self.l1d_sharing = sharing;
        self
    }

    /// Sets the branch-predictor table sharing mode.
    pub fn bp_sharing(mut self, sharing: Sharing) -> SmtCoreBuilder {
        self.bp_sharing = sharing;
        self
    }

    /// Attaches a workload trace to a hardware thread.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is outside the configured SMT width.
    pub fn thread(mut self, thread: ThreadId, trace: BoxedTrace) -> SmtCoreBuilder {
        assert!(
            thread.index() < self.smt_width,
            "thread {thread} out of range for an SMT-{} core (set smt_width first)",
            self.smt_width
        );
        self.traces[thread.index()] = Some(trace);
        self
    }

    /// Builds the core.
    ///
    /// # Panics
    ///
    /// Panics if the core configuration fails validation, or if an explicit
    /// static partition does not cover exactly the configured SMT width.
    pub fn build(self) -> SmtCore {
        self.cfg.validate().expect("invalid core configuration");
        let partition =
            self.partition.unwrap_or_else(|| PartitionPolicy::equal_n(&self.cfg, self.smt_width));
        if let Some(covered) = partition.threads() {
            assert!(
                covered == self.smt_width,
                "partition covers {covered} threads but the core has {}",
                self.smt_width
            );
        }
        let mut hier_cfg = HierarchyConfig::from_core(&self.cfg);
        hier_cfg.threads = self.smt_width;
        hier_cfg.l1i_sharing = self.l1i_sharing;
        hier_cfg.l1d_sharing = self.l1d_sharing;
        let mem = MemoryHierarchy::new(hier_cfg);
        let bp = BranchPredictor::with_threads(self.cfg.branch, self.bp_sharing, self.smt_width);
        let mut threads: Vec<ThreadState> =
            (0..self.smt_width).map(|_| ThreadState::new()).collect();
        for (state, trace) in threads.iter_mut().zip(self.traces) {
            state.trace = trace;
        }
        SmtCore {
            cfg: self.cfg,
            mem,
            bp,
            fetch_policy: self.fetch_policy,
            scheduler: FetchScheduler::new(),
            partition,
            now: 0,
            next_id: 0,
            threads,
            incomplete: IdSet::default(),
            commit_preference: 0,
            total_cycles_run: 0,
            scratch_ready: Vec::new(),
            scratch_blocks: Vec::new(),
            scratch_squashed: Vec::new(),
            scratch_in_flight: Vec::new(),
            scratch_active: Vec::new(),
        }
    }
}

impl SmtCore {
    /// Convenience constructor: baseline core with the given traces.
    pub fn baseline(cfg: CoreConfig, t0: BoxedTrace, t1: BoxedTrace) -> SmtCore {
        SmtCoreBuilder::new(cfg).thread(ThreadId::T0, t0).thread(ThreadId::T1, t1).build()
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Current partitioning policy.
    pub fn partition(&self) -> &PartitionPolicy {
        &self.partition
    }

    /// Number of hardware threads (SMT width) of this core.
    pub fn smt_width(&self) -> usize {
        self.threads.len()
    }

    /// Per-thread statistics.
    pub fn thread_stats(&self, thread: ThreadId) -> ThreadStats {
        self.threads[thread.index()].stats
    }

    /// Branch prediction statistics for a thread.
    pub fn branch_stats(&self, thread: ThreadId) -> BranchStats {
        self.bp.stats(thread)
    }

    /// Memory hierarchy statistics.
    pub fn memory_stats(&self) -> HierarchyStats {
        self.mem.stats()
    }

    /// MLP census for a thread: a histogram of outstanding-demand-miss counts
    /// sampled every cycle (Figure 7).
    pub fn mlp_census(&self, thread: ThreadId) -> &Histogram {
        &self.threads[thread.index()].mlp
    }

    /// Number of instructions committed by a thread so far.
    pub fn committed(&self, thread: ThreadId) -> u64 {
        self.threads[thread.index()].stats.committed
    }

    /// Total cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.total_cycles_run
    }

    /// Whether a thread has a workload attached.
    pub fn thread_active(&self, thread: ThreadId) -> bool {
        self.threads[thread.index()].active()
    }

    /// Resets all statistics (commit counts, MLP census, cache/branch stats)
    /// without disturbing microarchitectural state. Used at the end of the
    /// warm-up window.
    pub fn reset_stats(&mut self) {
        for t in &mut self.threads {
            t.stats = ThreadStats::default();
            t.mlp = Histogram::new(10);
        }
        self.bp.reset_stats();
        self.mem.reset_stats();
        self.total_cycles_run = 0;
    }

    /// Reprograms the ROB/LSQ limit registers (a Stretch mode change or a
    /// return to the baseline). Per §IV-C, the change is accompanied by a
    /// pipeline flush of both threads; set `flush` to `false` only for
    /// experiments that want to isolate the steady-state effect.
    pub fn set_partition(&mut self, partition: PartitionPolicy, flush: bool) {
        if let Some(covered) = partition.threads() {
            assert!(
                covered == self.threads.len(),
                "partition covers {covered} threads but the core has {}",
                self.threads.len()
            );
        }
        self.partition = partition;
        if flush {
            for thread in ThreadId::first_n(self.threads.len()) {
                self.flush_thread(thread, true);
            }
        }
    }

    /// Squashes all in-flight instructions of `thread`, queueing them for
    /// re-fetch, and stalls its fetch for the redirect penalty.
    fn flush_thread(&mut self, thread: ThreadId, mode_change: bool) {
        let penalty = self.cfg.pipeline_flush_cycles;
        let now = self.now;
        let mut squashed = std::mem::take(&mut self.scratch_squashed);
        squashed.clear();
        let t = &mut self.threads[thread.index()];
        for id in t.rob.ids.drain(..) {
            self.incomplete.remove(&id);
        }
        squashed.extend(t.rob.uops.drain(..));
        t.rob.status.clear();
        t.rob.completion.clear();
        t.rob.deps.clear();
        t.rob.mispredicted.clear();
        t.rob.in_lsq.clear();
        for f in t.fetch_buffer.drain(..) {
            self.incomplete.remove(&f.id);
            squashed.push(f.uop);
        }
        // Re-fetch the squashed instructions before pulling new ones from the
        // trace, so the committed instruction stream is unchanged.
        for uop in squashed.drain(..).rev() {
            t.replay.push_front(uop);
        }
        self.scratch_squashed = squashed;
        let t = &mut self.threads[thread.index()];
        t.lsq_occupancy = 0;
        t.last_writer = [None; NUM_LOGICAL_REGS];
        t.waiting_branch = None;
        t.next_completion = Cycle::MAX;
        t.issue_idle = false;
        t.fetch_stall_until = t.fetch_stall_until.max(now + penalty);
        if mode_change {
            t.stats.mode_change_flushes += 1;
        }
        self.mem.flush_thread(thread);
    }

    fn rob_limit(&self, thread: ThreadId) -> usize {
        self.partition.rob_limit(&self.cfg, thread)
    }

    fn lsq_limit(&self, thread: ThreadId) -> usize {
        self.partition.lsq_limit(&self.cfg, thread)
    }

    fn total_rob_occupancy(&self) -> usize {
        self.threads.iter().map(|t| t.rob.len()).sum()
    }

    fn total_lsq_occupancy(&self) -> usize {
        self.threads.iter().map(|t| t.lsq_occupancy).sum()
    }

    /// Advances the core by one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        self.total_cycles_run += 1;
        self.mem.tick(self.now);
        self.complete();
        self.commit();
        self.issue();
        self.dispatch();
        self.fetch();
        self.census();
    }

    /// Runs until `thread` has committed at least `instructions` more
    /// instructions, or `max_cycles` elapse. Returns the cycles spent.
    pub fn run_instructions(
        &mut self,
        thread: ThreadId,
        instructions: u64,
        max_cycles: u64,
    ) -> u64 {
        let target = self.committed(thread) + instructions;
        let start = self.now;
        while self.committed(thread) < target && self.now - start < max_cycles {
            self.step();
        }
        self.now - start
    }

    // ------------------------------------------------------------------
    // Pipeline stages
    // ------------------------------------------------------------------

    fn complete(&mut self) {
        let now = self.now;
        let penalty = self.cfg.pipeline_flush_cycles;
        for idx in 0..self.threads.len() {
            let mut resolved_branch: Option<u64> = None;
            let mut flush = false;
            {
                let t = &mut self.threads[idx];
                // Quiescence skip: no executing instruction of this thread can
                // finish before the watermark, so a scan would find nothing.
                if now < t.next_completion {
                    continue;
                }
                let mut next = Cycle::MAX;
                let mut completed_any = false;
                for i in 0..t.rob.len() {
                    if t.rob.status[i] != EntryStatus::Issued {
                        continue;
                    }
                    let c = t.rob.completion[i];
                    if c <= now {
                        t.rob.status[i] = EntryStatus::Completed;
                        self.incomplete.remove(&t.rob.ids[i]);
                        completed_any = true;
                        if t.rob.mispredicted[i] {
                            flush = true;
                            resolved_branch = Some(t.rob.ids[i]);
                        }
                    } else {
                        next = next.min(c);
                    }
                }
                t.next_completion = next;
                if completed_any {
                    // A completion can wake same-thread dependents.
                    t.issue_idle = false;
                }
                if flush {
                    t.stats.branch_flushes += 1;
                    t.fetch_stall_until = t.fetch_stall_until.max(now + penalty);
                    if let (Some(bid), Some(wid)) = (resolved_branch, t.waiting_branch) {
                        if bid == wid {
                            t.waiting_branch = None;
                        }
                    }
                }
            }
        }
    }

    fn commit(&mut self) {
        let threads = self.threads.len();
        let width = self.cfg.commit_width;
        let mut committed = 0usize;
        let first = self.commit_preference;
        self.commit_preference = (self.commit_preference + 1) % threads;
        for offset in 0..threads {
            let idx = (first + offset) % threads;
            while committed < width {
                let Some(&head) = self.threads[idx].rob.status.front() else { break };
                if head != EntryStatus::Completed {
                    break;
                }
                let (uop, in_lsq) = self.threads[idx].rob.pop_front().expect("front checked");
                let thread = ThreadId::from_index(idx);
                if in_lsq {
                    self.threads[idx].lsq_occupancy =
                        self.threads[idx].lsq_occupancy.saturating_sub(1);
                }
                match uop.kind {
                    OpKind::Store => {
                        let mem = uop.mem.expect("store carries an address");
                        self.mem.store(thread, mem.addr, uop.pc, self.now);
                        self.threads[idx].stats.stores += 1;
                    }
                    OpKind::Load => self.threads[idx].stats.loads += 1,
                    OpKind::Branch => self.threads[idx].stats.branches += 1,
                    _ => {}
                }
                self.threads[idx].stats.committed += 1;
                committed += 1;
            }
        }
    }

    fn issue(&mut self) {
        let mut issue_budget = self.cfg.issue_width;
        let mut fu_int = self.cfg.fus.int_alu;
        let mut fu_mul = self.cfg.fus.int_mul;
        let mut fu_fp = self.cfg.fus.fpu;
        let mut fu_lsu = self.cfg.fus.lsu;
        let threads = self.threads.len();
        let first = (self.now % threads as u64) as usize;
        let now = self.now;

        for offset in 0..threads {
            let idx = (first + offset) % threads;
            if issue_budget == 0 {
                break;
            }
            let thread = ThreadId::from_index(idx);
            // Quiescence skip: the last scan found nothing ready and no wake
            // event (dispatch, same-thread completion, flush) has happened
            // since, so this scan would find nothing too.
            if self.threads[idx].issue_idle {
                continue;
            }
            let mut mshr_blocked = false;
            // Collect the positions of ready entries first to keep the borrow
            // checker happy, then issue them in age order. The position list
            // is a reusable scratch buffer — one was allocated per thread per
            // cycle before. The scan walks only the status and deps queues.
            let mut ready_positions = std::mem::take(&mut self.scratch_ready);
            ready_positions.clear();
            {
                let t = &self.threads[idx];
                ready_positions.extend(
                    t.rob
                        .status
                        .iter()
                        .zip(t.rob.deps.iter())
                        .enumerate()
                        .filter(|(_, (&s, _))| s == EntryStatus::Dispatched)
                        .filter(|(_, (_, deps))| {
                            deps.iter().all(|&dep| dep == NO_DEP || !self.incomplete.contains(&dep))
                        })
                        .map(|(i, _)| i),
                );
            }
            if ready_positions.is_empty() {
                // Only an empty scan arms the skip; budget- or FU-starved
                // leftovers must be retried next cycle.
                self.threads[idx].issue_idle = true;
                self.scratch_ready = ready_positions;
                continue;
            }

            for &pos in &ready_positions {
                if issue_budget == 0 {
                    break;
                }
                let kind = self.threads[idx].rob.uops[pos].kind;
                let fu = match kind {
                    OpKind::IntAlu | OpKind::Branch => &mut fu_int,
                    OpKind::IntMul => &mut fu_mul,
                    OpKind::Fp => &mut fu_fp,
                    OpKind::Load | OpKind::Store => &mut fu_lsu,
                };
                if *fu == 0 {
                    continue;
                }
                if kind == OpKind::Load && mshr_blocked {
                    continue;
                }
                let completion = match kind {
                    OpKind::Load => {
                        let (addr, pc) = {
                            let uop = &self.threads[idx].rob.uops[pos];
                            (uop.mem.expect("load carries an address").addr, uop.pc)
                        };
                        match self.mem.load(thread, addr, pc, now) {
                            LoadResult::Hit { latency } => now + latency,
                            LoadResult::Miss { completion } => completion,
                            LoadResult::NoMshr => {
                                // Retry next cycle; stop trying further loads
                                // for this thread to preserve ordering.
                                mshr_blocked = true;
                                continue;
                            }
                        }
                    }
                    OpKind::Store => now + 1,
                    other => now + other.exec_latency(),
                };
                let t = &mut self.threads[idx];
                t.rob.status[pos] = EntryStatus::Issued;
                t.rob.completion[pos] = completion;
                t.next_completion = t.next_completion.min(completion);
                *fu -= 1;
                issue_budget -= 1;
            }
            self.scratch_ready = ready_positions;
        }
    }

    fn dispatch(&mut self) {
        let threads = self.threads.len();
        let width = self.cfg.dispatch_width;
        let mut budget = width;
        // Prefer the thread with fewest in-flight instructions (ICOUNT
        // spirit); ties go to the lowest thread index.
        let mut first = 0;
        for idx in 1..threads {
            if self.threads[idx].in_flight() < self.threads[first].in_flight() {
                first = idx;
            }
        }
        // Hoisted once per dispatch: each push below updates the totals
        // incrementally instead of re-summing every thread per instruction.
        let mut total_rob = self.total_rob_occupancy();
        let mut total_lsq = self.total_lsq_occupancy();
        for offset in 0..threads {
            let idx = (first + offset) % threads;
            let thread = ThreadId::from_index(idx);
            // The partition does not change mid-dispatch, so the per-thread
            // limits are loop invariants; only the occupancies move.
            let rob_limit = self.rob_limit(thread);
            let lsq_limit = self.lsq_limit(thread);
            let enforce_total = self.partition.enforce_total_capacity();
            while budget > 0 {
                let t = &mut self.threads[idx];
                let Some(front) = t.fetch_buffer.front() else { break };
                if t.rob.len() >= rob_limit {
                    break;
                }
                if enforce_total && total_rob >= self.cfg.rob_capacity {
                    break;
                }
                let is_mem = front.uop.is_mem();
                if is_mem {
                    if t.lsq_occupancy >= lsq_limit {
                        break;
                    }
                    if enforce_total && total_lsq >= self.cfg.lsq_capacity {
                        break;
                    }
                }
                let f = t.fetch_buffer.pop_front().expect("front checked");
                let mut deps = [NO_DEP, NO_DEP];
                for (slot, src) in f.uop.srcs.iter().enumerate() {
                    if let Some(reg) = src {
                        if let Some(id) =
                            t.last_writer[*reg as usize].filter(|id| self.incomplete.contains(id))
                        {
                            deps[slot] = id;
                        }
                    }
                }
                if let Some(dst) = f.uop.dst {
                    t.last_writer[dst as usize] = Some(f.id);
                }
                if is_mem {
                    t.lsq_occupancy += 1;
                    total_lsq += 1;
                }
                t.rob.push_back(f.id, f.uop, deps, f.mispredicted, is_mem);
                total_rob += 1;
                // A fresh entry may be immediately ready: wake the issue scan.
                t.issue_idle = false;
                budget -= 1;
            }
        }
    }

    fn fetch(&mut self) {
        let threads = self.threads.len();
        let mut in_flight = std::mem::take(&mut self.scratch_in_flight);
        let mut active = std::mem::take(&mut self.scratch_active);
        in_flight.clear();
        in_flight.extend(self.threads.iter().map(ThreadState::in_flight));
        active.clear();
        active.extend(self.threads.iter().map(ThreadState::active));
        let preferred = self.scheduler.select(self.fetch_policy, &in_flight, &active);
        self.scratch_in_flight = in_flight;
        self.scratch_active = active;
        let Some(preferred) = preferred else {
            return;
        };
        // Try the preferred thread; if it cannot fetch a single instruction
        // this cycle, switch to the next active thread in cyclic index order
        // (the ICOUNT switching rule; "the other thread" on the pair).
        if self.fetch_thread(preferred) > 0 {
            return;
        }
        for offset in 1..threads {
            let idx = (preferred.index() + offset) % threads;
            if self.threads[idx].active() && self.fetch_thread(ThreadId::from_index(idx)) > 0 {
                return;
            }
        }
    }

    /// Fetches up to the front-end limits for one thread. Returns the number
    /// of micro-ops accepted into the fetch buffer.
    fn fetch_thread(&mut self, thread: ThreadId) -> usize {
        let idx = thread.index();
        let now = self.now;
        if !self.threads[idx].active() {
            return 0;
        }
        if self.threads[idx].waiting_branch.is_some() || self.threads[idx].fetch_stall_until > now {
            return 0;
        }
        let width = self.cfg.fetch_width;
        let max_blocks = self.cfg.fetch_blocks_per_cycle;
        let max_branches = self.cfg.fetch_branches_per_cycle;
        let buffer_cap = self.cfg.fetch_buffer_entries;
        let hit_latency = self.cfg.l1i.hit_latency;

        let mut fetched = 0usize;
        let mut branches = 0usize;
        let mut blocks = std::mem::take(&mut self.scratch_blocks);
        blocks.clear();

        while fetched < width {
            if self.threads[idx].fetch_buffer.len() >= buffer_cap {
                break;
            }
            // Pull the next micro-op: pending slot, then replay queue, then trace.
            let uop = {
                let t = &mut self.threads[idx];
                if let Some(p) = t.pending_fetch.take() {
                    p
                } else if let Some(r) = t.replay.pop_front() {
                    r
                } else {
                    t.trace.as_mut().expect("active thread has a trace").next_op()
                }
            };

            // Instruction-cache block constraint.
            let block = uop.pc >> 6;
            if !blocks.contains(&block) {
                if blocks.len() >= max_blocks {
                    self.threads[idx].pending_fetch = Some(uop);
                    break;
                }
                let latency = self.mem.fetch(thread, uop.pc, now);
                blocks.push(block);
                if latency > hit_latency {
                    // I-cache miss: this instruction (and the rest of the
                    // block) arrives when the fill completes.
                    self.threads[idx].pending_fetch = Some(uop);
                    self.threads[idx].fetch_stall_until = now + latency;
                    break;
                }
            }

            // Branch constraints and prediction.
            let mut mispredicted = false;
            if uop.is_branch() {
                if branches >= max_branches {
                    self.threads[idx].pending_fetch = Some(uop);
                    break;
                }
                branches += 1;
                let info = uop.branch.expect("branch carries branch info");
                let pred: Prediction =
                    self.bp.predict(thread, uop.pc, info.is_call, info.is_return);
                mispredicted = self.bp.update(
                    thread,
                    uop.pc,
                    info.taken,
                    info.target,
                    info.is_call,
                    info.is_return,
                    pred,
                );
            }

            let id = self.next_id;
            self.next_id += 1;
            self.incomplete.insert(id);
            self.threads[idx].fetch_buffer.push_back(FetchedOp { id, uop, mispredicted });
            fetched += 1;

            if mispredicted {
                // Fetch stalls until the branch resolves (plus the redirect
                // penalty, applied at resolution time in `complete`).
                self.threads[idx].waiting_branch = Some(id);
                break;
            }
        }
        self.scratch_blocks = blocks;
        fetched
    }

    fn census(&mut self) {
        for thread in ThreadId::first_n(self.threads.len()) {
            if self.threads[thread.index()].active() {
                let outstanding = self.mem.outstanding_misses(thread);
                self.threads[thread.index()].mlp.record(outstanding);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_model::uop::BranchInfo;
    use sim_model::WorkloadClass;

    /// A trivial workload: a tight loop of independent ALU ops.
    struct AluLoop {
        pc: u64,
        reg: u8,
    }

    impl AluLoop {
        fn boxed() -> BoxedTrace {
            Box::new(AluLoop { pc: 0x1000, reg: 0 })
        }
    }

    impl TraceGenerator for AluLoop {
        fn next_op(&mut self) -> MicroOp {
            self.pc = 0x1000 + (self.pc + 4 - 0x1000) % 256;
            self.reg = (self.reg + 1) % 32;
            MicroOp::alu(self.pc, OpKind::IntAlu, [None, None], Some(self.reg))
        }
        fn name(&self) -> &str {
            "alu-loop"
        }
        fn class(&self) -> WorkloadClass {
            WorkloadClass::Batch
        }
        fn reset(&mut self) {
            self.pc = 0x1000;
        }
    }

    /// A pointer-chasing workload: every load depends on the previous one and
    /// misses the caches (large random working set).
    struct PointerChase {
        pc: u64,
        addr: u64,
        rng: sim_model::SimRng,
    }

    impl PointerChase {
        fn boxed(seed: u64) -> BoxedTrace {
            Box::new(PointerChase {
                pc: 0x2000,
                addr: 0x10_0000,
                rng: sim_model::SimRng::new(seed),
            })
        }
    }

    impl TraceGenerator for PointerChase {
        fn next_op(&mut self) -> MicroOp {
            self.pc = 0x2000 + (self.pc + 4 - 0x2000) % 128;
            self.addr = 0x10_0000 + self.rng.below(1 << 26) * 64;
            // dst reg 1, src reg 1: each load depends on the previous load.
            MicroOp::load(self.pc, self.addr, [Some(1), None], Some(1))
        }
        fn name(&self) -> &str {
            "pointer-chase"
        }
        fn class(&self) -> WorkloadClass {
            WorkloadClass::LatencySensitive
        }
        fn reset(&mut self) {}
    }

    /// Independent random loads over a large working set: high MLP potential.
    struct StreamingLoads {
        pc: u64,
        rng: sim_model::SimRng,
        reg: u8,
    }

    impl StreamingLoads {
        fn boxed(seed: u64) -> BoxedTrace {
            Box::new(StreamingLoads { pc: 0x3000, rng: sim_model::SimRng::new(seed), reg: 0 })
        }
    }

    impl TraceGenerator for StreamingLoads {
        fn next_op(&mut self) -> MicroOp {
            self.pc = 0x3000 + (self.pc + 4 - 0x3000) % 128;
            self.reg = (self.reg + 1) % 32;
            let addr = 0x200_0000 + self.rng.below(1 << 26) * 64;
            MicroOp::load(self.pc, addr, [None, None], Some(self.reg))
        }
        fn name(&self) -> &str {
            "streaming-loads"
        }
        fn class(&self) -> WorkloadClass {
            WorkloadClass::Batch
        }
        fn reset(&mut self) {}
    }

    fn single_thread_core(trace: BoxedTrace) -> SmtCore {
        SmtCoreBuilder::new(CoreConfig::default()).thread(ThreadId::T0, trace).build()
    }

    #[test]
    fn alu_loop_reaches_high_ipc() {
        let mut core = single_thread_core(AluLoop::boxed());
        core.run_instructions(ThreadId::T0, 20_000, 200_000);
        let ipc = core.committed(ThreadId::T0) as f64 / core.cycles() as f64;
        assert!(ipc > 2.0, "independent ALU loop should exceed 2 IPC, got {ipc:.2}");
    }

    #[test]
    fn pointer_chase_is_memory_latency_bound() {
        let mut core = single_thread_core(PointerChase::boxed(1));
        core.run_instructions(ThreadId::T0, 2_000, 2_000_000);
        let ipc = core.committed(ThreadId::T0) as f64 / core.cycles() as f64;
        assert!(ipc < 0.05, "dependent misses should serialize at memory latency, got {ipc:.3}");
        // MLP census: almost never more than one outstanding miss.
        let mlp = core.mlp_census(ThreadId::T0);
        assert!(mlp.fraction_at_least(2) < 0.05);
    }

    #[test]
    fn independent_loads_expose_mlp() {
        let mut core = single_thread_core(StreamingLoads::boxed(2));
        core.run_instructions(ThreadId::T0, 5_000, 2_000_000);
        let mlp = core.mlp_census(ThreadId::T0);
        assert!(
            mlp.fraction_at_least(2) > 0.3,
            "independent misses should overlap (fraction with >=2 in flight: {:.2})",
            mlp.fraction_at_least(2)
        );
        let chasing_core = {
            let mut c = single_thread_core(PointerChase::boxed(3));
            c.run_instructions(ThreadId::T0, 2_000, 2_000_000);
            c
        };
        let stream_ipc = core.committed(ThreadId::T0) as f64 / core.cycles() as f64;
        let chase_ipc = chasing_core.committed(ThreadId::T0) as f64 / chasing_core.cycles() as f64;
        assert!(stream_ipc > 2.0 * chase_ipc, "MLP should buy substantial IPC");
    }

    #[test]
    fn rob_capacity_bounds_mlp_workload_performance() {
        // The same streaming workload with a 16-entry ROB partition must be
        // substantially slower than with a 96-entry partition: this is the
        // Figure 6 mechanism.
        let cfg = CoreConfig::default();
        let run = |rob: usize| -> f64 {
            let mut core = SmtCoreBuilder::new(cfg)
                .partition(PartitionPolicy::Static { rob: vec![rob, rob], lsq: vec![32, 32] })
                .thread(ThreadId::T0, StreamingLoads::boxed(7))
                .build();
            core.run_instructions(ThreadId::T0, 5_000, 2_000_000);
            core.committed(ThreadId::T0) as f64 / core.cycles() as f64
        };
        let small = run(12);
        let large = run(96);
        assert!(
            large > small * 1.5,
            "a larger ROB should substantially help an MLP-rich workload (small={small:.3}, large={large:.3})"
        );
    }

    #[test]
    fn colocation_slows_both_threads() {
        let cfg = CoreConfig::default();
        let solo_ipc = {
            let mut core = single_thread_core(StreamingLoads::boxed(11));
            core.run_instructions(ThreadId::T0, 5_000, 2_000_000);
            core.committed(ThreadId::T0) as f64 / core.cycles() as f64
        };
        let mut core = SmtCore::baseline(cfg, StreamingLoads::boxed(11), AluLoop::boxed());
        // Run until both threads commit a workload's worth.
        for _ in 0..200_000 {
            core.step();
            if core.committed(ThreadId::T0) >= 5_000 && core.committed(ThreadId::T1) >= 5_000 {
                break;
            }
        }
        let t0_cycles = core.cycles() as f64;
        let colocated_ipc = core.committed(ThreadId::T0) as f64 / t0_cycles;
        assert!(core.committed(ThreadId::T1) > 0, "both threads must make progress");
        assert!(
            colocated_ipc <= solo_ipc * 1.02,
            "colocation should not speed up a thread (solo={solo_ipc:.3}, colocated={colocated_ipc:.3})"
        );
    }

    #[test]
    fn partition_change_flushes_and_continues() {
        let cfg = CoreConfig::default();
        let mut core = SmtCore::baseline(cfg, AluLoop::boxed(), StreamingLoads::boxed(5));
        for _ in 0..1_000 {
            core.step();
        }
        let before = core.committed(ThreadId::T0);
        core.set_partition(PartitionPolicy::rob_split(&cfg, 56, 136), true);
        assert_eq!(core.thread_stats(ThreadId::T0).mode_change_flushes, 1);
        for _ in 0..5_000 {
            core.step();
        }
        assert!(core.committed(ThreadId::T0) > before, "thread must continue after a mode change");
        assert_eq!(core.partition().rob_limit(&cfg, ThreadId::T1), 136);
    }

    #[test]
    fn total_committed_instructions_are_exact_after_flush() {
        // A mode-change flush must not lose or duplicate instructions: the
        // committed count keeps increasing monotonically and the stream stays
        // consistent (every committed op is counted exactly once).
        let cfg = CoreConfig::default();
        let mut core = SmtCore::baseline(cfg, AluLoop::boxed(), AluLoop::boxed());
        let mut last = 0;
        for i in 0..3_000 {
            core.step();
            if i % 500 == 0 {
                let skew = if (i / 500) % 2 == 0 { (56, 136) } else { (96, 96) };
                core.set_partition(PartitionPolicy::rob_split(&cfg, skew.0, skew.1), true);
            }
            let c = core.committed(ThreadId::T0);
            assert!(c >= last);
            last = c;
        }
        assert!(last > 0);
    }

    #[test]
    fn branch_heavy_workload_pays_flush_penalties() {
        /// Branches with random outcomes force mispredictions.
        struct RandomBranches {
            pc: u64,
            rng: sim_model::SimRng,
        }
        impl TraceGenerator for RandomBranches {
            fn next_op(&mut self) -> MicroOp {
                self.pc += 4;
                if self.pc.is_multiple_of(16) {
                    let taken = self.rng.chance(0.5);
                    MicroOp::branch(
                        self.pc,
                        BranchInfo {
                            taken,
                            target: self.pc + 64,
                            is_call: false,
                            is_return: false,
                        },
                        [None, None],
                    )
                } else {
                    MicroOp::alu(self.pc, OpKind::IntAlu, [None, None], Some(1))
                }
            }
            fn name(&self) -> &str {
                "random-branches"
            }
            fn class(&self) -> WorkloadClass {
                WorkloadClass::Batch
            }
            fn reset(&mut self) {}
        }
        let mut core = single_thread_core(Box::new(RandomBranches {
            pc: 0x4000,
            rng: sim_model::SimRng::new(9),
        }));
        core.run_instructions(ThreadId::T0, 10_000, 500_000);
        assert!(core.thread_stats(ThreadId::T0).branch_flushes > 100);
        let ipc = core.committed(ThreadId::T0) as f64 / core.cycles() as f64;
        let mut alu_core = single_thread_core(AluLoop::boxed());
        alu_core.run_instructions(ThreadId::T0, 10_000, 500_000);
        let alu_ipc = alu_core.committed(ThreadId::T0) as f64 / alu_core.cycles() as f64;
        assert!(ipc < alu_ipc, "mispredictions must cost performance");
    }

    #[test]
    fn smt4_core_runs_all_four_threads() {
        let cfg = CoreConfig::default();
        let mut builder = SmtCoreBuilder::new(cfg).smt_width(4);
        for t in ThreadId::first_n(4) {
            builder = builder.thread(t, AluLoop::boxed());
        }
        let mut core = builder.build();
        assert_eq!(core.smt_width(), 4);
        assert_eq!(core.partition().rob_limit(&cfg, ThreadId::from_index(3)), 48);
        for _ in 0..20_000 {
            core.step();
        }
        for t in ThreadId::first_n(4) {
            assert!(core.committed(t) > 1_000, "thread {t} starved: {}", core.committed(t));
        }
    }

    #[test]
    fn smt4_runs_are_deterministic() {
        let run = || {
            let cfg = CoreConfig::default();
            let mut core = SmtCoreBuilder::new(cfg)
                .smt_width(4)
                .thread(ThreadId::T0, PointerChase::boxed(3))
                .thread(ThreadId::T1, StreamingLoads::boxed(5))
                .thread(ThreadId::from_index(2), AluLoop::boxed())
                .thread(ThreadId::from_index(3), StreamingLoads::boxed(7))
                .build();
            for _ in 0..30_000 {
                core.step();
            }
            ThreadId::first_n(4).map(|t| core.committed(t)).collect::<Vec<u64>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical SMT4 runs must commit identical counts");
        assert!(a.iter().all(|&c| c > 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_thread_beyond_width() {
        let _ = SmtCoreBuilder::new(CoreConfig::default())
            .thread(ThreadId::from_index(2), AluLoop::boxed());
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn builder_rejects_mismatched_partition_width() {
        let cfg = CoreConfig::default();
        let _ = SmtCoreBuilder::new(cfg)
            .smt_width(4)
            .partition(PartitionPolicy::equal(&cfg)) // 2-thread split on a 4-thread core
            .build();
    }

    #[test]
    fn inactive_thread_is_never_scheduled() {
        let mut core = single_thread_core(AluLoop::boxed());
        core.run_instructions(ThreadId::T0, 1_000, 100_000);
        assert_eq!(core.committed(ThreadId::T1), 0);
        assert!(!core.thread_active(ThreadId::T1));
    }

    #[test]
    fn reset_stats_preserves_progress() {
        let mut core = single_thread_core(AluLoop::boxed());
        core.run_instructions(ThreadId::T0, 1_000, 100_000);
        core.reset_stats();
        assert_eq!(core.committed(ThreadId::T0), 0);
        assert_eq!(core.cycles(), 0);
        core.run_instructions(ThreadId::T0, 1_000, 100_000);
        assert!(core.committed(ThreadId::T0) >= 1_000);
    }
}
