//! Cycle-level dual-thread SMT out-of-order core model for the Stretch
//! (HPCA'19) reproduction.
//!
//! The crate provides:
//!
//! * [`core::SmtCore`] / [`core::SmtCoreBuilder`] — the Table II core:
//!   6-wide out-of-order pipeline, hybrid branch prediction, shared or
//!   private L1 caches, a 192-entry ROB and 64-entry LSQ with per-thread
//!   limit/usage partition registers, and ICOUNT/round-robin/fetch-throttled
//!   thread selection.
//! * [`partition::PartitionPolicy`] — the limit-register programming model
//!   that Stretch's control register drives.
//! * [`fetch::FetchPolicy`] — ICOUNT, round-robin and 1:M fetch throttling.
//! * [`runner`] — warm-up + measurement window execution and the UIPC figure
//!   of merit, for stand-alone and colocated runs.
//! * [`resource_study`] — the "share exactly one resource" configurations of
//!   Figures 4 and 5.
//!
//! # Example
//!
//! ```
//! use cpu_sim::{run_standalone, SimLength};
//! use sim_model::{CoreConfig, MicroOp, OpKind, TraceGenerator, WorkloadClass};
//!
//! struct Spin(u64);
//! impl TraceGenerator for Spin {
//!     fn next_op(&mut self) -> MicroOp {
//!         self.0 += 4;
//!         MicroOp::alu(0x1000 + self.0 % 256, OpKind::IntAlu, [None, None], Some(1))
//!     }
//!     fn name(&self) -> &str { "spin" }
//!     fn class(&self) -> WorkloadClass { WorkloadClass::Batch }
//!     fn reset(&mut self) { self.0 = 0; }
//! }
//!
//! let cfg = CoreConfig::default();
//! let result = run_standalone(&cfg, Box::new(Spin(0)), SimLength::quick());
//! assert!(result.uipc > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod core;
pub mod fetch;
pub mod partition;
pub mod resource_study;
pub mod runner;

pub use crate::core::{SmtCore, SmtCoreBuilder, ThreadStats};
pub use branch::{BranchPredictor, BranchStats, Prediction};
pub use fetch::{FetchPolicy, FetchScheduler};
pub use partition::PartitionPolicy;
pub use resource_study::StudiedResource;
pub use runner::{
    run_core, run_pair, run_setup, run_standalone, run_standalone_with_rob, ColocationResult,
    CoreSetup, SimLength, ThreadRunResult,
};
