//! Cycle-level SMT-T out-of-order core model for the Stretch (HPCA'19)
//! reproduction.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! The crate provides:
//!
//! * [`core::SmtCore`] / [`core::SmtCoreBuilder`] — the Table II core,
//!   generalised to T hardware threads (T ≥ 1, default the paper's SMT
//!   pair): 6-wide out-of-order pipeline, hybrid branch prediction, shared
//!   or private L1 caches, a 192-entry ROB and 64-entry LSQ with per-thread
//!   limit/usage partition registers, and ICOUNT/round-robin/fetch-throttled
//!   thread selection.
//! * [`partition::PartitionPolicy`] — the limit-register programming model
//!   that Stretch's control register drives, as per-thread share vectors.
//! * [`fetch::FetchPolicy`] — ICOUNT, round-robin and 1:M fetch throttling.
//! * [`policy`] — the [`ColocationPolicy`] trait every resource-allocation
//!   scheme (Stretch and all baselines) implements, parameterised by a
//!   [`ColocationTopology`] (SMT width + which thread is the
//!   latency-sensitive one), plus the static [`EqualPartition`] /
//!   [`PrivateCore`] policies.
//! * [`allocation`] — the [`AllocationPolicy`] layer *above* colocation:
//!   which threads land on which core of an M-core server, with
//!   [`Greedy`] / [`RoundRobin`] / [`SymbiosisAware`] reference allocators
//!   and the [`ServerScenario`] runner composing both layers.
//! * [`scenario`] — the [`Scenario`] builder, the single entry point for
//!   stand-alone and colocated runs under any policy.
//! * [`runner`] — the measurement loop ([`run_core`]) and the UIPC figure of
//!   merit the scenario layer is built on.
//! * [`resource_study`] — the "share exactly one resource" configurations of
//!   Figures 4 and 5, themselves policies.
//!
//! # Example
//!
//! ```
//! use cpu_sim::{Scenario, SimLength};
//! use sim_model::{CoreConfig, MicroOp, OpKind, TraceGenerator, WorkloadClass};
//!
//! struct Spin(u64);
//! impl TraceGenerator for Spin {
//!     fn next_op(&mut self) -> MicroOp {
//!         self.0 += 4;
//!         MicroOp::alu(0x1000 + self.0 % 256, OpKind::IntAlu, [None, None], Some(1))
//!     }
//!     fn name(&self) -> &str { "spin" }
//!     fn class(&self) -> WorkloadClass { WorkloadClass::Batch }
//!     fn reset(&mut self) { self.0 = 0; }
//! }
//!
//! let result = Scenario::standalone_trace(Box::new(Spin(0)))
//!     .length(SimLength::quick())
//!     .run_thread0();
//! assert!(result.uipc > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod branch;
pub mod core;
pub mod fetch;
pub mod partition;
pub mod policy;
pub mod resource_study;
pub mod runner;
pub mod scenario;

pub use crate::core::{SmtCore, SmtCoreBuilder, ThreadStats};
pub use allocation::{
    AllocationPolicy, Greedy, Placement, RoundRobin, ServerRunResult, ServerScenario, ServerSpec,
    ServerThread, SymbiosisAware, ThreadSpec,
};
pub use branch::{BranchPredictor, BranchStats, Prediction};
pub use fetch::{FetchPolicy, FetchScheduler};
pub use partition::PartitionPolicy;
pub use policy::{
    ColocationPolicy, ColocationTopology, EqualPartition, PolicyAction, PrivateCore, QosObservation,
};
pub use resource_study::StudiedResource;
pub use runner::{run_core, ColocationResult, CoreSetup, SimLength, ThreadRunResult};
pub use scenario::{colocation_seed, pair_seed, Scenario};
