//! SMT fetch (thread selection) policies.
//!
//! The baseline core uses ICOUNT [Tullsen et al., ISCA'96]: each cycle the
//! thread with the fewest in-flight instructions is selected for fetch,
//! decode and dispatch; if that thread cannot make use of the full width the
//! core switches to the other thread (§V-A). Fetch throttling (the Figure 12
//! baseline) instead grants the co-runner `M` fetch cycles for every cycle
//! granted to the latency-sensitive thread.

use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder, ThreadId};

/// Thread-selection policy for the shared front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchPolicy {
    /// Select the thread with the fewest in-flight instructions (ICOUNT).
    ICount,
    /// Alternate between threads every cycle regardless of occupancy.
    RoundRobin,
    /// Fetch throttling with ratio 1:M — the `throttled` thread receives one
    /// fetch cycle for every `ratio` cycles granted to the other thread.
    ///
    /// Within its granted cycles each thread is still subject to ICOUNT-style
    /// switching if it cannot fetch.
    Throttled {
        /// The thread whose fetch bandwidth is restricted (the
        /// latency-sensitive thread in the Figure 12 study).
        throttled: ThreadId,
        /// `M` in the 1:M ratio (must be at least 1).
        ratio: u32,
    },
}

impl FetchPolicy {
    /// Fetch-throttling policy restricting `throttled` to a 1:`ratio` share.
    ///
    /// # Panics
    ///
    /// Panics if `ratio == 0`.
    pub fn throttled(throttled: ThreadId, ratio: u32) -> FetchPolicy {
        assert!(ratio >= 1, "fetch throttling ratio must be at least 1");
        FetchPolicy::Throttled { throttled, ratio }
    }
}

impl CanonicalKey for FetchPolicy {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        match self {
            FetchPolicy::ICount => {
                enc.tag(0);
            }
            FetchPolicy::RoundRobin => {
                enc.tag(1);
            }
            FetchPolicy::Throttled { throttled, ratio } => {
                enc.tag(2).field(throttled).u64(u64::from(*ratio));
            }
        }
    }
}

/// Runtime state of the fetch policy (cycle counters for round-robin and
/// throttling schedules).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FetchScheduler {
    cycle: u64,
    /// Rotation counter for the non-throttled group under
    /// [`FetchPolicy::Throttled`]; advances only when a non-throttled thread
    /// is granted, so the batch threads share their cycles fairly.
    batch_rotation: u64,
}

impl FetchScheduler {
    /// Creates a fresh scheduler.
    pub fn new() -> FetchScheduler {
        FetchScheduler::default()
    }

    /// Selects the preferred thread for this cycle.
    ///
    /// `in_flight` is the number of in-flight instructions per thread (fetch
    /// buffer plus ROB occupancy), used by ICOUNT. `active` marks threads that
    /// actually have a workload attached (single-thread runs only activate
    /// one). Both slices are indexed by [`ThreadId::index`] and must agree on
    /// the SMT width. The core may still fall back to another thread when the
    /// preferred one cannot fetch this cycle.
    pub fn select(
        &mut self,
        policy: FetchPolicy,
        in_flight: &[usize],
        active: &[bool],
    ) -> Option<ThreadId> {
        debug_assert_eq!(in_flight.len(), active.len());
        let threads = active.len();
        self.cycle += 1;
        let active_count = active.iter().filter(|&&a| a).count();
        if active_count == 0 {
            return None;
        }
        if active_count == 1 {
            let only = active.iter().position(|&a| a).expect("one thread is active");
            return Some(ThreadId::from_index(only));
        }
        let preferred = match policy {
            FetchPolicy::ICount => {
                // Fewest in-flight instructions wins; ties go to the lowest
                // thread index (T0 on the classic pair).
                let mut best = None;
                for (i, &count) in in_flight.iter().enumerate() {
                    if !active[i] {
                        continue;
                    }
                    best = match best {
                        Some((_, best_count)) if best_count <= count => best,
                        _ => Some((i, count)),
                    };
                }
                best.expect("at least two threads are active").0
            }
            FetchPolicy::RoundRobin => {
                // Rotate through the thread slots, skipping inactive ones.
                let start = (self.cycle % threads as u64) as usize;
                (0..threads)
                    .map(|offset| (start + offset) % threads)
                    .find(|&i| active[i])
                    .expect("at least two threads are active")
            }
            FetchPolicy::Throttled { throttled, ratio } => {
                // Out of every (ratio + 1) cycles, exactly one goes to the
                // throttled thread; the rest rotate through the non-throttled
                // group.
                let slot = self.cycle % (u64::from(ratio) + 1);
                if slot == 0 && active[throttled.index()] {
                    throttled.index()
                } else {
                    let batch: Vec<usize> =
                        (0..threads).filter(|&i| i != throttled.index() && active[i]).collect();
                    if batch.is_empty() {
                        throttled.index()
                    } else {
                        let pick = batch[(self.batch_rotation % batch.len() as u64) as usize];
                        self.batch_rotation += 1;
                        pick
                    }
                }
            }
        };
        Some(ThreadId::from_index(preferred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icount_prefers_emptier_thread() {
        let mut s = FetchScheduler::new();
        assert_eq!(s.select(FetchPolicy::ICount, &[10, 3], &[true, true]), Some(ThreadId::T1));
        assert_eq!(s.select(FetchPolicy::ICount, &[2, 30], &[true, true]), Some(ThreadId::T0));
        // Ties go to T0.
        assert_eq!(s.select(FetchPolicy::ICount, &[5, 5], &[true, true]), Some(ThreadId::T0));
    }

    #[test]
    fn icount_generalises_to_smt4() {
        let mut s = FetchScheduler::new();
        assert_eq!(
            s.select(FetchPolicy::ICount, &[9, 4, 2, 7], &[true; 4]),
            Some(ThreadId::from_index(2))
        );
        // Inactive threads never win, even when empty.
        assert_eq!(
            s.select(FetchPolicy::ICount, &[9, 4, 0, 7], &[true, true, false, true]),
            Some(ThreadId::T1)
        );
    }

    #[test]
    fn single_active_thread_always_selected() {
        let mut s = FetchScheduler::new();
        assert_eq!(s.select(FetchPolicy::ICount, &[100, 0], &[true, false]), Some(ThreadId::T0));
        assert_eq!(s.select(FetchPolicy::RoundRobin, &[0, 0], &[false, true]), Some(ThreadId::T1));
        assert_eq!(s.select(FetchPolicy::ICount, &[0, 0], &[false, false]), None);
    }

    #[test]
    fn round_robin_alternates() {
        let mut s = FetchScheduler::new();
        let picks: Vec<ThreadId> = (0..4)
            .map(|_| s.select(FetchPolicy::RoundRobin, &[0, 0], &[true, true]).unwrap())
            .collect();
        assert_ne!(picks[0], picks[1]);
        assert_eq!(picks[0], picks[2]);
    }

    #[test]
    fn round_robin_visits_every_smt4_thread() {
        let mut s = FetchScheduler::new();
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let t = s.select(FetchPolicy::RoundRobin, &[0; 4], &[true; 4]).unwrap();
            counts[t.index()] += 1;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }

    #[test]
    fn throttled_ratio_shares_cycles() {
        let mut s = FetchScheduler::new();
        let policy = FetchPolicy::throttled(ThreadId::T0, 4);
        let mut t0 = 0;
        let mut t1 = 0;
        for _ in 0..500 {
            let t = s.select(policy, &[0, 0], &[true, true]).unwrap();
            if t == ThreadId::T0 {
                t0 += 1;
            } else {
                t1 += 1;
            }
        }
        // Expect roughly a 1:4 split.
        assert_eq!(t0, 100);
        assert_eq!(t1, 400);
    }

    #[test]
    fn throttled_batch_group_rotates_fairly_on_smt4() {
        let mut s = FetchScheduler::new();
        let policy = FetchPolicy::throttled(ThreadId::T0, 2);
        let mut counts = [0usize; 4];
        for _ in 0..300 {
            let t = s.select(policy, &[0; 4], &[true; 4]).unwrap();
            counts[t.index()] += 1;
        }
        // One cycle in three goes to the throttled LS thread; the other two
        // rotate across the three batch threads.
        assert_eq!(counts[0], 100);
        assert_eq!(counts[1] + counts[2] + counts[3], 200);
        for &c in &counts[1..] {
            assert!((66..=67).contains(&c), "batch share skewed: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ratio_rejected() {
        let _ = FetchPolicy::throttled(ThreadId::T0, 0);
    }
}
