//! Per-resource contention study configurations (Figures 4 and 5).
//!
//! §III-B isolates the contribution of each shared structure to colocation
//! slowdown: "for each colocation, we simulate each hardware thread with
//! completely private microarchitectural structures for everything except the
//! resource under study". This module builds the corresponding [`CoreSetup`]s:
//! the resource under study keeps its baseline sharing (shared tables / caches,
//! or the equally-partitioned ROB), while everything else is private and
//! full-size.

use crate::fetch::FetchPolicy;
use crate::partition::PartitionPolicy;
use crate::runner::CoreSetup;
use mem_sim::Sharing;
use serde::{Deserialize, Serialize};
use sim_model::CoreConfig;
use std::fmt;

/// The four core resources whose sharing the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StudiedResource {
    /// The reorder buffer (and, proportionally, the LSQ): under study it is
    /// equally partitioned (96 entries per thread); otherwise each thread has
    /// the full window to itself.
    Rob,
    /// The L1 instruction cache.
    L1I,
    /// The L1 data cache.
    L1D,
    /// Branch prediction structures (BTB and direction predictor).
    BtbBp,
}

impl StudiedResource {
    /// All four resources, in the order the paper plots them.
    pub const ALL: [StudiedResource; 4] =
        [StudiedResource::Rob, StudiedResource::L1I, StudiedResource::L1D, StudiedResource::BtbBp];

    /// Builds the core setup in which only this resource is shared between
    /// the threads (everything else private / full size).
    pub fn setup(self, cfg: &CoreConfig) -> CoreSetup {
        self.setup_n(cfg, 2)
    }

    /// As [`StudiedResource::setup`], for a `threads`-wide core: only this
    /// resource is shared among all T threads.
    pub fn setup_n(self, cfg: &CoreConfig, threads: usize) -> CoreSetup {
        let mut setup = CoreSetup {
            partition: PartitionPolicy::private_full_n(cfg, threads),
            fetch_policy: FetchPolicy::ICount,
            l1i_sharing: Sharing::PrivatePerThread,
            l1d_sharing: Sharing::PrivatePerThread,
            bp_sharing: Sharing::PrivatePerThread,
        };
        match self {
            StudiedResource::Rob => setup.partition = PartitionPolicy::equal_n(cfg, threads),
            StudiedResource::L1I => setup.l1i_sharing = Sharing::Shared,
            StudiedResource::L1D => setup.l1d_sharing = Sharing::Shared,
            StudiedResource::BtbBp => setup.bp_sharing = Sharing::Shared,
        }
        setup
    }
}

impl fmt::Display for StudiedResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StudiedResource::Rob => "ROB",
            StudiedResource::L1I => "L1-I",
            StudiedResource::L1D => "L1-D",
            StudiedResource::BtbBp => "BTB+BP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_model::ThreadId;

    #[test]
    fn only_the_studied_resource_is_shared() {
        let cfg = CoreConfig::default();

        let rob = StudiedResource::Rob.setup(&cfg);
        assert_eq!(rob.partition.rob_limit(&cfg, ThreadId::T0), 96);
        assert_eq!(rob.l1i_sharing, Sharing::PrivatePerThread);
        assert_eq!(rob.l1d_sharing, Sharing::PrivatePerThread);
        assert_eq!(rob.bp_sharing, Sharing::PrivatePerThread);

        let l1i = StudiedResource::L1I.setup(&cfg);
        assert_eq!(l1i.partition.rob_limit(&cfg, ThreadId::T0), 192);
        assert_eq!(l1i.l1i_sharing, Sharing::Shared);
        assert_eq!(l1i.l1d_sharing, Sharing::PrivatePerThread);

        let l1d = StudiedResource::L1D.setup(&cfg);
        assert_eq!(l1d.l1d_sharing, Sharing::Shared);
        assert_eq!(l1d.l1i_sharing, Sharing::PrivatePerThread);

        let bp = StudiedResource::BtbBp.setup(&cfg);
        assert_eq!(bp.bp_sharing, Sharing::Shared);
        assert_eq!(bp.l1d_sharing, Sharing::PrivatePerThread);
    }

    #[test]
    fn display_names_match_figure_labels() {
        let names: Vec<String> = StudiedResource::ALL.iter().map(|r| r.to_string()).collect();
        assert_eq!(names, vec!["ROB", "L1-I", "L1-D", "BTB+BP"]);
    }
}
