//! The [`ColocationPolicy`] trait: one interface for every way of sharing an
//! SMT core between a latency-sensitive and a batch thread.
//!
//! The paper's argument is that Stretch, dynamic ROB sharing, fetch
//! throttling, Elfen-style duty cycling and idealised software scheduling are
//! *interchangeable policies* over the same core. This module makes that
//! literal: a policy
//!
//! * configures the core ([`ColocationPolicy::setup`] → [`CoreSetup`]),
//! * reacts to per-interval QoS telemetry
//!   ([`ColocationPolicy::on_sample`] over a [`QosObservation`], returning a
//!   [`PolicyAction`] — the generalisation of Stretch's control-register /
//!   software-monitor loop), and
//! * identifies itself for the experiment result store
//!   ([`sim_model::CanonicalKey`], a supertrait), so two different policies
//!   can never alias onto one cached cell even when their core setups happen
//!   to coincide.
//!
//! The [`crate::Scenario`] builder runs a policy open loop (one setup for the
//! whole run); the `stretch` crate's orchestrator drives the closed loop,
//! feeding observations from the request-level queueing model and
//! reconfiguring the core when the policy asks for it.
//!
//! Static policies that need nothing beyond a fixed [`CoreSetup`] live here
//! ([`EqualPartition`], [`PrivateCore`], and the Figure 4/5 resource-study
//! configurations via [`crate::StudiedResource`]); the comparison systems
//! live in the `baselines` crate and Stretch itself in the `stretch` crate —
//! each is a one-file implementation of this trait.

use crate::runner::CoreSetup;
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};

/// One interval's QoS telemetry, fed to a policy's closed-loop hook.
///
/// The fields mirror what the paper's software monitor can observe: tail
/// latency against the service's target (the primary CPI²-style signal), the
/// instantaneous queue depth (the Rubik-style alternative) and the measured
/// load as a fraction of peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosObservation {
    /// Observed tail latency over the interval, in milliseconds.
    pub tail_latency_ms: f64,
    /// The service's QoS target, in milliseconds.
    pub qos_target_ms: f64,
    /// Instantaneous queue length, when the deployment exposes it.
    pub queue_length: Option<usize>,
    /// Offered load as a fraction of peak sustainable load.
    pub load: f64,
}

impl QosObservation {
    /// An observation carrying only the tail-latency signal.
    pub fn tail_latency(tail_latency_ms: f64, qos_target_ms: f64, load: f64) -> QosObservation {
        QosObservation { tail_latency_ms, qos_target_ms, queue_length: None, load }
    }
}

/// What a policy wants done after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// Keep the current core configuration.
    Keep,
    /// The policy's operating point has changed: re-query
    /// [`ColocationPolicy::setup`] and reprogram the core (a mode change,
    /// costing a pipeline flush on real hardware). Policies whose knob lives
    /// above the core — e.g. Elfen's scheduler duty cycle — also answer
    /// `Reconfigure`; their setup is unchanged but the scheduler-level
    /// parameters must be reapplied.
    Reconfigure,
    /// QoS violations persist at the policy's most protective configuration:
    /// throttle the batch co-runner, as the baseline CPI² framework would.
    ThrottleCoRunner,
}

/// The thread layout of one colocated core: how many hardware threads it has
/// and which of them runs the latency-sensitive service. The remaining
/// `threads - 1` slots are batch threads.
///
/// The classic paper configuration is [`ColocationTopology::pair`]: two
/// threads with the LS service on T0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColocationTopology {
    threads: usize,
    ls_thread: ThreadId,
}

impl ColocationTopology {
    /// A topology with `threads` hardware threads and the latency-sensitive
    /// service on `ls_thread`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `ls_thread` is out of range.
    pub fn new(threads: usize, ls_thread: ThreadId) -> ColocationTopology {
        assert!(threads >= 1, "a topology needs at least one thread");
        assert!(
            ls_thread.index() < threads,
            "LS thread {ls_thread} out of range for an SMT-{threads} core"
        );
        ColocationTopology { threads, ls_thread }
    }

    /// The classic dual-threaded layout with the LS service on T0.
    pub fn pair() -> ColocationTopology {
        ColocationTopology::new(2, ThreadId::T0)
    }

    /// Number of hardware threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The thread running the latency-sensitive service.
    pub fn ls_thread(&self) -> ThreadId {
        self.ls_thread
    }

    /// The batch threads, in index order.
    pub fn batch_threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        let ls = self.ls_thread;
        ThreadId::first_n(self.threads).filter(move |t| *t != ls)
    }
}

impl CanonicalKey for ColocationTopology {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.usize(self.threads).field(&self.ls_thread);
    }
}

/// A resource-allocation policy for a colocated SMT core.
///
/// See the [module docs](self) for the design rationale. Implementations are
/// cheap config-carrying values: [`clone_policy`](ColocationPolicy::clone_policy)
/// exists so `Box<dyn ColocationPolicy>` is cloneable (the experiment engine
/// shares one policy value across its worker pool).
pub trait ColocationPolicy: CanonicalKey + Send + Sync {
    /// Human-readable policy name (used in logs and result labels).
    fn name(&self) -> String;

    /// The core configuration this policy wants for the given thread layout
    /// (one LS thread plus `topology.threads() - 1` batch threads).
    ///
    /// Policies that carry their own LS-thread designation (e.g. a pinned
    /// Stretch instance) honour that designation; the topology then supplies
    /// only the SMT width.
    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup;

    /// The core configuration this policy wants on the classic pair —
    /// shorthand for [`ColocationPolicy::setup_for`] with
    /// [`ColocationTopology::pair`].
    fn setup(&self, cfg: &CoreConfig) -> CoreSetup {
        self.setup_for(cfg, &ColocationTopology::pair())
    }

    /// Closed-loop hook: digest one interval of QoS telemetry and say what to
    /// do. Open-loop policies keep the default (do nothing).
    fn on_sample(&mut self, obs: &QosObservation) -> PolicyAction {
        let _ = obs;
        PolicyAction::Keep
    }

    /// Whether this policy models two threads sharing the core. Policies
    /// that operate *above* the core — Elfen's scheduler-level time-sharing
    /// — return `false`, and [`crate::Scenario::run`] rejects colocated runs
    /// under them instead of returning plausible-looking numbers that model
    /// no real system.
    fn supports_colocation(&self) -> bool {
        true
    }

    /// Clones the policy behind a box (object-safe `Clone`).
    fn clone_policy(&self) -> Box<dyn ColocationPolicy>;
}

impl Clone for Box<dyn ColocationPolicy> {
    fn clone(&self) -> Box<dyn ColocationPolicy> {
        self.clone_policy()
    }
}

/// The §V-A baseline policy: equal ROB/LSQ partitioning, ICOUNT fetch,
/// everything shared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqualPartition;

impl CanonicalKey for EqualPartition {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("policy/equal-partition");
    }
}

impl ColocationPolicy for EqualPartition {
    fn name(&self) -> String {
        "equal partitioning".to_string()
    }

    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup {
        CoreSetup::baseline_n(cfg, topology.threads())
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

/// A fully private core: private caches and predictor, and (optionally
/// capped) private window — the paper's stand-alone "full core" reference and
/// the Figure 6 ROB-sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivateCore {
    /// Per-thread ROB allocation; `None` means the full unpartitioned window.
    pub rob_entries: Option<usize>,
}

impl PrivateCore {
    /// The full-window private core (stand-alone reference runs).
    pub fn full() -> PrivateCore {
        PrivateCore { rob_entries: None }
    }

    /// A private core whose ROB is capped at `rob_entries` per thread, with
    /// the LSQ scaled proportionally (the Figure 6 sweep).
    pub fn with_rob(rob_entries: usize) -> PrivateCore {
        PrivateCore { rob_entries: Some(rob_entries) }
    }
}

impl CanonicalKey for PrivateCore {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.str("policy/private-core").field(&self.rob_entries);
    }
}

impl ColocationPolicy for PrivateCore {
    fn name(&self) -> String {
        match self.rob_entries {
            None => "private full core".to_string(),
            Some(rob) => format!("private core, {rob}-entry ROB"),
        }
    }

    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup {
        let threads = topology.threads();
        let mut setup = CoreSetup::private_full_n(cfg, threads);
        if let Some(rob) = self.rob_entries {
            let lsq = cfg.lsq_entries_for_rob(rob);
            setup.partition = crate::partition::PartitionPolicy::Static {
                rob: vec![rob; threads],
                lsq: vec![lsq; threads],
            };
        }
        setup
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

impl CanonicalKey for crate::resource_study::StudiedResource {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        use crate::resource_study::StudiedResource::*;
        enc.str("policy/studied-resource").tag(match self {
            Rob => 0,
            L1I => 1,
            L1D => 2,
            BtbBp => 3,
        });
    }
}

impl ColocationPolicy for crate::resource_study::StudiedResource {
    fn name(&self) -> String {
        format!("share only the {self}")
    }

    fn setup_for(&self, cfg: &CoreConfig, topology: &ColocationTopology) -> CoreSetup {
        crate::resource_study::StudiedResource::setup_n(*self, cfg, topology.threads())
    }

    fn clone_policy(&self) -> Box<dyn ColocationPolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource_study::StudiedResource;
    use sim_model::ThreadId;

    #[test]
    fn equal_partition_matches_the_baseline_setup() {
        let cfg = CoreConfig::default();
        assert_eq!(EqualPartition.setup(&cfg), CoreSetup::baseline(&cfg));
        assert_eq!(EqualPartition.name(), "equal partitioning");
    }

    #[test]
    fn private_core_full_and_capped_windows() {
        let cfg = CoreConfig::default();
        let full = PrivateCore::full().setup(&cfg);
        assert_eq!(full, CoreSetup::private_full(&cfg));
        let capped = PrivateCore::with_rob(64).setup(&cfg);
        assert_eq!(capped.partition.rob_limit(&cfg, ThreadId::T0), 64);
        assert_eq!(capped.partition.rob_limit(&cfg, ThreadId::T1), 64);
    }

    #[test]
    fn open_loop_policies_keep_on_samples() {
        let mut p = EqualPartition;
        let obs = QosObservation::tail_latency(20.0, 100.0, 0.3);
        assert_eq!(p.on_sample(&obs), PolicyAction::Keep);
    }

    #[test]
    fn distinct_policies_have_distinct_canonical_keys() {
        let digest = |p: &dyn ColocationPolicy| {
            let mut enc = KeyEncoder::new();
            p.encode_key(&mut enc);
            enc.digest()
        };
        let policies: Vec<Box<dyn ColocationPolicy>> = vec![
            Box::new(EqualPartition),
            Box::new(PrivateCore::full()),
            Box::new(PrivateCore::with_rob(96)),
            Box::new(StudiedResource::Rob),
            Box::new(StudiedResource::L1D),
        ];
        let digests: Vec<String> = policies.iter().map(|p| digest(p.as_ref())).collect();
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b, "policy keys must be pairwise distinct");
            }
        }
        // Boxed clones keep the identity.
        let cloned = policies[0].clone();
        assert_eq!(digest(cloned.as_ref()), digests[0]);
    }

    #[test]
    fn studied_resource_policy_delegates_to_the_resource_setup() {
        let cfg = CoreConfig::default();
        for r in StudiedResource::ALL {
            assert_eq!(ColocationPolicy::setup(&r, &cfg), r.setup(&cfg));
        }
    }

    #[test]
    fn pair_topology_is_the_classic_layout() {
        let t = ColocationTopology::pair();
        assert_eq!(t.threads(), 2);
        assert_eq!(t.ls_thread(), ThreadId::T0);
        assert_eq!(t.batch_threads().collect::<Vec<_>>(), vec![ThreadId::T1]);
    }

    #[test]
    fn smt4_topology_lists_three_batch_threads() {
        let t = ColocationTopology::new(4, ThreadId::T1);
        assert_eq!(t.batch_threads().count(), 3);
        assert!(t.batch_threads().all(|b| b != ThreadId::T1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topology_rejects_out_of_range_ls_thread() {
        let _ = ColocationTopology::new(2, ThreadId::from_index(2));
    }

    #[test]
    fn setup_is_setup_for_on_the_pair() {
        let cfg = CoreConfig::default();
        let pair = ColocationTopology::pair();
        assert_eq!(EqualPartition.setup(&cfg), EqualPartition.setup_for(&cfg, &pair));
        assert_eq!(
            PrivateCore::with_rob(64).setup(&cfg),
            PrivateCore::with_rob(64).setup_for(&cfg, &pair)
        );
    }

    #[test]
    fn smt4_setups_cover_four_threads() {
        let cfg = CoreConfig::default();
        let topo = ColocationTopology::new(4, ThreadId::T0);
        assert_eq!(EqualPartition.setup_for(&cfg, &topo).partition.threads(), Some(4));
        assert_eq!(PrivateCore::with_rob(48).setup_for(&cfg, &topo).partition.threads(), Some(4));
        for r in StudiedResource::ALL {
            assert_eq!(r.setup_for(&cfg, &topo).partition.threads(), Some(4));
        }
    }
}
