//! Simulation runners: warm-up + measurement windows, single-thread and
//! colocated runs, and the per-thread UIPC figure of merit (§V-C).

use crate::core::{SmtCore, SmtCoreBuilder};
use crate::fetch::FetchPolicy;
use crate::partition::PartitionPolicy;
use mem_sim::Sharing;
use serde::{Deserialize, Serialize};
use sim_model::{BoxedTrace, CanonicalKey, CoreConfig, KeyEncoder, ThreadId};
use sim_stats::{Histogram, SamplingPlan};

/// How long to simulate: per-thread warm-up and measurement instruction
/// counts plus a cycle safety cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimLength {
    /// Instructions committed per thread before measurement starts.
    pub warmup_instructions: u64,
    /// Instructions measured per thread.
    pub measured_instructions: u64,
    /// Hard cap on simulated cycles (protects against pathological stalls).
    pub max_cycles: u64,
}

impl SimLength {
    /// Derives a run length from a [`SamplingPlan`], folding all samples into
    /// one contiguous window (the generators are ergodic, so contiguous
    /// measurement is equivalent in expectation to scattered samples).
    pub fn from_plan(plan: &SamplingPlan) -> SimLength {
        let warmup = plan.warmup_instructions;
        let measured = plan.measured_instructions * plan.samples as u64;
        SimLength {
            warmup_instructions: warmup,
            measured_instructions: measured,
            // Generous cap: even at 0.02 IPC the measurement fits.
            max_cycles: (warmup + measured).saturating_mul(60).max(1_000_000),
        }
    }

    /// A small length for tests.
    pub fn quick() -> SimLength {
        SimLength::from_plan(&SamplingPlan::quick())
    }

    /// The standard length used by the figure-generation binaries.
    pub fn standard() -> SimLength {
        SimLength::from_plan(&SamplingPlan::standard())
    }
}

impl Default for SimLength {
    fn default() -> SimLength {
        SimLength::standard()
    }
}

impl CanonicalKey for SimLength {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.u64(self.warmup_instructions).u64(self.measured_instructions).u64(self.max_cycles);
    }
}

/// Result for one hardware thread of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadRunResult {
    /// Workload name.
    pub name: String,
    /// User instructions per cycle over the measurement window.
    pub uipc: f64,
    /// Instructions committed in the measurement window.
    pub committed: u64,
    /// Cycles spanned by the measurement window.
    pub cycles: u64,
    /// MLP census over the measurement window (outstanding demand misses per
    /// cycle).
    pub mlp: Histogram,
}

/// Result of a (possibly colocated) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationResult {
    /// Per-thread results; `None` for an inactive thread.
    pub threads: [Option<ThreadRunResult>; 2],
}

impl ColocationResult {
    /// UIPC of a thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread was inactive.
    pub fn uipc(&self, thread: ThreadId) -> f64 {
        self.threads[thread.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("thread {thread} was not active in this run"))
            .uipc
    }

    /// Result of a thread, if it was active.
    pub fn thread(&self, thread: ThreadId) -> Option<&ThreadRunResult> {
        self.threads[thread.index()].as_ref()
    }
}

/// Describes one complete core setup for a run: sharing modes, partitioning
/// and fetch policy. Used by the experiment harnesses to express the paper's
/// configurations declaratively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreSetup {
    /// ROB/LSQ partitioning.
    pub partition: PartitionPolicy,
    /// Fetch (thread selection) policy.
    pub fetch_policy: FetchPolicy,
    /// L1-I sharing between threads.
    pub l1i_sharing: Sharing,
    /// L1-D sharing between threads.
    pub l1d_sharing: Sharing,
    /// Branch predictor table sharing between threads.
    pub bp_sharing: Sharing,
}

impl CoreSetup {
    /// The §V-A baseline: everything shared, equal ROB partitioning, ICOUNT.
    pub fn baseline(cfg: &CoreConfig) -> CoreSetup {
        CoreSetup {
            partition: PartitionPolicy::equal(cfg),
            fetch_policy: FetchPolicy::ICount,
            l1i_sharing: Sharing::Shared,
            l1d_sharing: Sharing::Shared,
            bp_sharing: Sharing::Shared,
        }
    }

    /// A fully private core (used for stand-alone "full core" reference runs):
    /// each thread sees private caches, predictor and a full-size window.
    pub fn private_full(cfg: &CoreConfig) -> CoreSetup {
        CoreSetup {
            partition: PartitionPolicy::private_full(cfg),
            fetch_policy: FetchPolicy::ICount,
            l1i_sharing: Sharing::PrivatePerThread,
            l1d_sharing: Sharing::PrivatePerThread,
            bp_sharing: Sharing::PrivatePerThread,
        }
    }

    /// Applies the setup to a builder.
    pub fn apply(self, builder: SmtCoreBuilder) -> SmtCoreBuilder {
        builder
            .partition(self.partition)
            .fetch_policy(self.fetch_policy)
            .l1i_sharing(self.l1i_sharing)
            .l1d_sharing(self.l1d_sharing)
            .bp_sharing(self.bp_sharing)
    }
}

impl CanonicalKey for CoreSetup {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.field(&self.partition)
            .field(&self.fetch_policy)
            .field(&self.l1i_sharing)
            .field(&self.l1d_sharing)
            .field(&self.bp_sharing);
    }
}

/// Runs a core with up to two workloads under the given setup and length.
///
/// Measurement is per thread: a thread's window starts once it has committed
/// its warm-up instructions and ends once it has committed the measured
/// amount; its UIPC is measured instructions divided by the window's cycles.
/// Statistics of the whole core are reset when the *first* thread enters its
/// measurement window, which keeps cache/branch statistics representative.
pub fn run_setup(
    cfg: &CoreConfig,
    setup: CoreSetup,
    traces: [Option<BoxedTrace>; 2],
    length: SimLength,
) -> ColocationResult {
    let names: [Option<String>; 2] = [
        traces[0].as_ref().map(|t| t.name().to_string()),
        traces[1].as_ref().map(|t| t.name().to_string()),
    ];
    let mut builder = setup.apply(SmtCoreBuilder::new(*cfg));
    let [t0, t1] = traces;
    if let Some(t) = t0 {
        builder = builder.thread(ThreadId::T0, t);
    }
    if let Some(t) = t1 {
        builder = builder.thread(ThreadId::T1, t);
    }
    let mut core = builder.build();
    run_core(&mut core, names, length)
}

/// Runs an already-built core to completion of the measurement windows.
///
/// This is also used by the closed-loop Stretch orchestrator, which changes
/// the partitioning mid-run.
pub fn run_core(
    core: &mut SmtCore,
    names: [Option<String>; 2],
    length: SimLength,
) -> ColocationResult {
    let active: Vec<ThreadId> =
        ThreadId::ALL.into_iter().filter(|t| core.thread_active(*t)).collect();
    assert!(!active.is_empty(), "at least one thread must have a workload");

    let warm_target = length.warmup_instructions;
    let meas_target = length.warmup_instructions + length.measured_instructions;

    let mut start_cycle: [Option<u64>; 2] = [None, None];
    let mut start_committed: [u64; 2] = [0, 0];
    let mut start_mlp_total: [u64; 2] = [0, 0];
    let mut end_cycle: [Option<u64>; 2] = [None, None];
    let mut end_committed: [u64; 2] = [0, 0];
    let mut end_mlp: [Option<Histogram>; 2] = [None, None];

    let mut cycles = 0u64;
    loop {
        core.step();
        cycles += 1;
        let mut all_done = true;
        for &t in &active {
            let idx = t.index();
            let committed = core.committed(t);
            if start_cycle[idx].is_none() && committed >= warm_target {
                start_cycle[idx] = Some(cycles);
                start_committed[idx] = committed;
                start_mlp_total[idx] = core.mlp_census(t).total();
            }
            if end_cycle[idx].is_none() && committed >= meas_target {
                end_cycle[idx] = Some(cycles);
                end_committed[idx] = committed;
                end_mlp[idx] = Some(core.mlp_census(t).clone());
            }
            if end_cycle[idx].is_none() {
                all_done = false;
            }
        }
        if all_done || cycles >= length.max_cycles {
            break;
        }
    }

    let mut out: [Option<ThreadRunResult>; 2] = [None, None];
    for &t in &active {
        let idx = t.index();
        let start = start_cycle[idx].unwrap_or(cycles);
        let end = end_cycle[idx].unwrap_or(cycles);
        let committed_in_window = if end_cycle[idx].is_some() {
            end_committed[idx] - start_committed[idx]
        } else {
            core.committed(t).saturating_sub(start_committed[idx])
        };
        let window_cycles = end.saturating_sub(start).max(1);
        let mlp = end_mlp[idx].clone().unwrap_or_else(|| core.mlp_census(t).clone());
        out[idx] = Some(ThreadRunResult {
            name: names[idx].clone().unwrap_or_else(|| format!("thread-{idx}")),
            uipc: committed_in_window as f64 / window_cycles as f64,
            committed: committed_in_window,
            cycles: window_cycles,
            mlp,
        });
    }
    ColocationResult { threads: out }
}

/// Runs a single workload alone on the core with the full (unpartitioned)
/// instruction window and private structures — the paper's "stand-alone
/// execution on a full core" reference point.
pub fn run_standalone(cfg: &CoreConfig, trace: BoxedTrace, length: SimLength) -> ThreadRunResult {
    let setup = CoreSetup::private_full(cfg);
    let result = run_setup(cfg, setup, [Some(trace), None], length);
    result.threads[0].clone().expect("thread 0 was active")
}

/// Runs a single workload alone but with a specific ROB partition size
/// (the Figure 6 ROB-sensitivity sweep).
pub fn run_standalone_with_rob(
    cfg: &CoreConfig,
    trace: BoxedTrace,
    rob_entries: usize,
    length: SimLength,
) -> ThreadRunResult {
    let mut setup = CoreSetup::private_full(cfg);
    let lsq = cfg.lsq_entries_for_rob(rob_entries);
    setup.partition = PartitionPolicy::Static { rob: [rob_entries, rob_entries], lsq: [lsq, lsq] };
    let result = run_setup(cfg, setup, [Some(trace), None], length);
    result.threads[0].clone().expect("thread 0 was active")
}

/// Runs a latency-sensitive / batch pair under a given setup. Thread 0 runs
/// the first workload, thread 1 the second.
pub fn run_pair(
    cfg: &CoreConfig,
    setup: CoreSetup,
    t0: BoxedTrace,
    t1: BoxedTrace,
    length: SimLength,
) -> ColocationResult {
    run_setup(cfg, setup, [Some(t0), Some(t1)], length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_model::uop::OpKind;
    use sim_model::{MicroOp, TraceGenerator, WorkloadClass};

    struct AluLoop {
        pc: u64,
    }

    impl TraceGenerator for AluLoop {
        fn next_op(&mut self) -> MicroOp {
            self.pc = 0x1000 + (self.pc + 4 - 0x1000) % 512;
            MicroOp::alu(self.pc, OpKind::IntAlu, [None, None], Some(1))
        }
        fn name(&self) -> &str {
            "alu-loop"
        }
        fn class(&self) -> WorkloadClass {
            WorkloadClass::Batch
        }
        fn reset(&mut self) {
            self.pc = 0x1000;
        }
    }

    fn alu() -> BoxedTrace {
        Box::new(AluLoop { pc: 0x1000 })
    }

    #[test]
    fn sim_length_from_plan() {
        let plan = SamplingPlan { samples: 2, warmup_instructions: 100, measured_instructions: 50 };
        let l = SimLength::from_plan(&plan);
        assert_eq!(l.warmup_instructions, 100);
        assert_eq!(l.measured_instructions, 100);
        assert!(l.max_cycles >= 1_000_000);
    }

    #[test]
    fn standalone_run_produces_sane_uipc() {
        let cfg = CoreConfig::default();
        let r = run_standalone(&cfg, alu(), SimLength::quick());
        assert!(r.uipc > 1.0 && r.uipc <= cfg.commit_width as f64, "uipc {:.2}", r.uipc);
        assert_eq!(r.committed, SimLength::quick().measured_instructions);
        assert_eq!(r.name, "alu-loop");
    }

    #[test]
    fn pair_run_reports_both_threads() {
        let cfg = CoreConfig::default();
        let setup = CoreSetup::baseline(&cfg);
        let r = run_pair(&cfg, setup, alu(), alu(), SimLength::quick());
        assert!(r.thread(ThreadId::T0).is_some());
        assert!(r.thread(ThreadId::T1).is_some());
        assert!(r.uipc(ThreadId::T0) > 0.5);
        assert!(r.uipc(ThreadId::T1) > 0.5);
    }

    #[test]
    fn identical_workloads_get_similar_throughput() {
        let cfg = CoreConfig::default();
        let setup = CoreSetup::baseline(&cfg);
        let r = run_pair(&cfg, setup, alu(), alu(), SimLength::quick());
        let a = r.uipc(ThreadId::T0);
        let b = r.uipc(ThreadId::T1);
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 1.3, "symmetric colocation should be roughly fair (ratio {ratio:.2})");
    }

    #[test]
    fn rob_sweep_helper_respects_partition() {
        let cfg = CoreConfig::default();
        let small = run_standalone_with_rob(&cfg, alu(), 16, SimLength::quick());
        let large = run_standalone_with_rob(&cfg, alu(), 192, SimLength::quick());
        // An ALU loop is not ROB sensitive; both should be close.
        let ratio = large.uipc / small.uipc;
        assert!(ratio < 1.5, "ALU loop should be ROB-insensitive (ratio {ratio:.2})");
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn uipc_of_inactive_thread_panics() {
        let cfg = CoreConfig::default();
        let r = run_setup(&cfg, CoreSetup::baseline(&cfg), [Some(alu()), None], SimLength::quick());
        let _ = r.uipc(ThreadId::T1);
    }
}
