//! Run-length policy, core setups, the measurement loop and the per-thread
//! UIPC figure of merit (§V-C).
//!
//! End-to-end runs are expressed through [`crate::Scenario`]; this module
//! holds the pieces it is built from: [`SimLength`], [`CoreSetup`],
//! [`run_core`] and the [`ColocationResult`] / [`ThreadRunResult`] outputs.

use crate::core::{SmtCore, SmtCoreBuilder};
use crate::fetch::FetchPolicy;
use crate::partition::PartitionPolicy;
use mem_sim::Sharing;
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, CoreConfig, KeyEncoder, ThreadId};
use sim_stats::{Histogram, SamplingPlan};

/// How long to simulate: per-thread warm-up and measurement instruction
/// counts plus a cycle safety cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimLength {
    /// Instructions committed per thread before measurement starts.
    pub warmup_instructions: u64,
    /// Instructions measured per thread.
    pub measured_instructions: u64,
    /// Hard cap on simulated cycles (protects against pathological stalls).
    pub max_cycles: u64,
}

impl SimLength {
    /// Derives a run length from a [`SamplingPlan`], folding all samples into
    /// one contiguous window (the generators are ergodic, so contiguous
    /// measurement is equivalent in expectation to scattered samples).
    pub fn from_plan(plan: &SamplingPlan) -> SimLength {
        let warmup = plan.warmup_instructions;
        let measured = plan.measured_instructions * plan.samples as u64;
        SimLength {
            warmup_instructions: warmup,
            measured_instructions: measured,
            // Generous cap: even at 0.02 IPC the measurement fits.
            max_cycles: (warmup + measured).saturating_mul(60).max(1_000_000),
        }
    }

    /// A small length for tests.
    pub fn quick() -> SimLength {
        SimLength::from_plan(&SamplingPlan::quick())
    }

    /// The standard length used by the figure-generation binaries.
    pub fn standard() -> SimLength {
        SimLength::from_plan(&SamplingPlan::standard())
    }
}

impl Default for SimLength {
    fn default() -> SimLength {
        SimLength::standard()
    }
}

impl CanonicalKey for SimLength {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.u64(self.warmup_instructions).u64(self.measured_instructions).u64(self.max_cycles);
    }
}

/// Result for one hardware thread of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadRunResult {
    /// Workload name.
    pub name: String,
    /// User instructions per cycle over the measurement window.
    pub uipc: f64,
    /// Instructions committed in the measurement window.
    pub committed: u64,
    /// Cycles spanned by the measurement window.
    pub cycles: u64,
    /// MLP census over the measurement window (outstanding demand misses per
    /// cycle).
    pub mlp: Histogram,
}

/// Result of a (possibly colocated) run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationResult {
    /// Per-thread results, one slot per hardware thread; `None` for an
    /// inactive thread.
    pub threads: Vec<Option<ThreadRunResult>>,
}

impl ColocationResult {
    /// UIPC of a thread, if it was active. Consistent with
    /// [`ColocationResult::thread`]: an inactive thread yields `None` rather
    /// than panicking (the accessors used to disagree on this).
    pub fn uipc(&self, thread: ThreadId) -> Option<f64> {
        self.thread(thread).map(|t| t.uipc)
    }

    /// Result of a thread, if it was active.
    pub fn thread(&self, thread: ThreadId) -> Option<&ThreadRunResult> {
        self.threads.get(thread.index()).and_then(Option::as_ref)
    }

    /// Iterator over the active threads' results, in thread-index order.
    pub fn active_threads(&self) -> impl Iterator<Item = (ThreadId, &ThreadRunResult)> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (ThreadId::from_index(i), r)))
    }

    /// Result of a thread that is known to be active.
    ///
    /// # Panics
    ///
    /// Panics if the thread was inactive.
    pub fn expect_thread(&self, thread: ThreadId) -> &ThreadRunResult {
        self.thread(thread).unwrap_or_else(|| panic!("thread {thread} was not active in this run"))
    }
}

/// Describes one complete core setup for a run: sharing modes, partitioning
/// and fetch policy. Used by the experiment harnesses to express the paper's
/// configurations declaratively.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreSetup {
    /// ROB/LSQ partitioning.
    pub partition: PartitionPolicy,
    /// Fetch (thread selection) policy.
    pub fetch_policy: FetchPolicy,
    /// L1-I sharing between threads.
    pub l1i_sharing: Sharing,
    /// L1-D sharing between threads.
    pub l1d_sharing: Sharing,
    /// Branch predictor table sharing between threads.
    pub bp_sharing: Sharing,
}

impl CoreSetup {
    /// The §V-A baseline: everything shared, equal ROB partitioning, ICOUNT.
    pub fn baseline(cfg: &CoreConfig) -> CoreSetup {
        CoreSetup::baseline_n(cfg, 2)
    }

    /// The baseline setup for a `threads`-wide core: everything shared,
    /// equal T-way ROB partitioning, ICOUNT.
    pub fn baseline_n(cfg: &CoreConfig, threads: usize) -> CoreSetup {
        CoreSetup {
            partition: PartitionPolicy::equal_n(cfg, threads),
            fetch_policy: FetchPolicy::ICount,
            l1i_sharing: Sharing::Shared,
            l1d_sharing: Sharing::Shared,
            bp_sharing: Sharing::Shared,
        }
    }

    /// A fully private core (used for stand-alone "full core" reference runs):
    /// each thread sees private caches, predictor and a full-size window.
    pub fn private_full(cfg: &CoreConfig) -> CoreSetup {
        CoreSetup::private_full_n(cfg, 2)
    }

    /// A fully private `threads`-wide core.
    pub fn private_full_n(cfg: &CoreConfig, threads: usize) -> CoreSetup {
        CoreSetup {
            partition: PartitionPolicy::private_full_n(cfg, threads),
            fetch_policy: FetchPolicy::ICount,
            l1i_sharing: Sharing::PrivatePerThread,
            l1d_sharing: Sharing::PrivatePerThread,
            bp_sharing: Sharing::PrivatePerThread,
        }
    }

    /// Applies the setup to a builder.
    pub fn apply(&self, builder: SmtCoreBuilder) -> SmtCoreBuilder {
        builder
            .partition(self.partition.clone())
            .fetch_policy(self.fetch_policy)
            .l1i_sharing(self.l1i_sharing)
            .l1d_sharing(self.l1d_sharing)
            .bp_sharing(self.bp_sharing)
    }
}

impl CanonicalKey for CoreSetup {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.field(&self.partition)
            .field(&self.fetch_policy)
            .field(&self.l1i_sharing)
            .field(&self.l1d_sharing)
            .field(&self.bp_sharing);
    }
}

/// Runs an already-built core to completion of the measurement windows.
///
/// Measurement is per thread: a thread's window starts once it has committed
/// its warm-up instructions and ends once it has committed the measured
/// amount; its UIPC is measured instructions divided by the window's cycles.
///
/// This is the low-level loop behind [`crate::Scenario::run`]; it stays
/// public for closed-loop experiments (and benches) that build and reprogram
/// an [`SmtCore`] themselves, e.g. through the Stretch control register.
pub fn run_core(
    core: &mut SmtCore,
    mut names: Vec<Option<String>>,
    length: SimLength,
) -> ColocationResult {
    let width = core.smt_width();
    names.resize_with(width, || None);
    let active: Vec<ThreadId> =
        ThreadId::first_n(width).filter(|t| core.thread_active(*t)).collect();
    assert!(!active.is_empty(), "at least one thread must have a workload");

    let warm_target = length.warmup_instructions;
    let meas_target = length.warmup_instructions + length.measured_instructions;

    let mut start_cycle: Vec<Option<u64>> = vec![None; width];
    let mut start_committed: Vec<u64> = vec![0; width];
    let mut start_mlp_total: Vec<u64> = vec![0; width];
    let mut end_cycle: Vec<Option<u64>> = vec![None; width];
    let mut end_committed: Vec<u64> = vec![0; width];
    let mut end_mlp: Vec<Option<Histogram>> = vec![None; width];

    let mut cycles = 0u64;
    loop {
        core.step();
        cycles += 1;
        let mut all_done = true;
        for &t in &active {
            let idx = t.index();
            let committed = core.committed(t);
            if start_cycle[idx].is_none() && committed >= warm_target {
                start_cycle[idx] = Some(cycles);
                start_committed[idx] = committed;
                start_mlp_total[idx] = core.mlp_census(t).total();
            }
            if end_cycle[idx].is_none() && committed >= meas_target {
                end_cycle[idx] = Some(cycles);
                end_committed[idx] = committed;
                end_mlp[idx] = Some(core.mlp_census(t).clone());
            }
            if end_cycle[idx].is_none() {
                all_done = false;
            }
        }
        if all_done || cycles >= length.max_cycles {
            break;
        }
    }

    let mut out: Vec<Option<ThreadRunResult>> = vec![None; width];
    for &t in &active {
        let idx = t.index();
        let start = start_cycle[idx].unwrap_or(cycles);
        let end = end_cycle[idx].unwrap_or(cycles);
        let committed_in_window = if end_cycle[idx].is_some() {
            end_committed[idx] - start_committed[idx]
        } else {
            core.committed(t).saturating_sub(start_committed[idx])
        };
        let window_cycles = end.saturating_sub(start).max(1);
        // `take` both per-thread values: the census snapshot was already
        // cloned once when the window closed, and the names array is owned —
        // neither needs a second copy here.
        let mlp = end_mlp[idx].take().unwrap_or_else(|| core.mlp_census(t).clone());
        out[idx] = Some(ThreadRunResult {
            name: names[idx].take().unwrap_or_else(|| format!("thread-{idx}")),
            uipc: committed_in_window as f64 / window_cycles as f64,
            committed: committed_in_window,
            cycles: window_cycles,
            mlp,
        });
    }
    ColocationResult { threads: out }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread_result(name: &str) -> ThreadRunResult {
        ThreadRunResult {
            name: name.to_string(),
            uipc: 1.5,
            committed: 300,
            cycles: 200,
            mlp: Histogram::new(4),
        }
    }

    #[test]
    fn sim_length_from_plan() {
        let plan = SamplingPlan { samples: 2, warmup_instructions: 100, measured_instructions: 50 };
        let l = SimLength::from_plan(&plan);
        assert_eq!(l.warmup_instructions, 100);
        assert_eq!(l.measured_instructions, 100);
        assert!(l.max_cycles >= 1_000_000);
    }

    #[test]
    fn identical_workloads_get_similar_throughput() {
        use crate::{EqualPartition, Scenario};
        use sim_model::uop::OpKind;
        use sim_model::{MicroOp, TraceGenerator, WorkloadClass};

        struct AluLoop(u64);
        impl TraceGenerator for AluLoop {
            fn next_op(&mut self) -> MicroOp {
                self.0 = 0x1000 + (self.0 + 4 - 0x1000) % 512;
                MicroOp::alu(self.0, OpKind::IntAlu, [None, None], Some(1))
            }
            fn name(&self) -> &str {
                "alu-loop"
            }
            fn class(&self) -> WorkloadClass {
                WorkloadClass::Batch
            }
            fn reset(&mut self) {
                self.0 = 0x1000;
            }
        }

        let r = Scenario::colocate_traces(Box::new(AluLoop(0x1000)), Box::new(AluLoop(0x1000)))
            .policy(EqualPartition)
            .length(SimLength::quick())
            .run();
        let a = r.uipc(ThreadId::T0).expect("thread 0 active");
        let b = r.uipc(ThreadId::T1).expect("thread 1 active");
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 1.3, "symmetric colocation should be roughly fair (ratio {ratio:.2})");
    }

    #[test]
    fn uipc_and_thread_accessors_agree_on_activity() {
        // Regression for the old asymmetry: `uipc` panicked on an inactive
        // thread while `thread` returned `None`. Both now answer `None`.
        let r = ColocationResult { threads: vec![Some(thread_result("only")), None] };
        assert!(r.thread(ThreadId::T0).is_some());
        assert_eq!(r.uipc(ThreadId::T0), Some(1.5));
        assert!(r.thread(ThreadId::T1).is_none());
        assert_eq!(r.uipc(ThreadId::T1), None);
        assert_eq!(r.expect_thread(ThreadId::T0).name, "only");
        assert_eq!(r.active_threads().count(), 1);
    }

    #[test]
    #[should_panic(expected = "not active")]
    fn expect_thread_panics_on_an_inactive_thread() {
        let r = ColocationResult { threads: vec![Some(thread_result("only")), None] };
        let _ = r.expect_thread(ThreadId::T1);
    }
}
