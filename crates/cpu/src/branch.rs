//! Branch prediction structures.
//!
//! Table II specifies a hybrid predictor (16 K-entry gShare plus 4 K-entry
//! bimodal with a chooser), a 2 K-entry BTB and a per-thread return address
//! stack. Predictor *tables* (gShare, bimodal, chooser, BTB) can be shared
//! between the SMT threads — in which case the threads alias into the same
//! entries and disturb each other — or private per thread. The global history
//! register and the RAS are always private, as in the paper (§V-A).

use mem_sim::Sharing;
use serde::{Deserialize, Serialize};
use sim_model::{BranchPredictorConfig, ThreadId};

/// Saturating 2-bit counter helpers.
#[inline]
fn counter_taken(c: u8) -> bool {
    c >= 2
}

#[inline]
fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PredictorTables {
    gshare: Vec<u8>,
    bimodal: Vec<u8>,
    chooser: Vec<u8>,
    btb: Vec<Option<(u64, u64)>>, // (tag, target)
}

impl PredictorTables {
    fn new(cfg: &BranchPredictorConfig) -> PredictorTables {
        PredictorTables {
            gshare: vec![1; cfg.gshare_entries],
            bimodal: vec![1; cfg.bimodal_entries],
            chooser: vec![1; cfg.chooser_entries],
            btb: vec![None; cfg.btb_entries],
        }
    }
}

/// Outcome of a branch prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target (from the BTB / RAS); `None` when no target is known.
    pub target: Option<u64>,
}

/// Per-branch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Branches predicted.
    pub predictions: u64,
    /// Branches whose direction or target was mispredicted.
    pub mispredictions: u64,
}

impl BranchStats {
    /// Misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// The hybrid branch predictor plus BTB and RAS.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchPredictor {
    cfg: BranchPredictorConfig,
    sharing: Sharing,
    /// One table set when shared, one per thread when private.
    tables: Vec<PredictorTables>,
    /// Per-thread global history (always private).
    history: Vec<u64>,
    /// Per-thread return address stacks (always private).
    ras: Vec<Vec<u64>>,
    stats: Vec<BranchStats>,
}

impl BranchPredictor {
    /// Builds the predictor with the given table sharing mode, for the
    /// classic dual-threaded core.
    pub fn new(cfg: BranchPredictorConfig, sharing: Sharing) -> BranchPredictor {
        BranchPredictor::with_threads(cfg, sharing, 2)
    }

    /// Builds the predictor for a core with `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(
        cfg: BranchPredictorConfig,
        sharing: Sharing,
        threads: usize,
    ) -> BranchPredictor {
        assert!(threads >= 1, "a branch predictor needs at least one thread");
        let copies = match sharing {
            Sharing::Shared => 1,
            Sharing::PrivatePerThread => threads,
        };
        BranchPredictor {
            cfg,
            sharing,
            tables: (0..copies).map(|_| PredictorTables::new(&cfg)).collect(),
            history: vec![0; threads],
            ras: vec![Vec::new(); threads],
            stats: vec![BranchStats::default(); threads],
        }
    }

    #[inline]
    fn tables_mut(&mut self, thread: ThreadId) -> &mut PredictorTables {
        match self.sharing {
            Sharing::Shared => &mut self.tables[0],
            Sharing::PrivatePerThread => &mut self.tables[thread.index()],
        }
    }

    fn history_mask(&self) -> u64 {
        (1u64 << self.cfg.history_bits) - 1
    }

    /// Predicts the branch at `pc` for `thread`.
    ///
    /// `is_return` consults the RAS; `is_call` has no effect on prediction but
    /// is accepted for symmetry with [`BranchPredictor::update`].
    pub fn predict(
        &mut self,
        thread: ThreadId,
        pc: u64,
        _is_call: bool,
        is_return: bool,
    ) -> Prediction {
        let history = self.history[thread.index()] & self.history_mask();
        let t = self.tables_mut(thread);
        let gshare_idx = ((pc >> 2) ^ history) as usize % t.gshare.len();
        let bimodal_idx = (pc >> 2) as usize % t.bimodal.len();
        let chooser_idx = (pc >> 2) as usize % t.chooser.len();
        let use_gshare = counter_taken(t.chooser[chooser_idx]);
        let taken = if use_gshare {
            counter_taken(t.gshare[gshare_idx])
        } else {
            counter_taken(t.bimodal[bimodal_idx])
        };

        let target = if is_return {
            self.ras[thread.index()].last().copied()
        } else {
            let t = self.tables_mut(thread);
            let btb_idx = (pc >> 2) as usize % t.btb.len();
            t.btb[btb_idx].and_then(|(tag, tgt)| if tag == pc { Some(tgt) } else { None })
        };
        Prediction { taken, target }
    }

    /// Updates predictor state with the actual outcome of the branch at `pc`,
    /// and records whether the earlier prediction was correct.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        thread: ThreadId,
        pc: u64,
        taken: bool,
        target: u64,
        is_call: bool,
        is_return: bool,
        prediction: Prediction,
    ) -> bool {
        let history = self.history[thread.index()] & self.history_mask();
        let hist_bits = self.cfg.history_bits;
        {
            let t = self.tables_mut(thread);
            let gshare_idx = ((pc >> 2) ^ history) as usize % t.gshare.len();
            let bimodal_idx = (pc >> 2) as usize % t.bimodal.len();
            let chooser_idx = (pc >> 2) as usize % t.chooser.len();
            let gshare_correct = counter_taken(t.gshare[gshare_idx]) == taken;
            let bimodal_correct = counter_taken(t.bimodal[bimodal_idx]) == taken;
            t.gshare[gshare_idx] = counter_update(t.gshare[gshare_idx], taken);
            t.bimodal[bimodal_idx] = counter_update(t.bimodal[bimodal_idx], taken);
            if gshare_correct != bimodal_correct {
                t.chooser[chooser_idx] = counter_update(t.chooser[chooser_idx], gshare_correct);
            }
            if taken {
                let btb_idx = (pc >> 2) as usize % t.btb.len();
                t.btb[btb_idx] = Some((pc, target));
            }
        }
        // History and RAS are per-thread.
        let h = &mut self.history[thread.index()];
        *h = ((*h << 1) | u64::from(taken)) & ((1u64 << hist_bits) - 1);
        if is_call {
            let ras = &mut self.ras[thread.index()];
            if ras.len() >= self.cfg.ras_depth {
                ras.remove(0);
            }
            ras.push(pc + 4);
        } else if is_return {
            self.ras[thread.index()].pop();
        }

        // A misprediction is a wrong direction, or a taken branch whose target
        // was unknown or wrong.
        let dir_wrong = prediction.taken != taken;
        let target_wrong = taken && prediction.target != Some(target);
        let mispredicted = dir_wrong || target_wrong;
        let s = &mut self.stats[thread.index()];
        s.predictions += 1;
        if mispredicted {
            s.mispredictions += 1;
        }
        mispredicted
    }

    /// Per-thread statistics.
    pub fn stats(&self, thread: ThreadId) -> BranchStats {
        self.stats[thread.index()]
    }

    /// Resets statistics (not predictor state).
    pub fn reset_stats(&mut self) {
        self.stats.fill(BranchStats::default());
    }

    /// Sharing mode of the predictor tables.
    pub fn sharing(&self) -> Sharing {
        self.sharing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(sharing: Sharing) -> BranchPredictor {
        BranchPredictor::new(BranchPredictorConfig::default(), sharing)
    }

    /// Runs `n` occurrences of a branch at `pc` that is always taken to
    /// `target`, returning the number of mispredictions.
    fn run_always_taken(
        p: &mut BranchPredictor,
        thread: ThreadId,
        pc: u64,
        target: u64,
        n: usize,
    ) -> u64 {
        let mut mispredicts = 0;
        for _ in 0..n {
            let pred = p.predict(thread, pc, false, false);
            if p.update(thread, pc, true, target, false, false, pred) {
                mispredicts += 1;
            }
        }
        mispredicts
    }

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = predictor(Sharing::Shared);
        let early = run_always_taken(&mut p, ThreadId::T0, 0x1000, 0x2000, 4);
        let late = run_always_taken(&mut p, ThreadId::T0, 0x1000, 0x2000, 100);
        assert!(early >= 1, "cold predictor should mispredict at least once");
        assert_eq!(late, 0, "warm predictor should not mispredict an always-taken branch");
    }

    #[test]
    fn learns_a_never_taken_branch() {
        let mut p = predictor(Sharing::Shared);
        let mut mis = 0;
        for _ in 0..100 {
            let pred = p.predict(ThreadId::T0, 0x3000, false, false);
            if p.update(ThreadId::T0, 0x3000, false, 0, false, false, pred) {
                mis += 1;
            }
        }
        assert!(mis <= 2, "not-taken branch should be learned quickly (got {mis})");
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = predictor(Sharing::Shared);
        let mut rng = sim_model::SimRng::new(17);
        let mut mis = 0;
        let n = 2000;
        for _ in 0..n {
            let taken = rng.chance(0.5);
            let pred = p.predict(ThreadId::T0, 0x4000, false, false);
            if p.update(ThreadId::T0, 0x4000, taken, 0x5000, false, false, pred) {
                mis += 1;
            }
        }
        let rate = mis as f64 / n as f64;
        assert!(rate > 0.25, "random branches should mispredict frequently (rate {rate})");
    }

    #[test]
    fn return_address_stack_predicts_returns() {
        let mut p = predictor(Sharing::Shared);
        // A call from 0x100 pushes 0x104; the matching return should predict 0x104.
        let pred = p.predict(ThreadId::T0, 0x100, true, false);
        p.update(ThreadId::T0, 0x100, true, 0x8000, true, false, pred);
        let pred = p.predict(ThreadId::T0, 0x8010, false, true);
        assert_eq!(pred.target, Some(0x104));
    }

    #[test]
    fn threads_have_private_history() {
        let mut p = predictor(Sharing::Shared);
        run_always_taken(&mut p, ThreadId::T0, 0x1000, 0x2000, 50);
        assert!(p.stats(ThreadId::T1).predictions == 0);
        assert!(p.stats(ThreadId::T0).predictions == 50);
    }

    #[test]
    fn shared_tables_allow_cross_thread_interference() {
        // Two threads with opposite outcomes for the same PC: sharing the
        // tables must produce more mispredictions than private tables.
        let run = |sharing: Sharing| -> u64 {
            let mut p = predictor(sharing);
            let mut mis = 0;
            for _ in 0..200 {
                for (thread, taken) in [(ThreadId::T0, true), (ThreadId::T1, false)] {
                    let pred = p.predict(thread, 0x6000, false, false);
                    if p.update(thread, 0x6000, taken, 0x7000, false, false, pred) {
                        mis += 1;
                    }
                }
            }
            mis
        };
        let shared = run(Sharing::Shared);
        let private = run(Sharing::PrivatePerThread);
        assert!(
            shared > private,
            "shared tables should alias and mispredict more (shared={shared}, private={private})"
        );
    }

    #[test]
    fn mispredict_rate_reported() {
        let mut p = predictor(Sharing::Shared);
        run_always_taken(&mut p, ThreadId::T0, 0x1000, 0x2000, 10);
        let s = p.stats(ThreadId::T0);
        assert_eq!(s.predictions, 10);
        assert!(s.mispredict_rate() <= 0.5);
        p.reset_stats();
        assert_eq!(p.stats(ThreadId::T0).predictions, 0);
    }
}
