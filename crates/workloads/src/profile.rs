//! Workload profiles: the parameter sets that characterise each synthetic
//! workload's microarchitectural behaviour.
//!
//! The reproduction does not run the real CloudSuite services or SPEC CPU2006
//! binaries; instead, each workload is described by a [`WorkloadProfile`]
//! whose parameters control the properties the paper's analysis depends on:
//!
//! * instruction mix (loads, stores, branches, FP),
//! * code footprint (instruction-cache pressure — large for server
//!   workloads [Ferdman et al., ASPLOS'12]),
//! * data footprint and hot-set size (L1-D / LLC / memory miss rates),
//! * the fraction of *dependent* (pointer-chasing) loads versus independent
//!   loads (memory-level parallelism — the key difference between
//!   latency-sensitive and batch workloads in §III-C),
//! * stride-friendliness (prefetcher effectiveness),
//! * branch predictability.

use serde::{Deserialize, Serialize};
use sim_model::WorkloadClass;

/// Complete description of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name (e.g. `"web-search"`, `"zeusmp"`).
    pub name: String,
    /// Latency-sensitive or batch.
    pub class: WorkloadClass,
    /// Fraction of dynamic instructions that are loads.
    pub load_frac: f64,
    /// Fraction of dynamic instructions that are stores.
    pub store_frac: f64,
    /// Fraction of dynamic instructions that are branches.
    pub branch_frac: f64,
    /// Fraction of the remaining (non-memory, non-branch) instructions that
    /// are floating-point.
    pub fp_frac: f64,
    /// Fraction of the remaining instructions that are integer multiplies.
    pub mul_frac: f64,
    /// Static code footprint in bytes (drives L1-I miss rate).
    pub code_footprint_bytes: u64,
    /// Probability that a branch is well-behaved (biased and therefore
    /// predictable); the rest behave randomly.
    pub branch_predictability: f64,
    /// Total data working set in bytes (drives LLC / memory miss rates).
    pub data_footprint_bytes: u64,
    /// Size of the hot data region in bytes (drives the L1-D hit rate).
    pub hot_region_bytes: u64,
    /// Fraction of memory accesses that go to the hot region.
    pub hot_access_frac: f64,
    /// Fraction of cold accesses that follow a sequential stride
    /// (prefetchable).
    pub stride_frac: f64,
    /// Fraction of loads whose address depends on the previous load's result
    /// (pointer chasing). High values serialise misses and destroy MLP.
    pub dependent_load_frac: f64,
    /// Register dependency distance for ALU operations: larger values mean
    /// more instruction-level parallelism.
    pub dependency_distance: u8,
}

impl WorkloadProfile {
    /// Checks that all fractions are in range and the footprints are
    /// non-degenerate.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("fp_frac", self.fp_frac),
            ("mul_frac", self.mul_frac),
            ("branch_predictability", self.branch_predictability),
            ("hot_access_frac", self.hot_access_frac),
            ("stride_frac", self.stride_frac),
            ("dependent_load_frac", self.dependent_load_frac),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(format!("{name} = {v} is outside [0, 1] for workload {}", self.name));
            }
        }
        if self.load_frac + self.store_frac + self.branch_frac > 1.0 {
            return Err(format!(
                "instruction mix sums to more than 1.0 for workload {}",
                self.name
            ));
        }
        if self.code_footprint_bytes < 64 {
            return Err(format!("code footprint too small for workload {}", self.name));
        }
        if self.data_footprint_bytes < 64 || self.hot_region_bytes < 64 {
            return Err(format!("data footprint too small for workload {}", self.name));
        }
        if self.hot_region_bytes > self.data_footprint_bytes {
            return Err(format!(
                "hot region larger than the data footprint for workload {}",
                self.name
            ));
        }
        if self.dependency_distance == 0 {
            return Err(format!("dependency distance must be >= 1 for workload {}", self.name));
        }
        if self.name.is_empty() {
            return Err("workload name must not be empty".to_string());
        }
        Ok(())
    }

    /// `true` for latency-sensitive workloads.
    pub fn is_latency_sensitive(&self) -> bool {
        self.class.is_latency_sensitive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> WorkloadProfile {
        WorkloadProfile {
            name: "test".to_string(),
            class: WorkloadClass::Batch,
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.15,
            fp_frac: 0.2,
            mul_frac: 0.05,
            code_footprint_bytes: 32 * 1024,
            branch_predictability: 0.95,
            data_footprint_bytes: 8 * 1024 * 1024,
            hot_region_bytes: 32 * 1024,
            hot_access_frac: 0.7,
            stride_frac: 0.4,
            dependent_load_frac: 0.1,
            dependency_distance: 8,
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert!(valid().validate().is_ok());
    }

    #[test]
    fn out_of_range_fraction_rejected() {
        let mut p = valid();
        p.load_frac = 1.5;
        assert!(p.validate().is_err());
        let mut p = valid();
        p.dependent_load_frac = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn mix_exceeding_one_rejected() {
        let mut p = valid();
        p.load_frac = 0.5;
        p.store_frac = 0.4;
        p.branch_frac = 0.3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn hot_region_must_fit_in_footprint() {
        let mut p = valid();
        p.hot_region_bytes = p.data_footprint_bytes * 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_dependency_distance_rejected() {
        let mut p = valid();
        p.dependency_distance = 0;
        assert!(p.validate().is_err());
    }
}
