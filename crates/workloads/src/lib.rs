//! Synthetic workload generators for the Stretch (HPCA'19) reproduction.
//!
//! Workspace architecture — crate map, simulation layers, policy stack,
//! cache keys, where determinism is enforced: `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! The paper evaluates four CloudSuite latency-sensitive services colocated
//! with all 29 SPEC CPU2006 benchmarks. Neither is runnable inside this
//! repository, so this crate provides parameterised synthetic equivalents
//! (see `DESIGN.md` for the substitution argument):
//!
//! * [`latency_sensitive`] — Data Serving, Web Serving, Web Search and Media
//!   Streaming profiles: huge instruction footprints, pointer-chasing data
//!   accesses, low MLP.
//! * [`batch`] — 29 SPEC-like profiles spanning memory-bound/MLP-rich,
//!   pointer-chasing and compute-bound behaviour.
//! * [`WorkloadProfile`] — the parameter set describing a workload.
//! * [`SyntheticWorkload`] — the deterministic trace generator realising a
//!   profile (implements [`sim_model::TraceGenerator`]).
//!
//! # Example
//!
//! ```
//! use workloads::{batch, latency_sensitive};
//! use sim_model::TraceGenerator;
//!
//! let mut ws = latency_sensitive::web_search(42);
//! let op = ws.next_op();
//! assert!(op.is_well_formed());
//! assert_eq!(batch::all_profiles().len(), 29);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod generator;
pub mod latency_sensitive;
pub mod profile;

pub use generator::SyntheticWorkload;
pub use profile::WorkloadProfile;

use sim_model::{BoxedTrace, TraceSource};

impl WorkloadProfile {
    /// Builds a boxed trace generator for this profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn spawn(&self, seed: u64) -> BoxedTrace {
        Box::new(SyntheticWorkload::new(self.clone(), seed))
    }
}

impl TraceSource for WorkloadProfile {
    fn source_name(&self) -> &str {
        &self.name
    }

    fn spawn_trace(&self, seed: u64) -> BoxedTrace {
        self.spawn(seed)
    }
}

/// Returns every workload profile in the study: the four latency-sensitive
/// services followed by the 29 batch benchmarks.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    let mut v = latency_sensitive::all_profiles();
    v.extend(batch::all_profiles());
    v
}

/// Looks up any workload (latency-sensitive or batch) by name.
pub fn profile_by_name(name: &str) -> Option<WorkloadProfile> {
    latency_sensitive::profile_by_name(name).or_else(|| batch::profile_by_name(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_registry_has_33_workloads() {
        assert_eq!(all_profiles().len(), 33);
    }

    #[test]
    fn lookup_spans_both_classes() {
        assert!(profile_by_name("web-search").is_some());
        assert!(profile_by_name("zeusmp").is_some());
        assert!(profile_by_name("unknown").is_none());
    }

    #[test]
    fn spawn_produces_a_named_generator() {
        use sim_model::TraceGenerator;
        let p = profile_by_name("web-search").unwrap();
        let t = p.spawn(1);
        assert_eq!(t.name(), "web-search");
    }
}
