//! The 29 SPEC CPU2006-like batch workload profiles (§V-B).
//!
//! The paper colocates every latency-sensitive service with all 29 SPEC
//! CPU2006 benchmarks. The real binaries and reference inputs are not
//! available here, so each benchmark is represented by a synthetic profile
//! whose parameters follow its published characterisation: memory-bound
//! benchmarks with abundant independent misses (`zeusmp`, `lbm`,
//! `libquantum`, `leslie3d`, `GemsFDTD`, `milc`, ...) are MLP-rich and
//! therefore highly ROB-sensitive; pointer-chasing benchmarks (`mcf`,
//! `omnetpp`, `astar`, `xalancbmk`) are memory-bound but less able to use a
//! large window; compute-bound benchmarks (`gamess`, `povray`, `namd`,
//! `calculix`, ...) barely notice ROB capacity. The resulting *population*
//! reproduces the spread the paper reports (≈19 % average loss at half ROB,
//! ≈31 % worst case; 15 of 29 losing more than 15 % when sharing the ROB).

use crate::profile::WorkloadProfile;
use sim_model::{BoxedTrace, WorkloadClass};

/// Builds one batch profile.
#[allow(clippy::too_many_arguments)]
fn batch_profile(
    name: &str,
    load_frac: f64,
    store_frac: f64,
    branch_frac: f64,
    fp_frac: f64,
    code_kb: u64,
    branch_predictability: f64,
    data_mb: u64,
    hot_kb: u64,
    hot_access_frac: f64,
    stride_frac: f64,
    dependent_load_frac: f64,
    dependency_distance: u8,
) -> WorkloadProfile {
    WorkloadProfile {
        name: name.to_string(),
        class: WorkloadClass::Batch,
        load_frac,
        store_frac,
        branch_frac,
        fp_frac,
        mul_frac: 0.05,
        code_footprint_bytes: code_kb * 1024,
        branch_predictability,
        data_footprint_bytes: data_mb * 1024 * 1024,
        hot_region_bytes: hot_kb * 1024,
        hot_access_frac,
        stride_frac,
        dependent_load_frac,
        dependency_distance,
    }
}

/// The 29 benchmark names in SPEC CPU2006 (integer then floating point).
pub const NAMES: [&str; 29] = [
    "astar",
    "bwaves",
    "bzip2",
    "cactusADM",
    "calculix",
    "dealII",
    "gamess",
    "gcc",
    "GemsFDTD",
    "gobmk",
    "gromacs",
    "h264ref",
    "hmmer",
    "lbm",
    "leslie3d",
    "libquantum",
    "mcf",
    "milc",
    "namd",
    "omnetpp",
    "perlbench",
    "povray",
    "sjeng",
    "soplex",
    "sphinx3",
    "tonto",
    "wrf",
    "xalancbmk",
    "zeusmp",
];

/// All 29 batch profiles, in [`NAMES`] order.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    vec![
        // name            ld    st    br    fp   codeKB pred  dataMB hotKB hot%  stride dep  dist
        // Pointer-heavy integer codes: memory bound but with limited MLP.
        batch_profile("astar", 0.30, 0.08, 0.16, 0.00, 48, 0.90, 24, 32, 0.72, 0.10, 0.35, 6),
        // Memory-streaming FP codes: abundant independent misses, very ROB hungry.
        batch_profile("bwaves", 0.30, 0.09, 0.04, 0.60, 32, 0.985, 96, 32, 0.74, 0.35, 0.02, 20),
        batch_profile("bzip2", 0.28, 0.11, 0.13, 0.00, 48, 0.93, 12, 48, 0.82, 0.30, 0.10, 10),
        batch_profile("cactusADM", 0.32, 0.10, 0.03, 0.62, 48, 0.985, 80, 32, 0.73, 0.30, 0.02, 22),
        batch_profile("calculix", 0.26, 0.08, 0.06, 0.58, 64, 0.97, 8, 32, 0.93, 0.40, 0.02, 14),
        batch_profile("dealII", 0.30, 0.09, 0.12, 0.40, 96, 0.95, 16, 40, 0.84, 0.25, 0.12, 10),
        batch_profile("gamess", 0.24, 0.08, 0.08, 0.55, 96, 0.97, 4, 24, 0.96, 0.30, 0.02, 12),
        batch_profile("gcc", 0.26, 0.12, 0.18, 0.00, 512, 0.92, 16, 48, 0.80, 0.15, 0.20, 8),
        batch_profile("GemsFDTD", 0.32, 0.10, 0.03, 0.60, 48, 0.98, 96, 32, 0.72, 0.30, 0.02, 22),
        batch_profile("gobmk", 0.24, 0.09, 0.19, 0.00, 192, 0.86, 4, 32, 0.94, 0.15, 0.08, 6),
        batch_profile("gromacs", 0.26, 0.09, 0.05, 0.60, 64, 0.97, 6, 32, 0.94, 0.35, 0.02, 14),
        batch_profile("h264ref", 0.30, 0.12, 0.09, 0.10, 96, 0.95, 6, 40, 0.92, 0.45, 0.03, 12),
        batch_profile("hmmer", 0.30, 0.12, 0.08, 0.00, 48, 0.96, 8, 40, 0.90, 0.40, 0.04, 14),
        // lbm: the L1-D streaming outlier of Figures 4/5 — enormous store
        // traffic marching through a huge grid.
        batch_profile("lbm", 0.34, 0.26, 0.02, 0.55, 24, 0.99, 128, 24, 0.28, 0.90, 0.01, 24),
        batch_profile("leslie3d", 0.32, 0.11, 0.04, 0.60, 48, 0.98, 80, 32, 0.73, 0.35, 0.02, 20),
        batch_profile("libquantum", 0.28, 0.08, 0.12, 0.00, 24, 0.99, 64, 24, 0.70, 0.75, 0.01, 24),
        // mcf: dominant pointer chasing over a huge graph, some MLP from
        // independent bucket scans.
        batch_profile("mcf", 0.34, 0.08, 0.16, 0.00, 24, 0.92, 96, 24, 0.55, 0.05, 0.45, 6),
        batch_profile("milc", 0.32, 0.10, 0.03, 0.58, 32, 0.98, 96, 32, 0.72, 0.30, 0.02, 20),
        batch_profile("namd", 0.26, 0.08, 0.05, 0.62, 64, 0.97, 6, 40, 0.95, 0.35, 0.02, 16),
        batch_profile("omnetpp", 0.30, 0.10, 0.18, 0.00, 128, 0.90, 32, 32, 0.68, 0.05, 0.40, 6),
        batch_profile("perlbench", 0.26, 0.12, 0.18, 0.00, 384, 0.93, 8, 48, 0.90, 0.15, 0.15, 8),
        batch_profile("povray", 0.26, 0.09, 0.12, 0.45, 96, 0.95, 2, 32, 0.97, 0.30, 0.03, 12),
        batch_profile("sjeng", 0.22, 0.08, 0.18, 0.00, 96, 0.87, 4, 32, 0.95, 0.15, 0.06, 6),
        batch_profile("soplex", 0.32, 0.09, 0.10, 0.40, 64, 0.95, 64, 32, 0.74, 0.25, 0.06, 16),
        batch_profile("sphinx3", 0.32, 0.08, 0.08, 0.45, 64, 0.96, 48, 32, 0.76, 0.35, 0.04, 18),
        batch_profile("tonto", 0.26, 0.09, 0.07, 0.55, 96, 0.96, 6, 32, 0.94, 0.30, 0.02, 14),
        batch_profile("wrf", 0.30, 0.10, 0.05, 0.58, 128, 0.97, 64, 32, 0.76, 0.35, 0.02, 18),
        batch_profile("xalancbmk", 0.30, 0.08, 0.20, 0.00, 384, 0.91, 24, 40, 0.74, 0.10, 0.30, 6),
        // zeusmp: the paper's example of a highly ROB-sensitive batch code.
        batch_profile("zeusmp", 0.32, 0.11, 0.04, 0.60, 48, 0.98, 96, 32, 0.71, 0.30, 0.02, 22),
    ]
}

/// Looks up one batch profile by benchmark name.
pub fn profile_by_name(name: &str) -> Option<WorkloadProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// Builds a trace for a batch benchmark by name.
pub fn by_name(name: &str, seed: u64) -> Option<BoxedTrace> {
    profile_by_name(name).map(|p| p.spawn(seed))
}

/// Convenience constructor for the paper's running example, `zeusmp`.
pub fn zeusmp(seed: u64) -> BoxedTrace {
    profile_by_name("zeusmp").expect("zeusmp is in the suite").spawn(seed)
}

/// Convenience constructor for the L1-D outlier, `lbm`.
pub fn lbm(seed: u64) -> BoxedTrace {
    profile_by_name("lbm").expect("lbm is in the suite").spawn(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_29_benchmarks() {
        assert_eq!(NAMES.len(), 29);
        assert_eq!(all_profiles().len(), 29);
    }

    #[test]
    fn names_match_and_are_unique() {
        let profiles = all_profiles();
        let names: Vec<&str> = profiles.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, NAMES.to_vec());
        let unique: HashSet<&str> = names.into_iter().collect();
        assert_eq!(unique.len(), 29);
    }

    #[test]
    fn all_profiles_are_valid_batch_profiles() {
        for p in all_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(p.class.is_batch(), "{} must be a batch workload", p.name);
        }
    }

    #[test]
    fn the_suite_is_diverse_in_memory_behaviour() {
        let profiles = all_profiles();
        let memory_bound =
            profiles.iter().filter(|p| p.data_footprint_bytes >= 48 * 1024 * 1024).count();
        let compute_bound =
            profiles.iter().filter(|p| p.data_footprint_bytes <= 8 * 1024 * 1024).count();
        let pointer_chasing = profiles.iter().filter(|p| p.dependent_load_frac >= 0.3).count();
        assert!(memory_bound >= 10, "need a sizeable memory-bound population ({memory_bound})");
        assert!(compute_bound >= 6, "need a sizeable compute-bound population ({compute_bound})");
        assert!(pointer_chasing >= 4, "need pointer-chasing representatives ({pointer_chasing})");
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile_by_name("zeusmp").is_some());
        assert!(profile_by_name("notabenchmark").is_none());
        assert!(by_name("lbm", 7).is_some());
    }

    #[test]
    fn lbm_is_the_streaming_outlier() {
        let lbm = profile_by_name("lbm").unwrap();
        for p in all_profiles() {
            if p.name != "lbm" {
                assert!(
                    lbm.store_frac >= p.store_frac,
                    "lbm should have the highest store fraction"
                );
            }
        }
        assert!(lbm.stride_frac > 0.8);
    }
}
