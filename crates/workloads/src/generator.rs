//! The synthetic trace generator: turns a [`WorkloadProfile`] into a
//! deterministic, infinite micro-op stream implementing
//! [`sim_model::TraceGenerator`].
//!
//! The generator walks a synthetic code region (instruction addresses cover
//! the profile's code footprint, so big-code server workloads pressure the
//! L1-I), issues loads and stores over a two-level data layout (a hot region
//! that largely fits in the L1-D plus a cold footprint that spills into the
//! LLC partition or memory), and expresses data dependencies over a small
//! logical register file so the core model sees realistic ILP and MLP:
//! independent cold loads can overlap (high MLP, ROB-hungry), dependent
//! "pointer-chasing" loads serialise (low MLP, ROB-insensitive).

use crate::profile::WorkloadProfile;
use sim_model::uop::BranchInfo;
use sim_model::{MicroOp, OpKind, Reg, SimRng, TraceGenerator, WorkloadClass};

/// Register reserved for the pointer-chase chain.
const CHASE_REG: Reg = 1;
/// First general destination register.
const FIRST_DST: Reg = 4;
/// Number of general destination registers in rotation.
const NUM_DST: Reg = 48;
/// Ring size for tracking recently written registers.
const RECENT_RING: usize = 64;

#[inline]
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A deterministic synthetic workload trace.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    profile: WorkloadProfile,
    seed: u64,
    rng: SimRng,
    code_base: u64,
    data_base: u64,
    hot_base: u64,
    pc: u64,
    stride_cursor: u64,
    dst_counter: u8,
    recent_dsts: [Reg; RECENT_RING],
    recent_head: usize,
    emitted: u64,
}

impl SyntheticWorkload {
    /// Creates a generator for `profile` seeded by `seed`.
    ///
    /// Different workloads are placed in disjoint address regions (derived
    /// from the workload name) so that colocated threads never share data or
    /// code by accident.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: WorkloadProfile, seed: u64) -> SyntheticWorkload {
        profile.validate().unwrap_or_else(|e| panic!("invalid workload profile: {e}"));
        let name_hash = fnv1a(profile.name.as_bytes());
        // 4 GiB-aligned per-workload address spaces for code and data.
        let code_base = 0x1_0000_0000u64 + (name_hash % 512) * 0x1_0000_0000;
        let data_base = 0x200_0000_0000u64 + (name_hash % 512) * 0x4_0000_0000;
        let hot_base = data_base;
        let rng = SimRng::new(seed ^ name_hash);
        let mut w = SyntheticWorkload {
            pc: code_base,
            stride_cursor: data_base + profile.hot_region_bytes,
            profile,
            seed,
            rng,
            code_base,
            data_base,
            hot_base,
            dst_counter: 0,
            recent_dsts: [FIRST_DST; RECENT_RING],
            recent_head: 0,
            emitted: 0,
        };
        w.pc = w.code_base;
        w
    }

    /// The profile this generator realises.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn alloc_dst(&mut self) -> Reg {
        let reg = FIRST_DST + self.dst_counter % NUM_DST;
        self.dst_counter = self.dst_counter.wrapping_add(1);
        self.recent_head = (self.recent_head + 1) % RECENT_RING;
        self.recent_dsts[self.recent_head] = reg;
        reg
    }

    /// A source register written roughly `distance` instructions ago.
    fn src_at_distance(&self, distance: u8) -> Reg {
        let d = usize::from(distance).min(RECENT_RING - 1);
        let idx = (self.recent_head + RECENT_RING - d) % RECENT_RING;
        self.recent_dsts[idx]
    }

    fn advance_pc(&mut self) -> u64 {
        let footprint = self.profile.code_footprint_bytes;
        self.pc += 4;
        if self.pc >= self.code_base + footprint {
            self.pc = self.code_base;
        }
        self.pc
    }

    fn code_address(&mut self, key: u64) -> u64 {
        let footprint = self.profile.code_footprint_bytes;
        let offset = (fnv1a(&key.to_le_bytes()) % footprint.max(4)) & !3;
        self.code_base + offset
    }

    fn cold_address(&mut self) -> u64 {
        let p = &self.profile;
        if self.rng.chance(p.stride_frac) {
            // Sequential streaming through the cold region (prefetchable).
            self.stride_cursor += 64;
            if self.stride_cursor >= self.data_base + p.data_footprint_bytes {
                self.stride_cursor = self.data_base + p.hot_region_bytes;
            }
            self.stride_cursor
        } else {
            let cold_span = p.data_footprint_bytes - p.hot_region_bytes;
            self.data_base + p.hot_region_bytes + (self.rng.below(cold_span.max(64)) & !7)
        }
    }

    fn data_address(&mut self) -> u64 {
        let p = &self.profile;
        if self.rng.chance(p.hot_access_frac) {
            self.hot_base + (self.rng.below(p.hot_region_bytes) & !7)
        } else {
            self.cold_address()
        }
    }

    fn make_branch(&mut self, pc: u64) -> MicroOp {
        let predictable = {
            // Deterministic per-PC classification.
            let h = fnv1a(&pc.to_le_bytes());
            (h % 10_000) as f64 / 10_000.0 < self.profile.branch_predictability
        };
        let (taken, target) = if predictable {
            // Biased branch: direction and target are fixed functions of the PC.
            let h = fnv1a(&(pc ^ 0xABCD).to_le_bytes());
            let taken = h % 10 < 8; // 80% of predictable branches are taken
            let target = self.code_address(pc ^ 0x5555);
            (taken, target)
        } else {
            // Data-dependent branch: essentially random direction and target.
            let taken = self.rng.chance(0.5);
            let target_key = self.rng.next_u64();
            (taken, self.code_address(target_key))
        };
        if taken {
            self.pc = target;
        }
        let src = self.src_at_distance(self.profile.dependency_distance);
        MicroOp::branch(
            pc,
            BranchInfo { taken, target, is_call: false, is_return: false },
            [Some(src), None],
        )
    }

    fn make_load(&mut self, pc: u64) -> MicroOp {
        let p = &self.profile;
        if self.rng.chance(p.dependent_load_frac) {
            // Pointer chase: address producer is the previous chained load.
            let addr = self.cold_address();
            MicroOp::load(pc, addr, [Some(CHASE_REG), None], Some(CHASE_REG))
        } else {
            let addr = self.data_address();
            let src = self.src_at_distance(self.profile.dependency_distance);
            let dst = self.alloc_dst();
            MicroOp::load(pc, addr, [Some(src), None], Some(dst))
        }
    }

    fn make_store(&mut self, pc: u64) -> MicroOp {
        let addr = self.data_address();
        let data_src = self.src_at_distance(2);
        let addr_src = self.src_at_distance(self.profile.dependency_distance);
        MicroOp::store(pc, addr, [Some(data_src), Some(addr_src)])
    }

    fn make_compute(&mut self, pc: u64) -> MicroOp {
        let p = &self.profile;
        let kind = if self.rng.chance(p.fp_frac) {
            OpKind::Fp
        } else if self.rng.chance(p.mul_frac) {
            OpKind::IntMul
        } else {
            OpKind::IntAlu
        };
        let s1 = self.src_at_distance(self.profile.dependency_distance);
        let s2 = self.src_at_distance(self.profile.dependency_distance.saturating_mul(2).max(2));
        let dst = self.alloc_dst();
        MicroOp::alu(pc, kind, [Some(s1), Some(s2)], Some(dst))
    }
}

impl TraceGenerator for SyntheticWorkload {
    fn next_op(&mut self) -> MicroOp {
        self.emitted += 1;
        let pc = self.advance_pc();
        let p = &self.profile;
        let r = self.rng.uniform_f64();
        let load_cut = p.load_frac;
        let store_cut = load_cut + p.store_frac;
        let branch_cut = store_cut + p.branch_frac;
        if r < load_cut {
            self.make_load(pc)
        } else if r < store_cut {
            self.make_store(pc)
        } else if r < branch_cut {
            self.make_branch(pc)
        } else {
            self.make_compute(pc)
        }
    }

    fn name(&self) -> &str {
        &self.profile.name
    }

    fn class(&self) -> WorkloadClass {
        self.profile.class
    }

    fn reset(&mut self) {
        *self = SyntheticWorkload::new(self.profile.clone(), self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_model::WorkloadClass;

    fn profile(name: &str) -> WorkloadProfile {
        WorkloadProfile {
            name: name.to_string(),
            class: WorkloadClass::Batch,
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.15,
            fp_frac: 0.3,
            mul_frac: 0.05,
            code_footprint_bytes: 16 * 1024,
            branch_predictability: 0.9,
            data_footprint_bytes: 16 * 1024 * 1024,
            hot_region_bytes: 32 * 1024,
            hot_access_frac: 0.7,
            stride_frac: 0.3,
            dependent_load_frac: 0.1,
            dependency_distance: 8,
        }
    }

    #[test]
    fn stream_is_deterministic_for_a_seed() {
        let mut a = SyntheticWorkload::new(profile("det"), 42);
        let mut b = SyntheticWorkload::new(profile("det"), 42);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticWorkload::new(profile("det"), 1);
        let mut b = SyntheticWorkload::new(profile("det"), 2);
        let identical = (0..200).filter(|_| a.next_op() == b.next_op()).count();
        assert!(identical < 200);
    }

    #[test]
    fn reset_restarts_the_stream() {
        let mut a = SyntheticWorkload::new(profile("det"), 7);
        let first: Vec<MicroOp> = (0..50).map(|_| a.next_op()).collect();
        a.reset();
        let again: Vec<MicroOp> = (0..50).map(|_| a.next_op()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn all_ops_are_well_formed() {
        let mut w = SyntheticWorkload::new(profile("wf"), 3);
        for _ in 0..5000 {
            let op = w.next_op();
            assert!(op.is_well_formed(), "{op:?}");
        }
    }

    #[test]
    fn instruction_mix_roughly_matches_profile() {
        let p = profile("mix");
        let mut w = SyntheticWorkload::new(p.clone(), 11);
        let n = 50_000;
        let mut loads = 0;
        let mut stores = 0;
        let mut branches = 0;
        for _ in 0..n {
            match w.next_op().kind {
                OpKind::Load => loads += 1,
                OpKind::Store => stores += 1,
                OpKind::Branch => branches += 1,
                _ => {}
            }
        }
        let lf = loads as f64 / n as f64;
        let sf = stores as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        assert!((lf - p.load_frac).abs() < 0.02, "load fraction {lf}");
        assert!((sf - p.store_frac).abs() < 0.02, "store fraction {sf}");
        assert!((bf - p.branch_frac).abs() < 0.02, "branch fraction {bf}");
    }

    #[test]
    fn pcs_stay_inside_the_code_footprint() {
        let p = profile("code");
        let mut w = SyntheticWorkload::new(p.clone(), 5);
        let base = w.code_base;
        for _ in 0..10_000 {
            let op = w.next_op();
            assert!(op.pc >= base && op.pc < base + p.code_footprint_bytes);
        }
    }

    #[test]
    fn data_addresses_stay_inside_the_data_footprint() {
        let p = profile("data");
        let mut w = SyntheticWorkload::new(p.clone(), 5);
        let base = w.data_base;
        for _ in 0..10_000 {
            if let Some(mem) = w.next_op().mem {
                assert!(
                    mem.addr >= base && mem.addr < base + p.data_footprint_bytes,
                    "address {:#x} outside [{:#x}, {:#x})",
                    mem.addr,
                    base,
                    base + p.data_footprint_bytes
                );
            }
        }
    }

    #[test]
    fn different_workload_names_use_disjoint_address_spaces() {
        let a = SyntheticWorkload::new(profile("alpha"), 1);
        let b = SyntheticWorkload::new(profile("beta"), 1);
        assert_ne!(a.code_base, b.code_base);
        assert_ne!(a.data_base, b.data_base);
    }

    #[test]
    fn dependent_loads_use_the_chase_register() {
        let mut p = profile("chase");
        p.dependent_load_frac = 1.0;
        p.load_frac = 1.0;
        p.store_frac = 0.0;
        p.branch_frac = 0.0;
        let mut w = SyntheticWorkload::new(p, 9);
        for _ in 0..100 {
            let op = w.next_op();
            assert_eq!(op.kind, OpKind::Load);
            assert_eq!(op.srcs[0], Some(CHASE_REG));
            assert_eq!(op.dst, Some(CHASE_REG));
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload profile")]
    fn invalid_profile_panics_at_construction() {
        let mut p = profile("bad");
        p.load_frac = 2.0;
        let _ = SyntheticWorkload::new(p, 0);
    }
}
