//! The four latency-sensitive service workloads (Tables I and III).
//!
//! Each profile encodes the microarchitectural behaviour the paper (and the
//! scale-out-workload literature it cites) attributes to these services:
//! multi-megabyte instruction footprints that pressure the L1-I, data-
//! dependent pointer-chasing access patterns that keep MLP low, modest hot
//! working sets, and mostly-predictable branches. The result is a workload
//! class that gains little from a large ROB (Figure 6) and places modest
//! demands on shared core resources (Figure 3).

use crate::profile::WorkloadProfile;
use sim_model::{BoxedTrace, WorkloadClass};

/// Names of the four latency-sensitive services, in the order the paper
/// lists them.
pub const NAMES: [&str; 4] = ["data-serving", "web-serving", "web-search", "media-streaming"];

#[allow(clippy::too_many_arguments)] // mirrors the column order of the profile table
fn ls_profile(
    name: &str,
    load_frac: f64,
    store_frac: f64,
    branch_frac: f64,
    code_kb: u64,
    dependent_load_frac: f64,
    hot_access_frac: f64,
    data_mb: u64,
    stride_frac: f64,
    branch_predictability: f64,
) -> WorkloadProfile {
    WorkloadProfile {
        name: name.to_string(),
        class: WorkloadClass::LatencySensitive,
        load_frac,
        store_frac,
        branch_frac,
        fp_frac: 0.02,
        mul_frac: 0.04,
        code_footprint_bytes: code_kb * 1024,
        branch_predictability,
        data_footprint_bytes: data_mb * 1024 * 1024,
        hot_region_bytes: 40 * 1024,
        hot_access_frac,
        stride_frac,
        dependent_load_frac,
        dependency_distance: 4,
    }
}

/// Data Serving (Cassandra): large heap, key-value lookups dominated by
/// pointer chasing through index structures.
pub fn data_serving_profile() -> WorkloadProfile {
    ls_profile("data-serving", 0.28, 0.10, 0.17, 2048, 0.50, 0.62, 48, 0.08, 0.92)
}

/// Web Serving (Nginx/Elgg + MySQL): very large code footprint, branchy
/// request handling, moderate data footprint.
pub fn web_serving_profile() -> WorkloadProfile {
    ls_profile("web-serving", 0.26, 0.08, 0.20, 3072, 0.40, 0.70, 16, 0.05, 0.90)
}

/// Web Search (Nutch/Lucene): inverted-index traversal — data-dependent
/// loads over a large index with little spatial locality.
pub fn web_search_profile() -> WorkloadProfile {
    ls_profile("web-search", 0.30, 0.05, 0.18, 1536, 0.45, 0.68, 24, 0.10, 0.93)
}

/// Media Streaming (Darwin/Nginx streaming): sequential buffer movement with
/// somewhat more streaming behaviour than the other services, but still
/// front-end bound.
pub fn media_streaming_profile() -> WorkloadProfile {
    ls_profile("media-streaming", 0.30, 0.12, 0.14, 1024, 0.28, 0.58, 64, 0.45, 0.95)
}

/// All four latency-sensitive profiles, in [`NAMES`] order.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    vec![
        data_serving_profile(),
        web_serving_profile(),
        web_search_profile(),
        media_streaming_profile(),
    ]
}

/// Looks up a latency-sensitive profile by name.
pub fn profile_by_name(name: &str) -> Option<WorkloadProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// Builds a trace for a latency-sensitive workload by name.
pub fn by_name(name: &str, seed: u64) -> Option<BoxedTrace> {
    profile_by_name(name).map(|p| p.spawn(seed))
}

/// Convenience constructor: Data Serving trace.
pub fn data_serving(seed: u64) -> BoxedTrace {
    data_serving_profile().spawn(seed)
}

/// Convenience constructor: Web Serving trace.
pub fn web_serving(seed: u64) -> BoxedTrace {
    web_serving_profile().spawn(seed)
}

/// Convenience constructor: Web Search trace.
pub fn web_search(seed: u64) -> BoxedTrace {
    web_search_profile().spawn(seed)
}

/// Convenience constructor: Media Streaming trace.
pub fn media_streaming(seed: u64) -> BoxedTrace {
    media_streaming_profile().spawn(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_services_with_expected_names() {
        let profiles = all_profiles();
        assert_eq!(profiles.len(), 4);
        let names: Vec<&str> = profiles.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, NAMES.to_vec());
    }

    #[test]
    fn all_profiles_are_valid_and_latency_sensitive() {
        for p in all_profiles() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(p.is_latency_sensitive());
            assert!(
                p.code_footprint_bytes >= 1024 * 1024,
                "{} should have a multi-MB code footprint",
                p.name
            );
            assert!(
                p.dependent_load_frac >= 0.25,
                "{} should be dominated by dependent accesses",
                p.name
            );
        }
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(profile_by_name("web-search").is_some());
        assert!(profile_by_name("no-such-service").is_none());
        assert!(by_name("media-streaming", 3).is_some());
    }
}
