//! Cluster throughput case studies (§VI-D).
//!
//! Given a diurnal load pattern, an engagement threshold (the paper uses
//! 85% of peak load for the B-mode 56-136 configuration) and the measured
//! B-mode batch speedup, compute the average batch throughput gain over a
//! 24-hour period — the "+5% for a Web Search cluster, +11% for a YouTube
//! cluster" numbers.

use crate::diurnal::DiurnalPattern;
use crate::fleet::{self, Fleet, FleetConfig, FleetReport, FleetScale, LoadBalancer};
use crate::topology::{FleetTopology, TailAccumulation};
use serde::{Deserialize, Serialize};
use sim_model::{CanonicalKey, KeyEncoder};
use sim_qos::{ArrivalProcess, ServiceSpec};
use stretch::orchestrator::{ModePerformance, PerformanceTable};
use stretch::{MonitorConfig, RobSkew, StretchConfig, StretchMode};

/// One cluster case study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseStudy {
    /// The diurnal load pattern of the latency-sensitive service.
    pub pattern: DiurnalPattern,
    /// Load threshold (fraction of peak) below which B-mode is engaged.
    pub engage_below: f64,
    /// Batch speedup delivered while B-mode is engaged (e.g. 1.11 for +11%).
    pub b_mode_batch_speedup: f64,
    /// Control interval in hours (how often the monitor reconsiders).
    pub interval_hours: f64,
}

impl CaseStudy {
    /// The Web Search cluster case study with the paper's parameters: B-mode
    /// 56-136 engaged below 85% of peak, yielding an 11% batch speedup while
    /// engaged.
    pub fn web_search() -> CaseStudy {
        CaseStudy {
            pattern: DiurnalPattern::WebSearch,
            engage_below: 0.85,
            b_mode_batch_speedup: 1.11,
            interval_hours: 0.25,
        }
    }

    /// The YouTube cluster case study.
    pub fn youtube() -> CaseStudy {
        CaseStudy {
            pattern: DiurnalPattern::YouTube,
            engage_below: 0.85,
            b_mode_batch_speedup: 1.155,
            interval_hours: 0.25,
        }
    }

    /// A case study over a *measured* B-mode batch speedup instead of the
    /// paper's headline number — the bridge from cycle-level policy
    /// measurements (a `Scenario` run of Stretch's B-mode vs the baseline)
    /// to cluster-level accounting. The engagement threshold and control
    /// interval keep the paper's values.
    pub fn with_measured_speedup(pattern: DiurnalPattern, b_mode_batch_speedup: f64) -> CaseStudy {
        CaseStudy { pattern, engage_below: 0.85, b_mode_batch_speedup, interval_hours: 0.25 }
    }

    /// Runs the 24-hour accounting — the *analytical* route: count sampled
    /// intervals below the engagement threshold and credit each with the
    /// hand-fed B-mode speedup. [`CaseStudy::run_fleet`] measures the same
    /// quantity with the load-balanced fleet simulation instead.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range (threshold or speedup not
    /// positive, non-positive interval).
    pub fn run(&self) -> CaseStudyReport {
        assert!(self.engage_below > 0.0 && self.engage_below <= 1.0, "threshold out of range");
        assert!(self.b_mode_batch_speedup > 0.0, "speedup must be positive");
        assert!(self.interval_hours > 0.0, "interval must be positive");
        // `sample` guarantees at least one point, so the division is safe.
        let samples = self.pattern.sample(self.interval_hours);
        let mut engaged = 0usize;
        let mut throughput_sum = 0.0;
        for s in &samples {
            if s.load < self.engage_below {
                engaged += 1;
                throughput_sum += self.b_mode_batch_speedup;
            } else {
                throughput_sum += 1.0;
            }
        }
        let total = samples.len();
        CaseStudyReport {
            hours_engaged: engaged as f64 * self.interval_hours,
            fraction_engaged: engaged as f64 / total as f64,
            average_batch_throughput: throughput_sum / total as f64,
        }
    }

    /// The latency-sensitive service this study's diurnal pattern stands
    /// for: Web Search traffic maps to the Web Search service, the YouTube
    /// edge curve to Media Streaming, custom patterns default to Web Search.
    pub fn service(&self) -> ServiceSpec {
        match self.pattern {
            DiurnalPattern::YouTube => ServiceSpec::media_streaming(),
            DiurnalPattern::WebSearch | DiurnalPattern::Custom { .. } => ServiceSpec::web_search(),
        }
    }

    /// Lowers this study onto the measured fleet simulation: N servers
    /// behind a load balancer, per-server closed-loop Stretch monitors whose
    /// engage/disengage thresholds are calibrated (on the fleet itself) to
    /// the study's load threshold, and a performance table whose B-mode
    /// batch speedup is this study's speedup. Only a B-mode is provisioned,
    /// matching the accounting's assumption that disengaged intervals run
    /// at baseline throughput.
    pub fn fleet_config(&self, balancer: LoadBalancer, scale: FleetScale) -> FleetConfig {
        self.calibrated_fleet_config(balancer, scale).0
    }

    /// The study's fleet configuration before threshold calibration (the
    /// monitor field is a placeholder default).
    fn base_fleet_config(&self, balancer: LoadBalancer, scale: FleetScale) -> FleetConfig {
        let service = self.service();
        let arrivals = ArrivalProcess::bursty(100.0);
        let table = PerformanceTable {
            baseline: ModePerformance::paper_defaults(StretchMode::Baseline),
            b_mode: ModePerformance {
                ls_performance: ModePerformance::paper_defaults(StretchMode::BatchBoost(
                    RobSkew::recommended_b_mode(),
                ))
                .ls_performance,
                batch_speedup: self.b_mode_batch_speedup,
            },
            q_mode: ModePerformance::paper_defaults(StretchMode::QosBoost(
                RobSkew::recommended_q_mode(),
            )),
        };
        FleetConfig {
            servers: scale.servers,
            service,
            arrivals,
            pattern: self.pattern,
            balancer,
            topology: FleetTopology::Flat,
            tails: TailAccumulation::Exact,
            days: 1,
            interval_hours: self.interval_hours,
            requests_per_server: scale.requests_per_server,
            stretch: StretchConfig::b_mode_only(RobSkew::recommended_b_mode()),
            monitor: MonitorConfig::default(),
            table,
            seed: scale.seed,
        }
    }

    /// The calibration loop shared by [`CaseStudy::fleet`] and
    /// [`CaseStudy::fleet_config`]: one peak bisection, one threshold
    /// calibration, one owned config — `fleet_config` used to build (and
    /// throw away) an entire `Fleet` just to clone its config back out.
    fn calibrated_fleet_config(
        &self,
        balancer: LoadBalancer,
        scale: FleetScale,
    ) -> (FleetConfig, f64) {
        let mut cfg = self.base_fleet_config(balancer, scale);
        let peak_rps = fleet::measured_peak_rps(&cfg);
        cfg.monitor = fleet::calibrated_monitor_with_peak(&cfg, self.engage_below, peak_rps);
        (cfg, peak_rps)
    }

    /// Builds the measured fleet for this study, running the peak bisection
    /// once and reusing it for both the threshold calibration and the day's
    /// run (the peak does not depend on the monitor being derived).
    pub fn fleet(&self, balancer: LoadBalancer, scale: FleetScale) -> Fleet {
        let (cfg, peak_rps) = self.calibrated_fleet_config(balancer, scale);
        Fleet::with_peak(cfg, peak_rps)
    }

    /// Convenience: build and run the measured fleet for this study.
    pub fn run_fleet(&self, balancer: LoadBalancer, scale: FleetScale) -> FleetReport {
        self.fleet(balancer, scale).run()
    }

    /// [`CaseStudy::run_fleet`] sharded over `workers` OS threads. The
    /// report is bit-identical for every worker count (the merge is a
    /// deterministic shard-index-order fold), so callers pick a count purely
    /// for wall-clock reasons.
    pub fn run_fleet_with_workers(
        &self,
        balancer: LoadBalancer,
        scale: FleetScale,
        workers: usize,
    ) -> FleetReport {
        self.fleet(balancer, scale).run_with_workers(workers)
    }

    /// [`CaseStudy::fleet_config`] generalised to a datacenter shape:
    /// cluster → rack → server `topology`, a tail-retention policy and a
    /// run length in days. Peak measurement and threshold calibration run
    /// on the topology's dispatch unit (one rack when racked), so building
    /// a 10k-server configuration stays cheap. The global `balancer` only
    /// matters for a `Flat` topology; racked fleets dispatch through the
    /// topology's rack balancer.
    pub fn fleet_config_with(
        &self,
        balancer: LoadBalancer,
        scale: FleetScale,
        topology: FleetTopology,
        tails: TailAccumulation,
        days: usize,
    ) -> FleetConfig {
        self.calibrated_fleet_config_with(balancer, scale, topology, tails, days).0
    }

    /// [`CaseStudy::fleet`] over [`CaseStudy::fleet_config_with`]'s
    /// datacenter knobs.
    pub fn fleet_with(
        &self,
        balancer: LoadBalancer,
        scale: FleetScale,
        topology: FleetTopology,
        tails: TailAccumulation,
        days: usize,
    ) -> Fleet {
        let (cfg, peak_rps) =
            self.calibrated_fleet_config_with(balancer, scale, topology, tails, days);
        Fleet::with_peak(cfg, peak_rps)
    }

    fn calibrated_fleet_config_with(
        &self,
        balancer: LoadBalancer,
        scale: FleetScale,
        topology: FleetTopology,
        tails: TailAccumulation,
        days: usize,
    ) -> (FleetConfig, f64) {
        let mut cfg = self.base_fleet_config(balancer, scale);
        cfg.topology = topology;
        cfg.tails = tails;
        cfg.days = days;
        let peak_rps = fleet::measured_peak_rps(&cfg);
        cfg.monitor = fleet::calibrated_monitor_with_peak(&cfg, self.engage_below, peak_rps);
        (cfg, peak_rps)
    }
}

impl CanonicalKey for CaseStudy {
    fn encode_key(&self, enc: &mut KeyEncoder) {
        enc.field(&self.pattern)
            .f64(self.engage_below)
            .f64(self.b_mode_batch_speedup)
            .f64(self.interval_hours);
    }
}

/// Result of a case study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyReport {
    /// Hours per day during which B-mode was engaged.
    pub hours_engaged: f64,
    /// Fraction of the day engaged.
    pub fraction_engaged: f64,
    /// Average batch throughput relative to the baseline over 24 hours.
    pub average_batch_throughput: f64,
}

impl CaseStudyReport {
    /// The 24-hour cluster throughput gain, e.g. 0.05 for +5%.
    pub fn gain(&self) -> f64 {
        self.average_batch_throughput - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_search_cluster_gains_about_5_percent() {
        let report = CaseStudy::web_search().run();
        assert!(
            (report.hours_engaged - 11.0).abs() < 1.5,
            "engaged hours {:.1} should be ~11",
            report.hours_engaged
        );
        assert!(
            (report.gain() - 0.05).abs() < 0.015,
            "Web Search cluster gain {:.3} should be ~0.05",
            report.gain()
        );
    }

    #[test]
    fn youtube_cluster_gains_about_11_percent() {
        let report = CaseStudy::youtube().run();
        assert!(
            (report.hours_engaged - 17.0).abs() < 1.5,
            "engaged hours {:.1} should be ~17",
            report.hours_engaged
        );
        assert!(
            (report.gain() - 0.11).abs() < 0.02,
            "YouTube cluster gain {:.3} should be ~0.11",
            report.gain()
        );
    }

    #[test]
    fn a_flat_low_load_service_gains_the_full_b_mode_speedup() {
        let study = CaseStudy {
            pattern: DiurnalPattern::Custom {
                base: 0.2,
                amplitude: 0.1,
                peak_hour: 12.0,
                width: 6.0,
            },
            engage_below: 0.85,
            b_mode_batch_speedup: 1.13,
            interval_hours: 1.0,
        };
        let report = study.run();
        assert!((report.fraction_engaged - 1.0).abs() < 1e-9);
        assert!((report.gain() - 0.13).abs() < 1e-9);
    }

    #[test]
    fn a_service_pinned_at_peak_gains_nothing() {
        let study = CaseStudy {
            pattern: DiurnalPattern::Custom {
                base: 1.0,
                amplitude: 0.0,
                peak_hour: 12.0,
                width: 6.0,
            },
            engage_below: 0.85,
            b_mode_batch_speedup: 1.13,
            interval_hours: 1.0,
        };
        let report = study.run();
        assert_eq!(report.gain(), 0.0);
        assert_eq!(report.hours_engaged, 0.0);
    }

    #[test]
    fn measured_speedup_scales_the_gain() {
        let paper = CaseStudy::web_search().run();
        let measured = CaseStudy::with_measured_speedup(DiurnalPattern::WebSearch, 1.22).run();
        // Same pattern and threshold, so the engaged hours are identical; a
        // larger measured speedup must scale the 24-hour gain up.
        assert_eq!(measured.hours_engaged, paper.hours_engaged);
        assert!(measured.gain() > paper.gain());
    }

    #[test]
    #[should_panic(expected = "speedup must be positive")]
    fn invalid_speedup_rejected() {
        let mut s = CaseStudy::web_search();
        s.b_mode_batch_speedup = 0.0;
        let _ = s.run();
    }
}
